"""Smoke the resolution service end to end with a stdlib-only client.

CI starts ``repro serve --spec examples/spec.json`` in the background,
then runs this script against it: wait for ``/healthz``, ingest the
example CSVs (credit cards left, billings right), query one record's
cluster, and round-trip one ``/match`` request.  Exit status 0 means
every step answered correctly.

Usage::

    python examples/serve_smoke.py [--host 127.0.0.1] [--port 8080]
"""

from __future__ import annotations

import argparse
import csv
import http.client
import json
import sys
import time
from pathlib import Path

DATA = Path(__file__).parent / "data"


def request(host, port, method, path, body=None, timeout=30):
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        if response.getheader("Content-Type", "").startswith(
            "application/json"
        ):
            return response.status, json.loads(raw)
        return response.status, raw.decode("utf-8")
    finally:
        connection.close()


def wait_healthy(host, port, deadline_seconds=30.0):
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            status, body = request(host, port, "GET", "/healthz", timeout=2)
            if status == 200 and body.get("status") == "ok":
                return body
        except OSError:
            pass
        time.sleep(0.25)
    raise SystemExit(f"server never became healthy on {host}:{port}")


def load_records(name, side):
    with (DATA / name).open(encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    records = []
    for row in rows:
        tid = row.pop("__tid__", None)
        records.append({
            "side": side,
            "values": row,
            "tid": int(tid) if tid is not None else None,
        })
    return records


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    args = parser.parse_args()
    host, port = args.host, args.port

    health = wait_healthy(host, port)
    print(f"healthy: primary tenant {health['fingerprint'][:12]}...")

    credit = load_records("credit.csv", "left")
    billing = load_records("billing.csv", "right")
    status, body = request(
        host, port, "POST", "/ingest", {"records": credit + billing}
    )
    assert status == 200, f"ingest failed: {status} {body}"
    results = body["results"]
    assert len(results) == len(credit) + len(billing)
    merged = sum(result["merged"] for result in results)
    print(f"ingested {len(results)} records, {merged} merged into clusters")

    first = results[0]
    status, cluster = request(
        host, port, "GET", f"/query/{first['tid']}?side={first['side']}"
    )
    assert status == 200, f"query failed: {status} {cluster}"
    print(
        f"cluster of {first['side']}/{first['tid']}: "
        f"{len(cluster['left_tids'])} left, "
        f"{len(cluster['right_tids'])} right"
    )

    status, report = request(
        host, port, "POST", "/match",
        {
            "left": [record["values"] for record in credit[:3]],
            "right": [record["values"] for record in billing[:5]],
        },
    )
    assert status == 200, f"match failed: {status} {report}"
    assert "matches" in report, f"unexpected report shape: {sorted(report)}"
    print(f"match round-trip: {len(report['matches'])} match(es)")

    status, metrics = request(host, port, "GET", "/metrics")
    assert status == 200
    requests_served = metrics["server"]["counters"]["serve.requests"]
    print(f"ok: server answered {requests_served} requests")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Regenerate every table/figure of Section 6 at full scale.

Writes the text tables recorded in EXPERIMENTS.md.  Takes several minutes
(pure Python); scale axes down with --quick for a smoke run.

Run:  python examples/run_all_experiments.py [--quick] [-o OUTPUT]
"""

import argparse
import sys
import time

from repro.experiments import exp_blocking, exp_fs, exp_scalability, exp_sn


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="scaled-down axes")
    parser.add_argument("-o", "--output", default=None, help="write tables to file")
    args = parser.parse_args()

    if args.quick:
        fig8a_cards = (200, 600, 1000)
        fig8b_ms = (5, 20, 50)
        fig8b_card = 600
        y_lengths = (6, 10)
        sizes = (500, 1000, 2000)
    else:
        fig8a_cards = tuple(range(200, 2001, 200))
        fig8b_ms = tuple(range(5, 51, 5))
        fig8b_card = 2000
        y_lengths = (6, 8, 10, 12)
        sizes = (1000, 2000, 4000, 8000)

    sections = []

    def run(label, fn):
        start = time.time()
        print(f"[{label}] running ...", file=sys.stderr, flush=True)
        text = fn()
        print(f"[{label}] done in {time.time() - start:.1f}s", file=sys.stderr)
        sections.append(text)

    run("fig8", lambda: exp_scalability.render_fig8(
        exp_scalability.fig8a(fig8a_cards, y_lengths, m=20),
        exp_scalability.fig8b(fig8b_ms, fig8b_card, y_lengths),
        exp_scalability.fig8c((10, 20, 30, 40), y_lengths),
    ))
    run("fig9", lambda: exp_fs.render(exp_fs.run(sizes=sizes, seed=0)))
    run("fig10", lambda: exp_sn.render(exp_sn.run(sizes=sizes, seed=0)))
    run("fig9d/10d", lambda: exp_blocking.render(
        exp_blocking.run(sizes=sizes, seed=0, mode="blocking")
    ))
    run("exp4-windowing", lambda: exp_blocking.render(
        exp_blocking.run(sizes=sizes, seed=0, mode="windowing")
    ))

    report = "\n\n".join(sections) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"tables written to {args.output}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()

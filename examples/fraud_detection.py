#!/usr/bin/env python3
"""Fraud detection: matching card holders across credit and billing data.

The paper's motivating application (Section 1): payment-fraud checks must
decide whether the person on a billing record is the legitimate card
holder.  This example:

1. generates a realistic credit/billing dataset (duplicates, typos,
   households that share surnames/addresses, partners paying with each
   other's cards);
2. deduces RCKs from the 7 domain MDs, using instance statistics for the
   quality model;
3. matches through a spec-driven Workspace (windowing + deduced keys,
   execution mode 'direct');
4. flags *suspicious* billing tuples: card number present in credit, but
   the person does NOT match the card's holder;
5. reports precision/recall against the generator truth.

Run:  python examples/fraud_detection.py
"""

from repro.api import Workspace
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.exp_fs import deduce_rcks
from repro.matching.evaluate import evaluate_matches


def main() -> None:
    print("Generating 2,000 billing records (80% duplicates, noisy)...")
    dataset = generate_dataset(
        2000,
        seed=7,
        household_fraction=0.2,
        shared_card_probability=0.4,
    )
    sigma = extended_mds(dataset.pair)

    print("Deducing RCKs from the 7 card-holder MDs:")
    rcks = deduce_rcks(dataset, sigma, m=5)
    for key in rcks:
        print(f"  {key}")

    workspace = (
        Workspace.builder()
        .pair(dataset.pair)
        .target(dataset.target)
        .mds(sigma)
        .rcks(rcks)
        .blocking("sorted-neighborhood", window=10)
        .execution(mode="direct")
        .workspace()
    )
    result = workspace.match(dataset.credit, dataset.billing)
    quality = evaluate_matches(result.matches, dataset.true_matches)
    print(
        f"\nHolder matching: {quality} "
        f"({len(result.matches)} matches from {len(result.candidates)} candidates)"
    )

    # ------------------------------------------------------------------
    # Fraud check: same card number, different person?
    # ------------------------------------------------------------------
    card_to_credit = {}
    for row in dataset.credit:
        card_to_credit.setdefault(row["c#"], []).append(row.tid)

    matched_pairs = set(result.matches)
    suspicious = []
    for billing_row in dataset.billing:
        holders = card_to_credit.get(billing_row["c#"], [])
        if not holders:
            continue  # unknown card: different risk channel
        if not any(
            (credit_tid, billing_row.tid) in matched_pairs
            for credit_tid in holders
        ):
            suspicious.append(billing_row.tid)

    # Ground truth for "card used by someone who is not its holder".
    true_frauds = set()
    for billing_row in dataset.billing:
        holders = card_to_credit.get(billing_row["c#"], [])
        entity = dataset.billing_entity[billing_row.tid]
        if holders and all(
            dataset.credit_entity[tid] != entity for tid in holders
        ):
            true_frauds.add(billing_row.tid)

    flagged = set(suspicious)
    true_positive = len(flagged & true_frauds)
    print(
        f"\nFraud check: {len(flagged)} billing tuples flagged as "
        f"'card used by a non-holder'"
    )
    print(f"  actual shared-card usages in the data: {len(true_frauds)}")
    if flagged:
        print(f"  flag precision: {true_positive / len(flagged):.3f}")
    if true_frauds:
        print(f"  flag recall:    {true_positive / len(true_frauds):.3f}")
    print(
        "\n(Flags also include noisy duplicates the matcher missed - in a"
        "\nreal deployment these go to manual review, which is exactly how"
        "\ncard-fraud pipelines consume matcher output.)"
    )


if __name__ == "__main__":
    main()

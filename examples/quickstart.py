#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Walks through Examples 1.1–5.1 of *Reasoning about Record Matching Rules*
(Fan, Jia, Li, Ma — VLDB 2009):

1. declare the credit/billing schemas and the MDs ϕ1–ϕ3;
2. check a deduction (Σ ⊨m rck4, Example 3.5);
3. deduce quality RCKs with findRCKs (Example 5.1);
4. match the Fig. 1 tuples with the deduced keys — including the pairs
   the hand-written key cannot match.

Run:  python examples/quickstart.py
"""

from repro.core.closure import deduces
from repro.core.findrcks import find_rcks
from repro.core.parser import format_md
from repro.core.rck import RelativeKey
from repro.datagen.generator import figure1_instances
from repro.datagen.schemas import credit_billing_pair, paper_mds, paper_target
from repro.matching.comparison import spec_from_rck


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Schemas and matching dependencies (Example 2.1)
    # ------------------------------------------------------------------
    pair = credit_billing_pair()
    target = paper_target(pair)  # (Yc, Yb): the card-holder attributes
    sigma = paper_mds(pair)

    print("The schema pair:")
    print(f"  {pair.left!r}")
    print(f"  {pair.right!r}")
    print(f"\nThe target lists (Yc, Yb): {target}")
    print("\nThe matching dependencies of Example 2.1:")
    for index, dependency in enumerate(sigma, start=1):
        print(f"  phi{index}: {format_md(dependency)}")

    # ------------------------------------------------------------------
    # 2. Deduction (Example 3.5): Sigma |=m rck4
    # ------------------------------------------------------------------
    rck4 = RelativeKey.from_triples(
        target, [("email", "email", "="), ("tel", "phn", "=")]
    )
    print(f"\nIs {rck4} deducible from Sigma?")
    print(f"  Sigma |=m rck4: {deduces(pair, sigma, rck4.to_md())}")

    email_only = RelativeKey.from_triples(target, [("email", "email", "=")])
    print(f"Is the email alone a key?  {deduces(pair, sigma, email_only.to_md())}")

    # ------------------------------------------------------------------
    # 3. findRCKs (Example 5.1)
    # ------------------------------------------------------------------
    print("\nRCKs deduced by findRCKs (m=6):")
    rcks = find_rcks(sigma, target, m=6)
    for key in rcks:
        print(f"  {key}")

    # ------------------------------------------------------------------
    # 4. Matching the Fig. 1 tuples
    # ------------------------------------------------------------------
    _, credit, billing = figure1_instances()
    t1 = credit[0]
    print("\nMatching credit tuple t1 against billing tuples t3..t6:")
    for billing_tid, label in zip(range(4), ("t3", "t4", "t5", "t6")):
        row = billing[billing_tid]
        matched_by = [
            str(key)
            for key in rcks
            if spec_from_rck(key).agrees_on_all(t1, row)
        ]
        verdict = "MATCH via " + matched_by[0] if matched_by else "no match"
        print(f"  t1 ~ {label}: {verdict}")

    print(
        "\nNote: t4-t6 are unmatched by the hand-written key (rck1) alone;"
        "\nthe deduced keys rck2-rck4 recover them - the added value of"
        "\nMD deduction (Example 1.1)."
    )

    # ------------------------------------------------------------------
    # 5. The same task, declaratively: one spec, every execution mode
    # ------------------------------------------------------------------
    from repro.api import Workspace

    workspace = (
        Workspace.builder()
        .pair(pair)
        .target(target)
        .mds(sigma)
        .execution(mode="enforce", top_k=6)
        .workspace()
    )
    report = workspace.match(credit, billing)
    print(
        f"\nWorkspace (spec fingerprint {workspace.fingerprint}) matched "
        f"{len(report.matches)} pair(s) via enforcement:"
    )
    for matched in report.matches:
        rules = ", ".join(report.provenance.get(matched, ()))
        print(f"  {matched}  [{rules}]")
    print(
        "The identical spec drives streaming (workspace.stream()) and the\n"
        "CLI (repro match --spec spec.json) - see examples/spec.json."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Census-style deduplication: Fellegi–Sunter with RCK comparison vectors.

The Fellegi–Sunter model is "widely used to process, e.g., census data"
(Section 6.2).  This example contrasts the two ways of choosing its
comparison vector on one dataset:

* the naive vector — equality tests on every identity attribute, with EM
  left to figure out the weights;
* the RCK vector — the union of the top five deduced RCKs: fewer
  attributes, each compared with the operator the rules prescribe.

It prints the EM-estimated weights of both (so you can see what EM thinks
of each feature) and the resulting match quality.

Run:  python examples/census_deduplication.py
"""

from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.exp_fs import deduce_rcks
from repro.matching.comparison import equality_spec, union_of_rcks
from repro.matching.evaluate import evaluate_matches
from repro.matching.fellegi_sunter import FellegiSunter
from repro.matching.windowing import multi_pass_window_pairs, rck_sort_keys


def run_matcher(name, spec, dataset, candidates):
    matcher = FellegiSunter(spec)
    estimate = matcher.fit(dataset.credit, dataset.billing, candidates, seed=0)
    print(f"\n{name}: EM fitted in {estimate.iterations} iterations "
          f"(p = {estimate.p:.4f}, threshold = {matcher.decision_threshold():.2f})")
    print("  feature weights (agree / disagree):")
    for feature_name, agree, disagree in matcher.feature_weights():
        print(f"    {feature_name:<28} {agree:+6.2f} / {disagree:+6.2f}")
    matches = matcher.classify(dataset.credit, dataset.billing, candidates)
    quality = evaluate_matches(matches, dataset.true_matches)
    print(f"  quality: {quality}")
    return quality


def main() -> None:
    print("Generating 3,000 records with duplicates and noise...")
    dataset = generate_dataset(3000, seed=11)
    sigma = extended_mds(dataset.pair)
    rcks = deduce_rcks(dataset, sigma, m=5)

    print("Top-5 deduced RCKs:")
    for key in rcks:
        print(f"  {key}")

    # Shared candidates: multi-pass windowing on the top three RCKs.
    keys = [rck_sort_keys([key]) for key in rcks[:3]]
    candidates = multi_pass_window_pairs(
        dataset.credit, dataset.billing, keys, window=10
    )
    print(f"\nWindowing produced {len(candidates)} candidate pairs "
          f"(of {dataset.total_pairs} possible).")

    naive = run_matcher(
        "FS with naive equality vector",
        equality_spec(dataset.target.attribute_pairs()),
        dataset,
        candidates,
    )
    rck = run_matcher(
        "FS with RCK-union vector",
        union_of_rcks(rcks),
        dataset,
        candidates,
    )

    print("\nSummary:")
    print(f"  naive vector: precision {naive.precision:.3f}, recall {naive.recall:.3f}")
    print(f"  RCK vector:   precision {rck.precision:.3f}, recall {rck.recall:.3f}")
    print(
        "\nThe RCK vector tells the matcher both *what* to compare and"
        "\n*how* (similarity operators where rules allow fuzziness), which"
        "\nis where the precision gap comes from (Fig. 9 of the paper)."
    )


if __name__ == "__main__":
    main()

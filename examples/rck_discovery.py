#!/usr/bin/env python3
"""RCK discovery at scale: reasoning over large random MD sets.

Reproduces the flavour of Section 6.1 interactively: generate a workload
of random MDs over synthetic schemas, deduce quality RCKs under different
quality-model weights, and inspect how the cost model shapes the keys.

Run:  python examples/rck_discovery.py
"""

import time

from repro.core.closure import ClosureEngine
from repro.core.findrcks import find_rcks, is_complete
from repro.core.quality import CostModel
from repro.datagen.mdgen import generate_workload


def main() -> None:
    print("Generating 500 random MDs over schemas of arity 16 (|Y| = 8)...")
    workload = generate_workload(md_count=500, target_length=8, seed=42)
    sigma = list(workload.sigma)

    start = time.perf_counter()
    keys = find_rcks(sigma, workload.target, m=20)
    elapsed = time.perf_counter() - start
    print(f"findRCKs deduced {len(keys)} RCKs in {elapsed:.2f}s:")
    for key in keys[:10]:
        print(f"  {key}")
    if len(keys) > 10:
        print(f"  ... and {len(keys) - 10} more")

    # Every key is verifiable independently with the closure engine.
    engine = ClosureEngine(workload.pair, sigma)
    assert all(engine.deduces(key.to_md()) for key in keys)
    print("All returned keys verified against MDClosure.")

    # Small Σ: the complete set of RCKs is reachable (Fig. 8(c)).
    print("\nComplete RCK sets from small Sigma (Fig. 8(c) flavour):")
    for card in (10, 20, 30, 40):
        small = generate_workload(md_count=card, target_length=8, seed=7)
        complete = find_rcks(list(small.sigma), small.target, m=10_000)
        assert is_complete(complete, list(small.sigma))
        print(f"  card(Sigma) = {card:>3}: {len(complete)} RCKs (complete set)")

    # Quality-model influence: diversity on vs off.
    print("\nEffect of the diversity counter (w1) on the first 5 keys:")
    for label, model in (
        ("with diversity (w1=1)", CostModel()),
        ("without (w1=0)", CostModel(w1=0.0)),
    ):
        chosen = find_rcks(sigma, workload.target, m=5, cost_model=model)
        pairs_used = sorted(
            {pair for key in chosen for pair in key.attribute_pairs()}
        )
        print(f"  {label}: {len(pairs_used)} distinct attribute pairs used")


if __name__ == "__main__":
    main()

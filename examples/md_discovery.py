#!/usr/bin/env python3
"""The Section 8 extensions in one pipeline.

1. **MD discovery**: mine matching dependencies from a labelled sample
   (Section 8: "develop algorithms for discovering MDs from sample data").
2. **Reasoning**: deduce RCKs from the mined MDs (the Section 7 pipeline:
   "first discover a small set of MDs via sampling and learning, and then
   leverage the reasoning techniques to deduce RCKs").
3. **Negation**: add negative rules ("same surname and address but
   different first names → not the same person") and check Σ against them
   for static conflicts.
4. **Synonyms**: register constant-transformation operators
   ("St" → "Street", "Bob" → "Robert") usable inside MDs.

Run:  python examples/md_discovery.py
"""

from repro.core.findrcks import find_rcks
from repro.core.negation import GuardedRuleSet, NegativeRule, find_conflicts
from repro.datagen.generator import generate_dataset
from repro.discovery import (
    DiscoveryConfig,
    discover_mds,
    random_labelled_pairs,
    sample_labelled_pairs,
)
from repro.api import Workspace
from repro.matching.evaluate import evaluate_matches
from repro.matching.rules import rules_from_rcks
from repro.matching.windowing import attribute_key, window_pairs
from repro.metrics.registry import default_registry
from repro.metrics.synonyms import (
    common_nickname_synonyms,
    register_synonym_metrics,
    us_address_synonyms,
    merged_tables,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Mine MDs from a labelled sample
    # ------------------------------------------------------------------
    print("Generating training data (600 billing tuples) ...")
    dataset = generate_dataset(600, seed=31)
    key = attribute_key(["zip", "LN"])
    candidates = window_pairs(dataset.credit, dataset.billing, key, key, 10)
    sample = sample_labelled_pairs(
        candidates, dataset.true_matches, limit=4000, seed=0
    )
    sample += random_labelled_pairs(
        dataset.credit, dataset.billing, dataset.true_matches, 4000, seed=1
    )
    print(f"Labelled sample: {len(sample)} pairs "
          f"({sum(1 for _, _, m in sample if m)} matches)")

    mined = discover_mds(
        dataset.credit,
        dataset.billing,
        sample,
        dataset.target,
        DiscoveryConfig(min_confidence=0.97, min_support=10, max_lhs=2),
    )
    print(f"\nMined {len(mined)} MDs; the five most confident:")
    for rule in mined[:5]:
        lhs = " & ".join(str(atom) for atom in rule.dependency.lhs)
        print(f"  {lhs}  ->  identify Y   "
              f"[support={rule.support}, conf={rule.confidence:.3f}]")

    # ------------------------------------------------------------------
    # 2. Deduce RCKs from the mined MDs and match fresh data
    # ------------------------------------------------------------------
    sigma = [rule.dependency for rule in mined]
    rcks = find_rcks(sigma, dataset.target, m=5)
    print("\nRCKs deduced from the mined MDs:")
    for rck in rcks:
        print(f"  {rck}")

    fresh = generate_dataset(600, seed=77)
    workspace = (
        Workspace.builder()
        .pair(dataset.pair)
        .target(dataset.target)
        .mds(sigma)
        .rcks(rcks)
        .execution(mode="direct")
        .workspace()
    )
    result = workspace.match(fresh.credit, fresh.billing)
    quality = evaluate_matches(result.matches, fresh.true_matches)
    print(f"\nMatching fresh data with mined+deduced keys: {quality}")

    # ------------------------------------------------------------------
    # 3. Negative rules: consistency check + runtime vetoes
    # ------------------------------------------------------------------
    # Same surname and address but a *different* first name: a household
    # co-member, not the same person.  The fourth component of an atom
    # marks it negated (dissimilarity test).
    household_veto = NegativeRule.build(
        dataset.pair,
        [("LN", "LN", "="), ("street", "street", "="),
         ("zip", "zip", "="), ("FN", "FN", "dl(0.8)", True)],
        [("FN", "FN")],
        name="household-members-differ",
    )
    conflicts = find_conflicts(dataset.pair, sigma, [household_veto])
    print(f"\nStatic check of mined Sigma against the household veto: "
          f"{len(conflicts)} conflict(s)")
    for conflict in conflicts:
        print(f"  CONFLICT: {conflict}")

    guarded = GuardedRuleSet(rules_from_rcks(rcks), [household_veto])
    vetoed = sum(
        1
        for left_tid, right_tid in result.matches
        if not guarded.matches(fresh.credit[left_tid], fresh.billing[right_tid])
    )
    print(f"Runtime vetoes on the fresh matches: {vetoed}")

    # ------------------------------------------------------------------
    # 4. Synonym operators
    # ------------------------------------------------------------------
    registry = default_registry()
    table = merged_tables([us_address_synonyms(), common_nickname_synonyms()])
    register_synonym_metrics(registry, table)
    syn = registry.resolve("syn_dl(0.9)")
    print("\nSynonym-aware operator syn_dl(0.9):")
    for left, right in (
        ("10 Oak St", "10 Oak Street"),
        ("Bob", "Robert"),
        ("Bob", "William"),
    ):
        print(f"  {left!r} ~ {right!r}: {syn(left, right)}")


if __name__ == "__main__":
    main()

"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then uses the classic ``setup.py develop`` code
path).  All metadata (name, version, python-requires) lives in
pyproject.toml; only the src-layout package discovery is repeated here so
that installs remain importable even under setuptools older than 61,
which cannot read the ``[project]`` table.
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)

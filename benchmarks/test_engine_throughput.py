"""BENCH — streaming engine throughput vs batch pipeline re-runs.

Measures records/sec for incremental ingest of a duplicate-burst stream
and compares the engine's total pair-comparison cost with what re-running
the batch pipeline on every arrival would charge.  Results are printed as
one JSON document per test (run with ``-s`` to see them), and appended to
the file named by ``REPRO_BENCH_JSON`` when that variable is set — the
seed of the engine benchmark trajectory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import duplicate_burst_stream
from repro.engine import IncrementalMatcher
from repro.matching.blocking import multi_pass_block_pairs
from repro.matching.pipeline import EnforcementMatcher

from conftest import engine_stream_size


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(engine_stream_size(), seed=11)


@pytest.fixture(scope="module")
def workload(dataset):
    return duplicate_burst_stream(dataset, seed=3)


def test_streaming_ingest_throughput(benchmark, dataset, workload):
    """Records/sec for one full duplicate-burst stream, cold start."""
    sigma = extended_mds(dataset.pair)

    def run():
        matcher = IncrementalMatcher(sigma, dataset.target, top_k=5)
        matcher.ingest_stream(workload.events)
        return matcher

    matcher = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    seconds = benchmark.stats.stats.mean
    # The matcher's registry accumulated one engine.ingest_seconds
    # observation per ingest — the per-record latency distribution
    # (p50/p95/p99) rides along with the throughput headline.
    registry = matcher.metrics
    registry.observe("engine.stream_seconds", seconds)
    registry.gauge(
        "engine.records_per_sec", len(workload.events) / seconds
    )
    _emit({
        "benchmark": "engine_streaming_ingest",
        "scenario": workload.scenario,
        "records": len(workload.events),
        "seconds_per_stream": seconds,
        "records_per_sec": len(workload.events) / seconds,
        "comparisons": matcher.store.comparisons,
        "matched_clusters": len(matcher.store.clusters()),
        "metrics": registry.as_dict(),
    })
    assert matcher.store.clusters()


def test_streaming_vs_batch_rerun_cost(benchmark, dataset, workload):
    """One batch pipeline run, and the comparison-count ledger.

    Serving the stream by re-running the batch pipeline after every
    arrival costs ~len(events) × (one batch run); the engine's whole
    stream must cost a small multiple of ONE batch run.
    """
    sigma = extended_mds(dataset.pair)
    matcher = IncrementalMatcher(sigma, dataset.target, top_k=5)
    matcher.ingest_stream(workload.events)
    keys = [(index.left_key, index.right_key) for index in matcher.store.indexes]
    batch = EnforcementMatcher(sigma, dataset.target)

    def batch_run():
        candidates = multi_pass_block_pairs(
            dataset.credit, dataset.billing, keys
        )
        return batch.match(
            dataset.credit, dataset.billing, candidates=candidates
        )

    result = benchmark.pedantic(
        batch_run, rounds=3, iterations=1, warmup_rounds=0
    )
    batch_candidates = len(result.candidates)
    rerun_cost = len(workload.events) * batch_candidates
    _emit({
        "benchmark": "engine_vs_batch_rerun",
        "records": len(workload.events),
        "batch_seconds_per_run": benchmark.stats.stats.mean,
        "batch_candidates": batch_candidates,
        "stream_comparisons": matcher.store.comparisons,
        "batch_rerun_comparisons": rerun_cost,
        "saving_factor": rerun_cost / max(matcher.store.comparisons, 1),
    })
    assert matcher.store.comparisons * 10 < rerun_cost

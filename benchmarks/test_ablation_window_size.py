"""Ablation — sliding-window size (Section 6.2 fixes w = 10).

The paper fixes the window at 10 tuples without showing the sensitivity;
[20]'s merge/purge analysis makes the trade-off explicit: larger windows
buy pairs completeness with quadratically more comparisons.  This bench
sweeps w and reports PC/RR plus the SNrck match quality at each size,
justifying the w = 10 operating point.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp_fs
from repro.experiments.harness import Table
from repro.matching.evaluate import evaluate_matches, evaluate_reduction
from repro.matching.rules import rules_from_rcks
from repro.matching.sorted_neighborhood import SortedNeighborhood
from repro.matching.windowing import multi_pass_window_pairs, rck_sort_keys

_WINDOWS = (2, 5, 10, 20, 40)


@pytest.fixture(scope="module")
def sweep():
    dataset, _, rcks = exp_fs.prepare(1000, seed=0)
    keys = [rck_sort_keys([key]) for key in rcks[:3]]
    matcher = SortedNeighborhood(rules_from_rcks(rcks), window=10)
    records = []
    for window in _WINDOWS:
        candidates = multi_pass_window_pairs(
            dataset.credit, dataset.billing, keys, window
        )
        reduction = evaluate_reduction(
            candidates, dataset.true_matches, dataset.total_pairs
        )
        result = matcher.run_on_candidates(
            dataset.credit, dataset.billing, candidates
        )
        quality = evaluate_matches(result.matches, dataset.true_matches)
        records.append(
            (window, reduction.pairs_completeness, reduction.reduction_ratio,
             len(candidates), quality.recall)
        )
    return records


def test_ablation_window_size(benchmark, sweep):
    dataset, _, rcks = exp_fs.prepare(1000, seed=0)
    keys = [rck_sort_keys([key]) for key in rcks[:3]]

    benchmark(
        multi_pass_window_pairs, dataset.credit, dataset.billing, keys, 10
    )

    table = Table(
        "Ablation: window size (K=1000, multi-pass RCK sort keys)",
        ["window", "PC", "RR", "candidates", "SNrck recall"],
    )
    for record in sweep:
        table.add(*record)
    print()
    print(table.render())

    by_window = {record[0]: record for record in sweep}
    # PC grows monotonically with the window; RR shrinks.
    pcs = [record[1] for record in sweep]
    assert pcs == sorted(pcs)
    rrs = [record[2] for record in sweep]
    assert rrs == sorted(rrs, reverse=True)
    # w = 10 already captures most of the achievable completeness.
    assert by_window[10][1] > 0.9 * by_window[40][1]

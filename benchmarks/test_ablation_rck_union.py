"""Ablation — single RCK vs the union of top-k RCKs (Section 6.2 text).

"In the experiments we also found that a single RCK tended to yield a
lower recall, because any noise in the RCK attributes might lead to a
miss-match.  This is mediated by using the union of several RCKs."

This bench quantifies that claim: rule-based matching with the top-1 RCK,
top-3, and top-5 unions on the same candidates.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp_fs
from repro.experiments.harness import Table
from repro.matching.evaluate import evaluate_matches
from repro.matching.rules import rules_from_rcks
from repro.matching.sorted_neighborhood import SortedNeighborhood


@pytest.fixture(scope="module")
def prepared():
    return exp_fs.prepare(1000, seed=0)


def test_ablation_rck_union(benchmark, prepared):
    dataset, candidates, rcks = prepared

    table = Table(
        "Ablation: number of RCKs in the matching rule set (K=1000)",
        ["top-k", "precision", "recall", "f1"],
    )
    recalls = {}
    for k in (1, 3, 5):
        matcher = SortedNeighborhood(rules_from_rcks(rcks[:k]), window=10)
        result = matcher.run_on_candidates(
            dataset.credit, dataset.billing, candidates
        )
        quality = evaluate_matches(result.matches, dataset.true_matches)
        recalls[k] = quality.recall
        table.add(k, quality.precision, quality.recall, quality.f1)

    matcher5 = SortedNeighborhood(rules_from_rcks(rcks[:5]), window=10)
    benchmark(
        matcher5.run_on_candidates, dataset.credit, dataset.billing, candidates
    )

    print()
    print(table.render())

    # The paper's claim: unions rescue the recall a single key loses.
    assert recalls[5] > recalls[1]
    assert recalls[3] >= recalls[1]

"""BENCH — the window-encoded sorted-neighborhood index.

Acceptance benchmark for ``repro.plan.sn_index``: on the generated
K-record credit/billing dataset under a sorted-neighborhood spec
(window 10), the rank-encoded index must

* split its window candidates at block boundaries into **more shards
  than workers**, so the parallel chase actually shards — the legacy
  global-window backend chained every pair into one component and fell
  back to the serial loop unconditionally;
* decide **identical matches** through the 4-worker pool and the serial
  loop (checked pair by pair before anything is reported);
* carry a ``critical_path_speedup`` of **≥ 1.5×** — the deterministic,
  machine-independent quantity the shard partitioner controls, asserted
  everywhere including single-core CI runners;
* **stream to the batch candidate universe**: replaying the dataset
  through ``Workspace.stream`` (the incremental rank encoding, one
  ``bisect.insort`` per pass per record) must leave the live index
  describing exactly the batch run's candidate pairs.

``wallclock_speedup`` is reported but asserted only on explicit
full-scale runs (``REPRO_BENCH_FULL=1``) with ≥ 4 CPUs, per the suite's
standing rule: CI checks structure and counts, not timings.

Results are printed as one JSON document and appended to
``REPRO_BENCH_JSON`` when set; CI schema-checks the output with
``benchmarks/check_bench_json.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.api import Workspace
from repro.core.semantics import InstancePair
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import arrival_stream
from repro.experiments.harness import resolution_spec_document, timed
from repro.plan.shard import assign_shards, shard_pairs

from conftest import FULL, sn_index_size

WORKERS = 4
WINDOW = 10


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _document(dataset):
    return resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "sorted-neighborhood", "window": WINDOW},
        execution={"mode": "enforce"},
    )


def run_sn_point(size: int, seed: int = 3):
    """Serial vs 4-worker SN chase, plus the streamed-index differential."""
    dataset = generate_dataset(size, seed=seed)
    workspace = Workspace.from_dict(_document(dataset))
    plan = workspace.plan
    candidates = plan.candidates(dataset.credit, dataset.billing)
    instance = InstancePair(plan.pair, dataset.credit, dataset.billing)
    target_pairs = plan.target.attribute_pairs()

    def matches(result):
        return [
            pair
            for pair in candidates
            if result.identified(*pair, target_pairs)
        ]

    serial_result, serial_seconds = timed(
        plan.enforce, instance, candidate_pairs=candidates
    )
    parallel_result, parallel_seconds = timed(
        plan.enforce,
        instance,
        candidate_pairs=candidates,
        workers=WORKERS,
        spec_document=workspace.spec.to_dict(),
    )

    shards = shard_pairs(candidates)
    loads = [
        sum(len(shard) for shard in bin_)
        for bin_ in assign_shards(shards, WORKERS)
    ]
    serial_matches = matches(serial_result)
    parallel_matches = matches(parallel_result)

    # Streamed-index differential: replay the dataset through the
    # incremental rank encoding and compare candidate universes.
    stream_workspace = Workspace.from_dict(_document(dataset))
    matcher = stream_workspace.stream()
    for event in arrival_stream(dataset, seed=seed).events:
        matcher.ingest(event.side, event.values, tid=event.tid)
    stream_index = matcher.store.blocking
    stream_candidates = stream_index.scan_candidates()

    registry = workspace.metrics
    registry.count("parallel.shards", len(shards))
    registry.count("parallel.workers", WORKERS)
    registry.observe("parallel.serial_seconds", serial_seconds)
    registry.observe("parallel.parallel_seconds", parallel_seconds)
    return {
        "metrics": registry.as_dict(),
        "benchmark": "sn_index",
        "K": size,
        "candidates": len(candidates),
        "blocks": stream_index.block_count(),
        "shards": len(shards),
        "workers": WORKERS,
        "heaviest_bin_pairs": max(loads),
        "matches": len(serial_matches),
        "matches_identical": int(serial_matches == parallel_matches),
        "stream_candidates_identical": int(
            stream_candidates == sorted(candidates)
        ),
        "parallel_chases": plan.stats.parallel_chases,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "wallclock_speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "critical_path_speedup": len(candidates) / max(loads),
    }


def test_sn_index_shards_and_streams(benchmark):
    """Window-boundary sharding ≥ 1.5×; streamed candidates ≡ batch."""
    record = benchmark.pedantic(
        run_sn_point, args=(sn_index_size(),),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _emit(record)
    assert record["candidates"] > 0
    assert record["matches"] > 0
    assert record["blocks"] > 1
    # Differential acceptance: same matches, actually through the pool.
    assert record["matches_identical"] == 1
    assert record["parallel_chases"] == 1
    assert record["shards"] > WORKERS
    # The streamed index converges on the batch candidate universe.
    assert record["stream_candidates_identical"] == 1
    # The partitioner's deterministic claim, on any machine.
    assert record["critical_path_speedup"] >= 1.5
    # The wall-clock claim: only on explicit full-scale runs, and only
    # where the hardware can express it.
    if FULL and (os.cpu_count() or 1) >= WORKERS:
        assert record["wallclock_speedup"] >= 1.5

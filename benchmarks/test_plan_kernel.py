"""BENCH — the compiled enforcement kernel vs the naive evaluation path.

Acceptance benchmark for the ``repro.plan`` refactor: running the
enforcement chase over Exp-4's RCK-blocking candidates through a compiled
plan (predicates deduplicated, metrics resolved at compile time, per-value
similarity memo) must charge strictly fewer metric evaluations — measured
by the plan's own counter — than the uncached per-(pair, rule, atom,
round) evaluation the pre-refactor matchers performed, while deciding
identical matches.

Results are printed as one JSON document per test and appended to the
file named by ``REPRO_BENCH_JSON`` when set (CI schema-checks that file
with ``benchmarks/check_bench_json.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments import exp_blocking
from repro.obs import MetricsRegistry

from conftest import kernel_size


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def test_kernel_fewer_metric_evaluations_than_naive(benchmark):
    """Predicate dedup + similarity cache beat the pre-refactor count."""
    size = kernel_size()
    record = benchmark.pedantic(
        exp_blocking.run_kernel_point, args=(size,), kwargs={"seed": 3},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    # Emit the measurements through the one metrics pipeline the rest of
    # the stack reports with (repro.obs), so BENCH JSON and MatchReport
    # stats share a schema.
    registry = MetricsRegistry()
    registry.count("kernel.candidates", record["candidates"])
    registry.count("kernel.matches", record["matches"])
    registry.count("kernel.plan_evaluations", record["plan evaluations"])
    registry.count("kernel.plan_cache_hits", record["plan cache hits"])
    registry.count("kernel.naive_evaluations", record["naive evaluations"])
    registry.observe("kernel.plan_seconds", record["plan seconds"])
    registry.observe("kernel.naive_seconds", record["naive seconds"])
    _emit({
        "benchmark": "plan_kernel_vs_naive",
        "K": record["K"],
        "candidates": record["candidates"],
        "matches": record["matches"],
        "plan_evaluations": record["plan evaluations"],
        "plan_cache_hits": record["plan cache hits"],
        "naive_evaluations": record["naive evaluations"],
        "evaluation_saving": record["evaluation saving"],
        "plan_seconds": record["plan seconds"],
        "naive_seconds": record["naive seconds"],
        "metrics": registry.as_dict(),
    })
    assert record["candidates"] > 0
    assert record["matches"] > 0
    # The acceptance criterion: the compiled plan's counter shows fewer
    # metric evaluations than the pre-refactor (uncached) baseline.
    assert record["plan evaluations"] < record["naive evaluations"]
    assert record["plan cache hits"] > 0

"""Theorem 4.1 — MDClosure complexity, plus the indexing ablation.

The paper proves MDClosure runs in O(n² + h³) and notes it "can possibly
be improved to O(n + h³) by leveraging the index structures of [8, 25]".
Our production engine *is* the indexed variant; the literal Fig. 5 loop is
kept as ``md_closure_paper_loop``.  This bench times both across n and
prints the comparison — the indexed engine should scale visibly better.
"""

from __future__ import annotations

import time

import pytest

from repro.core.closure import ClosureEngine, md_closure_paper_loop
from repro.datagen.mdgen import generate_workload
from repro.experiments.harness import Table

from conftest import FULL

_SIZES = (250, 500, 1000, 2000) if FULL else (100, 250, 500)


@pytest.fixture(scope="module")
def comparison_table():
    table = Table(
        "Theorem 4.1: MDClosure runtime (indexed engine vs Fig. 5 loop)",
        ["card(Sigma)", "engine build (s)", "engine query (s)", "paper loop (s)"],
    )
    for card in _SIZES:
        workload = generate_workload(md_count=card, target_length=8, seed=1)
        sigma = list(workload.sigma)
        phi = sigma[0]

        start = time.perf_counter()
        engine = ClosureEngine(workload.pair, sigma)
        build = time.perf_counter() - start

        start = time.perf_counter()
        engine.closure(phi.lhs)
        query = time.perf_counter() - start

        start = time.perf_counter()
        md_closure_paper_loop(workload.pair, sigma, phi.lhs)
        loop = time.perf_counter() - start

        table.add(card, build, query, loop)
    return table


def test_mdclosure_engine_query(benchmark, comparison_table):
    workload = generate_workload(md_count=max(_SIZES), target_length=8, seed=1)
    engine = ClosureEngine(workload.pair, list(workload.sigma))
    phi = list(workload.sigma)[0]

    benchmark(engine.closure, phi.lhs)

    print()
    print(comparison_table.render())


def test_mdclosure_paper_loop(benchmark):
    workload = generate_workload(md_count=min(_SIZES), target_length=8, seed=1)
    sigma = list(workload.sigma)
    phi = sigma[0]

    benchmark(md_closure_paper_loop, workload.pair, sigma, phi.lhs)

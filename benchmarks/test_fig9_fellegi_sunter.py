"""Fig. 9(a–c) — Fellegi–Sunter with vs without RCKs (Exp-2).

Regenerates the precision (9a), recall (9b) and runtime (9c) series.  The
benchmark fixture times the FSrck configuration at the largest K; the full
FS-vs-FSrck table is printed.

Reproduction target (shape, not absolute numbers): FSrck precision at or
above FS at every K, with FS degrading as K grows; recalls comparable.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp_fs
from repro.matching.comparison import union_of_rcks
from repro.matching.fellegi_sunter import FellegiSunter


@pytest.fixture(scope="module")
def series(bench_sizes):
    return exp_fs.run(sizes=bench_sizes, seed=0)


def test_fig9_fellegi_sunter(benchmark, series, bench_sizes):
    size = max(bench_sizes)
    dataset, candidates, rcks = exp_fs.prepare(size, seed=0)
    spec = union_of_rcks(rcks)

    def run_fsrck():
        matcher = FellegiSunter(spec)
        matcher.fit(dataset.credit, dataset.billing, candidates, seed=0)
        return matcher.classify(dataset.credit, dataset.billing, candidates)

    matches = benchmark(run_fsrck)
    assert matches

    print()
    print(exp_fs.render(series))

    # Shape assertions of Fig. 9(a)/(b).
    for record in series:
        assert (
            record["FSrck precision"] >= record["FS precision"] - 0.02
        ), f"FSrck should not lose precision at K={record['K']}"
        assert abs(record["FSrck recall"] - record["FS recall"]) < 0.1, (
            "recalls should be comparable"
        )

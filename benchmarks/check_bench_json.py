#!/usr/bin/env python
"""Schema-check the JSON lines emitted by the benchmark suite.

CI runs the JSON-emitting benchmarks at smoke scale
(``REPRO_BENCH_TINY=1``) with ``REPRO_BENCH_JSON`` pointing at a scratch
file, then validates that file here.  The checks are *structural and
invariant-based*, never timing-based, so the job is stable on shared
runners:

* every known benchmark document carries its required keys with the
  right types;
* cross-field invariants hold (the kernel charges fewer evaluations
  than the naive path, the streaming engine beats batch re-runs, ...);
* an optional ``metrics`` key must be a
  :class:`repro.obs.metrics.MetricsRegistry` rendering — ``counters`` /
  ``gauges`` / ``histograms`` objects, each histogram summary carrying
  ``count`` and (when non-empty) ``p50``/``p95``/``p99``.

Exit status 0 when every line passes, 1 with a per-line report otherwise.

Usage::

    python benchmarks/check_bench_json.py bench.json [more.json ...]

Several files may be named (CI passes the fresh smoke output and the
committed ``benchmarks/baselines/BENCH_*.json`` together); each is
checked independently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Required keys (name -> type) per benchmark document.
SCHEMAS = {
    "engine_streaming_ingest": {
        "scenario": str,
        "records": int,
        "seconds_per_stream": float,
        "records_per_sec": float,
        "comparisons": int,
        "matched_clusters": int,
    },
    "engine_vs_batch_rerun": {
        "records": int,
        "batch_seconds_per_run": float,
        "batch_candidates": int,
        "stream_comparisons": int,
        "batch_rerun_comparisons": int,
        "saving_factor": float,
    },
    "plan_kernel_vs_naive": {
        "K": int,
        "candidates": int,
        "matches": int,
        "plan_evaluations": int,
        "plan_cache_hits": int,
        "naive_evaluations": int,
        "evaluation_saving": float,
        "plan_seconds": float,
        "naive_seconds": float,
    },
    "plan_parallel_chase": {
        "K": int,
        "candidates": int,
        "shards": int,
        "workers": int,
        "heaviest_bin_pairs": int,
        "matches": int,
        "matches_identical": int,
        "parallel_chases": int,
        "serial_seconds": float,
        "parallel_seconds": float,
        "wallclock_speedup": float,
        "critical_path_speedup": float,
    },
    "sn_index": {
        "K": int,
        "candidates": int,
        "blocks": int,
        "shards": int,
        "workers": int,
        "heaviest_bin_pairs": int,
        "matches": int,
        "matches_identical": int,
        "stream_candidates_identical": int,
        "parallel_chases": int,
        "serial_seconds": float,
        "parallel_seconds": float,
        "wallclock_speedup": float,
        "critical_path_speedup": float,
    },
    "plan_factorised": {
        "K": int,
        "entities": int,
        "candidates": int,
        "groups": int,
        "factorisation_ratio": float,
        "matches": int,
        "matches_identical": int,
        "factorised_evaluations": int,
        "pairwise_evaluations": int,
        "evaluation_saving": float,
        "factorised_seconds": float,
        "pairwise_seconds": float,
    },
    "obs_tracer_overhead": {
        "K": int,
        "traced_off_events": int,
        "traced_on_events": int,
        "noop_call_seconds": float,
        "untraced_seconds": float,
        "overhead_fraction": float,
        "reports_identical": int,
    },
    "store_sqlite": {
        "records": int,
        "ingest_seconds": float,
        "records_per_sec": float,
        "disk_bytes": int,
        "matched_clusters": int,
        "warm_restart_seconds": float,
        "snapshot_rebuild_seconds": float,
        "restart_speedup": float,
        "clusters_identical": int,
    },
    "serve": {
        "records": int,
        "batches": int,
        "ingest_seconds": float,
        "ingest_rps": float,
        "match_requests": int,
        "match_p50_ms": float,
        "match_p99_ms": float,
        "chases_batched": int,
        "chases_unbatched": int,
        "chase_ratio": float,
        "clusters_equal": int,
    },
}

#: Keys every histogram summary in a ``metrics`` payload must carry
#: when it observed anything.
_HISTOGRAM_KEYS = ("count", "min", "max", "mean", "p50", "p95", "p99")


def check_metrics(name: str, metrics: object) -> list:
    """Problems with a document's ``metrics`` payload (registry shape)."""
    if not isinstance(metrics, dict):
        return [f"{name}: 'metrics' must be an object"]
    problems = []
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            problems.append(f"{name}: metrics missing '{section}' object")
    for counter, value in (metrics.get("counters") or {}).items():
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(
                f"{name}: metrics counter {counter!r} is not an integer"
            )
    for histogram, summary in (metrics.get("histograms") or {}).items():
        if not isinstance(summary, dict) or "count" not in summary:
            problems.append(
                f"{name}: metrics histogram {histogram!r} has no 'count'"
            )
            continue
        if not summary["count"]:
            continue
        for key in _HISTOGRAM_KEYS:
            if not isinstance(summary.get(key), (int, float)) or isinstance(
                summary.get(key), bool
            ):
                problems.append(
                    f"{name}: metrics histogram {histogram!r} missing "
                    f"or mistyped {key!r}"
                )
    return problems


def check_document(document: dict) -> list:
    """Problems with one benchmark document (empty list = OK)."""
    problems = []
    name = document.get("benchmark")
    if name not in SCHEMAS:
        return [f"unknown benchmark name: {name!r}"]
    for key, expected in SCHEMAS[name].items():
        if key not in document:
            problems.append(f"{name}: missing key {key!r}")
            continue
        value = document[key]
        if expected is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected) and not isinstance(value, bool)
        if not ok:
            problems.append(
                f"{name}: key {key!r} has type {type(value).__name__}, "
                f"expected {expected.__name__}"
            )
    if "metrics" in document:
        problems.extend(check_metrics(name, document["metrics"]))
    if problems:
        return problems

    # Cross-field invariants (regression checks, not timing checks).
    if name == "engine_streaming_ingest":
        if document["records"] <= 0 or document["matched_clusters"] <= 0:
            problems.append(f"{name}: empty run")
        if document["comparisons"] <= 0:
            problems.append(f"{name}: no comparisons charged")
    elif name == "engine_vs_batch_rerun":
        if document["saving_factor"] <= 10:
            problems.append(
                f"{name}: saving_factor {document['saving_factor']:.1f} "
                "regressed below the asserted 10x"
            )
        if document["stream_comparisons"] >= document["batch_rerun_comparisons"]:
            problems.append(f"{name}: stream costs more than batch re-runs")
    elif name == "plan_kernel_vs_naive":
        if document["plan_evaluations"] >= document["naive_evaluations"]:
            problems.append(
                f"{name}: compiled plan no longer saves evaluations "
                f"({document['plan_evaluations']} >= "
                f"{document['naive_evaluations']})"
            )
        if document["plan_cache_hits"] <= 0:
            problems.append(f"{name}: similarity cache never hit")
        if document["matches"] <= 0:
            problems.append(f"{name}: no matches decided")
    elif name == "plan_parallel_chase":
        if document["matches_identical"] != 1:
            problems.append(
                f"{name}: parallel and serial chases decided different "
                "matches"
            )
        if document["parallel_chases"] < 1:
            problems.append(f"{name}: the pool never ran (serial fallback)")
        if document["shards"] <= document["workers"]:
            problems.append(
                f"{name}: only {document['shards']} shard(s) for "
                f"{document['workers']} workers — partitioning regressed"
            )
        # The deterministic acceptance bound (wallclock_speedup is
        # reported but never checked here: shared runners, 1-2 cores).
        if document["critical_path_speedup"] < 1.5:
            problems.append(
                f"{name}: critical-path speedup "
                f"{document['critical_path_speedup']:.2f} regressed below "
                "the asserted 1.5x"
            )
        if document["matches"] <= 0:
            problems.append(f"{name}: no matches decided")
    elif name == "sn_index":
        if document["matches_identical"] != 1:
            problems.append(
                f"{name}: sharded and serial SN chases decided different "
                "matches"
            )
        if document["stream_candidates_identical"] != 1:
            problems.append(
                f"{name}: the streamed rank index diverged from the batch "
                "candidate universe"
            )
        if document["parallel_chases"] < 1:
            problems.append(
                f"{name}: the pool never ran — the SN single-component "
                "serial fallback is back"
            )
        if document["shards"] <= document["workers"]:
            problems.append(
                f"{name}: only {document['shards']} shard(s) for "
                f"{document['workers']} workers — window runs no longer "
                "split at block boundaries"
            )
        if document["blocks"] <= 1:
            problems.append(
                f"{name}: the rank encoding collapsed to {document['blocks']} "
                "block(s)"
            )
        # The deterministic acceptance bound (wallclock_speedup is
        # reported but never checked here: shared runners, 1-2 cores).
        if document["critical_path_speedup"] < 1.5:
            problems.append(
                f"{name}: critical-path speedup "
                f"{document['critical_path_speedup']:.2f} regressed below "
                "the asserted 1.5x"
            )
        if document["matches"] <= 0:
            problems.append(f"{name}: no matches decided")
    elif name == "plan_factorised":
        if document["matches_identical"] != 1:
            problems.append(
                f"{name}: factorised and pairwise chases decided different "
                "matches"
            )
        if document["groups"] >= document["candidates"]:
            problems.append(
                f"{name}: {document['groups']} group(s) for "
                f"{document['candidates']} candidate pair(s) — "
                "factorisation collapsed nothing"
            )
        if document["factorised_evaluations"] * 3 > document["pairwise_evaluations"]:
            problems.append(
                f"{name}: evaluation saving "
                f"{document['evaluation_saving']:.2f} regressed below the "
                "asserted 3x"
            )
        if document["matches"] <= 0:
            problems.append(f"{name}: no matches decided")
    elif name == "obs_tracer_overhead":
        if document["traced_off_events"] != 0:
            problems.append(
                f"{name}: tracing-off run recorded "
                f"{document['traced_off_events']} span(s); the null tracer "
                "must record none"
            )
        if document["traced_on_events"] <= 0:
            problems.append(f"{name}: tracing-on run recorded no spans")
        if document["overhead_fraction"] >= 0.02:
            problems.append(
                f"{name}: no-op instrumentation overhead "
                f"{document['overhead_fraction']:.4f} regressed above the "
                "asserted 2%"
            )
        if document["reports_identical"] != 1:
            problems.append(
                f"{name}: traced and untraced runs decided different matches"
            )
    elif name == "store_sqlite":
        if document["records"] <= 0 or document["matched_clusters"] <= 0:
            problems.append(f"{name}: empty run")
        if document["disk_bytes"] <= 0:
            problems.append(f"{name}: store wrote nothing to disk")
        if document["clusters_identical"] != 1:
            problems.append(
                f"{name}: warm-restarted and snapshot-rebuilt stores "
                "report different clusters"
            )
        # The durable backend's acceptance bound: reopening the database
        # (meta read only) must beat replaying the JSON snapshot.
        if document["restart_speedup"] < 5:
            problems.append(
                f"{name}: warm-restart speedup "
                f"{document['restart_speedup']:.1f} regressed below the "
                "asserted 5x"
            )
    elif name == "serve":
        if document["records"] <= 0 or document["batches"] <= 0:
            problems.append(f"{name}: empty run")
        if document["clusters_equal"] != 1:
            problems.append(
                f"{name}: batched service and per-record ingest decided "
                "different clusters"
            )
        if document["chases_batched"] >= document["chases_unbatched"]:
            problems.append(
                f"{name}: micro-batching no longer amortizes the chase "
                f"({document['chases_batched']} >= "
                f"{document['chases_unbatched']})"
            )
        # The service's acceptance bound: one pooled screening chase
        # per micro-batch must at least halve chase invocations.
        if document["chase_ratio"] < 2:
            problems.append(
                f"{name}: chase amortization "
                f"{document['chase_ratio']:.2f} regressed below the "
                "asserted 2x"
            )
        if document["match_requests"] <= 0:
            problems.append(f"{name}: no match requests measured")
        if document["match_p50_ms"] > document["match_p99_ms"]:
            problems.append(f"{name}: match p50 exceeds p99")
    return problems


def check_file(path: Path) -> int:
    """Check one benchmark JSON-lines file; returns the failure count."""
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return 1
    lines = [
        line for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not lines:
        print(f"error: {path} is empty — no benchmark emitted JSON", file=sys.stderr)
        return 1
    failures = 0
    seen = set()
    for number, line in enumerate(lines, start=1):
        try:
            document = json.loads(line)
        except json.JSONDecodeError as error:
            print(f"{path}:{number}: invalid JSON ({error})", file=sys.stderr)
            failures += 1
            continue
        seen.add(document.get("benchmark"))
        for problem in check_document(document):
            print(f"{path}:{number}: {problem}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} problem(s) in {path}", file=sys.stderr)
    else:
        print(f"ok: {path}: {len(lines)} benchmark document(s), {sorted(seen)}")
    return failures


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = sum(check_file(Path(arg)) for arg in argv[1:])
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python
"""Schema-check the JSON lines emitted by the benchmark suite.

CI runs the JSON-emitting benchmarks at smoke scale
(``REPRO_BENCH_TINY=1``) with ``REPRO_BENCH_JSON`` pointing at a scratch
file, then validates that file here.  The checks are *structural and
invariant-based*, never timing-based, so the job is stable on shared
runners:

* every known benchmark document carries its required keys with the
  right types;
* cross-field invariants hold (the kernel charges fewer evaluations
  than the naive path, the streaming engine beats batch re-runs, ...).

Exit status 0 when every line passes, 1 with a per-line report otherwise.

Usage::

    python benchmarks/check_bench_json.py bench.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Required keys (name -> type) per benchmark document.
SCHEMAS = {
    "engine_streaming_ingest": {
        "scenario": str,
        "records": int,
        "seconds_per_stream": float,
        "records_per_sec": float,
        "comparisons": int,
        "matched_clusters": int,
    },
    "engine_vs_batch_rerun": {
        "records": int,
        "batch_seconds_per_run": float,
        "batch_candidates": int,
        "stream_comparisons": int,
        "batch_rerun_comparisons": int,
        "saving_factor": float,
    },
    "plan_kernel_vs_naive": {
        "K": int,
        "candidates": int,
        "matches": int,
        "plan_evaluations": int,
        "plan_cache_hits": int,
        "naive_evaluations": int,
        "evaluation_saving": float,
        "plan_seconds": float,
        "naive_seconds": float,
    },
    "plan_parallel_chase": {
        "K": int,
        "candidates": int,
        "shards": int,
        "workers": int,
        "heaviest_bin_pairs": int,
        "matches": int,
        "matches_identical": int,
        "parallel_chases": int,
        "serial_seconds": float,
        "parallel_seconds": float,
        "wallclock_speedup": float,
        "critical_path_speedup": float,
    },
}


def check_document(document: dict) -> list:
    """Problems with one benchmark document (empty list = OK)."""
    problems = []
    name = document.get("benchmark")
    if name not in SCHEMAS:
        return [f"unknown benchmark name: {name!r}"]
    for key, expected in SCHEMAS[name].items():
        if key not in document:
            problems.append(f"{name}: missing key {key!r}")
            continue
        value = document[key]
        if expected is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected) and not isinstance(value, bool)
        if not ok:
            problems.append(
                f"{name}: key {key!r} has type {type(value).__name__}, "
                f"expected {expected.__name__}"
            )
    if problems:
        return problems

    # Cross-field invariants (regression checks, not timing checks).
    if name == "engine_streaming_ingest":
        if document["records"] <= 0 or document["matched_clusters"] <= 0:
            problems.append(f"{name}: empty run")
        if document["comparisons"] <= 0:
            problems.append(f"{name}: no comparisons charged")
    elif name == "engine_vs_batch_rerun":
        if document["saving_factor"] <= 10:
            problems.append(
                f"{name}: saving_factor {document['saving_factor']:.1f} "
                "regressed below the asserted 10x"
            )
        if document["stream_comparisons"] >= document["batch_rerun_comparisons"]:
            problems.append(f"{name}: stream costs more than batch re-runs")
    elif name == "plan_kernel_vs_naive":
        if document["plan_evaluations"] >= document["naive_evaluations"]:
            problems.append(
                f"{name}: compiled plan no longer saves evaluations "
                f"({document['plan_evaluations']} >= "
                f"{document['naive_evaluations']})"
            )
        if document["plan_cache_hits"] <= 0:
            problems.append(f"{name}: similarity cache never hit")
        if document["matches"] <= 0:
            problems.append(f"{name}: no matches decided")
    elif name == "plan_parallel_chase":
        if document["matches_identical"] != 1:
            problems.append(
                f"{name}: parallel and serial chases decided different "
                "matches"
            )
        if document["parallel_chases"] < 1:
            problems.append(f"{name}: the pool never ran (serial fallback)")
        if document["shards"] <= document["workers"]:
            problems.append(
                f"{name}: only {document['shards']} shard(s) for "
                f"{document['workers']} workers — partitioning regressed"
            )
        # The deterministic acceptance bound (wallclock_speedup is
        # reported but never checked here: shared runners, 1-2 cores).
        if document["critical_path_speedup"] < 1.5:
            problems.append(
                f"{name}: critical-path speedup "
                f"{document['critical_path_speedup']:.2f} regressed below "
                "the asserted 1.5x"
            )
        if document["matches"] <= 0:
            problems.append(f"{name}: no matches decided")
    return problems


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return 1
    lines = [
        line for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not lines:
        print(f"error: {path} is empty — no benchmark emitted JSON", file=sys.stderr)
        return 1
    failures = 0
    seen = set()
    for number, line in enumerate(lines, start=1):
        try:
            document = json.loads(line)
        except json.JSONDecodeError as error:
            print(f"line {number}: invalid JSON ({error})", file=sys.stderr)
            failures += 1
            continue
        seen.add(document.get("benchmark"))
        for problem in check_document(document):
            print(f"line {number}: {problem}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} problem(s) in {path}", file=sys.stderr)
        return 1
    print(f"ok: {len(lines)} benchmark document(s), {sorted(seen)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

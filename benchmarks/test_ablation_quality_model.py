"""Ablation — the quality model's terms (Section 5 / future work §8).

The paper's cost has three terms: diversity (w1·ct), value length (w2·lt)
and accuracy (w3/ac), and Section 8 lists "the impact of various quality
models on deducing RCKs" as an open question.  This ablation measures two
observable effects on the extended-schema workload:

* *diversity*: with w1 on, consecutive RCKs share fewer attribute pairs;
* *length*: with w2 on (lt from data), deduced keys prefer shorter
  attributes, which translates into better blocking pairs-completeness
  under length-weighted noise.
"""

from __future__ import annotations

import pytest

from repro.core.findrcks import find_rcks, pairing
from repro.core.quality import CostModel, length_statistics_from_rows
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.harness import Table


def _mean_overlap(keys):
    """Average Jaccard overlap of attribute-pair sets of consecutive keys."""
    if len(keys) < 2:
        return 0.0
    overlaps = []
    for first, second in zip(keys, keys[1:]):
        a = set(first.attribute_pairs())
        b = set(second.attribute_pairs())
        overlaps.append(len(a & b) / len(a | b))
    return sum(overlaps) / len(overlaps)


@pytest.fixture(scope="module")
def workload():
    dataset = generate_dataset(1000, seed=0)
    sigma = extended_mds(dataset.pair)
    pairs = pairing(sigma, dataset.target)
    lengths = length_statistics_from_rows(
        pairs,
        [row.values() for row in dataset.credit.rows()[:200]],
        [row.values() for row in dataset.billing.rows()[:200]],
    )
    longest = max(lengths.values())
    normalized = {key: value / longest for key, value in lengths.items()}
    return dataset, sigma, normalized


def test_ablation_quality_model(benchmark, workload):
    dataset, sigma, lengths = workload

    variants = {
        "full (w1=w2=w3=1)": CostModel(lengths=lengths),
        "no diversity (w1=0)": CostModel(w1=0.0, lengths=lengths),
        "no length (w2=0)": CostModel(w2=0.0),
    }

    table = Table(
        "Ablation: quality-model terms (m=5 RCKs, extended schemas)",
        ["variant", "mean overlap", "mean key length", "keys"],
    )
    for name, model in variants.items():
        keys = find_rcks(sigma, dataset.target, m=5, cost_model=model)
        mean_length = sum(key.length for key in keys) / len(keys)
        table.add(name, _mean_overlap(keys), mean_length, len(keys))

    benchmark(
        find_rcks, sigma, dataset.target, 5,
        CostModel(lengths=lengths),
    )

    print()
    print(table.render())

    full_keys = find_rcks(
        sigma, dataset.target, m=5, cost_model=CostModel(lengths=lengths)
    )
    no_diversity = find_rcks(
        sigma, dataset.target, m=5, cost_model=CostModel(w1=0.0, lengths=lengths)
    )
    # The diversity counter must not *increase* attribute overlap.
    assert _mean_overlap(full_keys) <= _mean_overlap(no_diversity) + 0.15

"""Fig. 8 — scalability of findRCKs (Section 6.1).

* Fig. 8(a): runtime vs card(Σ) at m = 20;
* Fig. 8(b): runtime vs m at fixed card(Σ);
* Fig. 8(c): total number of RCKs from small Σ.

The benchmark fixture times a representative point of each panel; the full
series is computed once per session and printed as the figure's table.
"""

from __future__ import annotations

import pytest

from repro.core.findrcks import find_rcks
from repro.datagen.mdgen import generate_workload
from repro.experiments import exp_scalability

from conftest import fig8a_cards, fig8b_card, fig8b_ms, fig8_y_lengths


@pytest.fixture(scope="module")
def fig8a_series():
    records = exp_scalability.fig8a(
        card_values=fig8a_cards(), y_lengths=fig8_y_lengths(), m=20
    )
    return records


@pytest.fixture(scope="module")
def fig8b_series():
    return exp_scalability.fig8b(
        m_values=fig8b_ms(), card=fig8b_card(), y_lengths=fig8_y_lengths()
    )


@pytest.fixture(scope="module")
def fig8c_series():
    return exp_scalability.fig8c(
        card_values=(10, 20, 30, 40), y_lengths=fig8_y_lengths()
    )


def test_fig8a_findrcks_vs_card(benchmark, fig8a_series):
    """Time one mid-axis point; print the full Fig. 8(a) series."""
    workload = generate_workload(
        md_count=max(fig8a_cards()) // 2, target_length=8, seed=0
    )

    benchmark(find_rcks, list(workload.sigma), workload.target, 20)

    print()
    print(exp_scalability.render_fig8(fig8a_series, [], [])
          .split("\n\n")[0])
    # Sanity: runtime grows with card(Σ) (monotone trend per |Y1| series,
    # allowing noise at small sizes).
    by_y = {}
    for record in fig8a_series:
        by_y.setdefault(record["|Y1|"], []).append(record["seconds"])
    for series in by_y.values():
        assert series[-1] >= series[0] * 0.2  # no pathological collapse


def test_fig8b_findrcks_vs_m(benchmark, fig8b_series):
    workload = generate_workload(
        md_count=fig8b_card(), target_length=8, seed=0
    )

    benchmark(find_rcks, list(workload.sigma), workload.target, max(fig8b_ms()))

    print()
    print(exp_scalability.render_fig8([], fig8b_series, [])
          .split("\n\n")[1])


def test_fig8c_total_rcks(benchmark, fig8c_series):
    workload = generate_workload(
        md_count=40, target_length=8, arity=32, max_lhs=2, max_rhs=1,
        rhs_target_bias=0.2, seed=0,
    )

    benchmark(find_rcks, list(workload.sigma), workload.target, 500)

    print()
    print(exp_scalability.render_fig8([], [], fig8c_series)
          .split("\n\n")[2])
    # The paper's point: even small Σ yields a useful number of RCKs.
    assert all(record["total RCKs"] >= 1 for record in fig8c_series)

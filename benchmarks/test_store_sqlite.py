"""BENCH — durable SQLite store: ingest throughput and warm restarts.

Measures records/sec for a fully durable ingest (one committed SQLite
transaction per record) and the payoff the durability buys: reopening
the database is O(1) — only the meta table is read — where restoring a
JSON snapshot replays every record through the matcher's indexes and
union-find.  The headline invariant is ``restart_speedup``: the warm
restart must beat the snapshot rebuild by at least 5x, and both restored
stores must report identical clusters.

One JSON document is emitted (appended to ``REPRO_BENCH_JSON`` when
set), schema-checked in CI by ``benchmarks/check_bench_json.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import Workspace
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import duplicate_burst_stream
from repro.engine import SQLiteMatchStore, load_store, save_store

from conftest import engine_stream_size


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(engine_stream_size(), seed=11)


@pytest.fixture(scope="module")
def workload(dataset):
    return duplicate_burst_stream(dataset, seed=3)


def _workspace(dataset, path):
    return (
        Workspace.builder()
        .pair(dataset.pair)
        .target(dataset.target)
        .mds(extended_mds(dataset.pair))
        .execution(top_k=5)
        .persistence("sqlite", str(path))
        .workspace()
    )


def _best_of(runs, action):
    """Fastest of ``runs`` timed calls — the least-noise estimator on
    shared runners (cold caches and scheduler hiccups only add time)."""
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        result = action()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_durable_ingest_and_warm_restart(benchmark, dataset, workload,
                                         tmp_path):
    db_path = tmp_path / "bench-store.db"

    def durable_ingest():
        if db_path.exists():
            db_path.unlink()
        matcher = _workspace(dataset, db_path).stream()
        matcher.ingest_stream(workload.events)
        matcher.store.close()
        return matcher

    benchmark.pedantic(durable_ingest, rounds=3, iterations=1,
                       warmup_rounds=0)
    ingest_seconds = benchmark.stats.stats.mean

    # The same final state as a JSON snapshot, for the restart race.
    store = SQLiteMatchStore(db_path)
    snapshot_path = tmp_path / "bench-store.json"
    save_store(store, snapshot_path)
    disk_bytes = store.disk_bytes()
    clusters = store.clusters()
    store.close(commit=False)

    def warm_restart():
        reopened = SQLiteMatchStore(db_path)
        reopened.close(commit=False)
        return SQLiteMatchStore(db_path)

    def snapshot_rebuild():
        return load_store(snapshot_path)

    warm_seconds, warm_store = _best_of(5, warm_restart)
    rebuild_seconds, rebuilt_store = _best_of(5, snapshot_rebuild)
    clusters_identical = int(
        warm_store.clusters() == clusters == rebuilt_store.clusters()
    )
    warm_store.close(commit=False)
    speedup = rebuild_seconds / max(warm_seconds, 1e-9)

    _emit({
        "benchmark": "store_sqlite",
        "records": len(workload.events),
        "ingest_seconds": ingest_seconds,
        "records_per_sec": len(workload.events) / ingest_seconds,
        "disk_bytes": disk_bytes,
        "matched_clusters": len(clusters),
        "warm_restart_seconds": warm_seconds,
        "snapshot_rebuild_seconds": rebuild_seconds,
        "restart_speedup": speedup,
        "clusters_identical": clusters_identical,
    })
    assert clusters_identical == 1
    assert speedup >= 5.0

"""Ablation — noise-model calibration (EXPERIMENTS.md note).

Section 6.2's noise description is ambiguous: "errors were introduced to
each attribute in the duplicates, with probability 80%".  Read literally
(80 % of all attribute values damaged) *no* matcher retains usable recall,
contradicting the paper's reported 75–97 %; read as "80 % of duplicates
get errors in a few attributes" the reported quality levels are
reachable.  This bench runs the RCK matcher under the default, light and
harsh models to document the calibration choice quantitatively.
"""

from __future__ import annotations


from repro.core.findrcks import find_rcks
from repro.datagen.generator import generate_dataset
from repro.datagen.noise import NoiseModel, harsh_noise, light_noise
from repro.datagen.schemas import extended_mds
from repro.experiments.harness import Table
from repro.matching.evaluate import evaluate_matches
from repro.matching.pipeline import RCKMatcher


def _run(noise, seed=0, size=800):
    dataset = generate_dataset(size, noise=noise, seed=seed)
    rcks = find_rcks(extended_mds(dataset.pair), dataset.target, m=5)
    matcher = RCKMatcher(rcks)
    result = matcher.match(dataset.credit, dataset.billing)
    return evaluate_matches(result.matches, dataset.true_matches)


def test_ablation_noise_models(benchmark):
    table = Table(
        "Ablation: noise-model reading (RCK matcher, K=800)",
        ["noise model", "precision", "recall", "f1"],
    )
    qualities = {}
    for name, noise in (
        ("default (80% of tuples, 1-4 attrs)", NoiseModel()),
        ("light (typos only)", light_noise()),
        ("harsh (literal 80% of attrs)", harsh_noise()),
    ):
        quality = _run(noise)
        qualities[name] = quality
        table.add(name, quality.precision, quality.recall, quality.f1)

    benchmark(_run, NoiseModel(), 1, 400)

    print()
    print(table.render())

    # The calibration argument: the literal reading destroys recall.
    assert qualities["harsh (literal 80% of attrs)"].recall < 0.5
    assert qualities["default (80% of tuples, 1-4 attrs)"].recall > 0.8
    assert qualities["light (typos only)"].recall >= (
        qualities["default (80% of tuples, 1-4 attrs)"].recall - 0.05
    )

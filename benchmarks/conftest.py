"""Shared benchmark configuration.

Each benchmark module regenerates one table/figure of the paper's Section 6
(see DESIGN.md's per-experiment index).  Axes are scaled down by default so
``pytest benchmarks/ --benchmark-only`` completes in minutes on a laptop;
set ``REPRO_BENCH_FULL=1`` for the paper-scale axes (card(Σ) up to 2000,
m up to 50, K up to 8000), which is what EXPERIMENTS.md records.

Benchmarks print their result tables; run with ``-s`` (or read the
captured output) to see the regenerated figures.

``REPRO_BENCH_TINY=1`` shrinks every axis to smoke-test scale (seconds of
runtime): CI uses it to run the JSON-emitting benchmarks on every push and
schema-check their output (``benchmarks/check_bench_json.py``) without
caring about timing.
"""

from __future__ import annotations

import os

import pytest

#: Full-scale axes (paper-shaped, minutes of runtime).
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Smoke-test axes (CI: schema/regression checks only, no timing claims).
TINY = bool(int(os.environ.get("REPRO_BENCH_TINY", "0")))


def fig8a_cards():
    return tuple(range(200, 2001, 200)) if FULL else (200, 600, 1000)


def fig8_y_lengths():
    return (6, 8, 10, 12) if FULL else (6, 10)


def fig8b_ms():
    return tuple(range(5, 51, 5)) if FULL else (5, 20, 35, 50)


def fig8b_card():
    return 2000 if FULL else 600

def matching_sizes():
    if TINY:
        return (200,)
    return (1000, 2000, 4000, 8000) if FULL else (500, 1000, 2000)


def engine_stream_size():
    if TINY:
        return 150
    return 2000 if FULL else 500


def kernel_size():
    if TINY:
        return 250
    return 2000 if FULL else 1000


def parallel_size():
    if TINY:
        return 300
    return 4000 if FULL else 1500


def factorised_size():
    if TINY:
        return 250
    return 4000 if FULL else 1000


def sn_index_size():
    if TINY:
        return 300
    return 4000 if FULL else 1500


def serve_size():
    if TINY:
        return 300
    return 1200 if FULL else 600


@pytest.fixture(scope="session")
def bench_sizes():
    return matching_sizes()

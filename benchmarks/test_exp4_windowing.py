"""Exp-4, windowing variant (reported in the text of Section 6.2).

"We also conducted experiments to evaluate the effectiveness of RCKs in
windowing, and found the results comparable to those reported in
Fig. 9(d) and Fig. 10(d)."  This bench regenerates those unplotted
numbers: PC/RR of sorted-window candidate generation with RCK sort keys
versus manual keys.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp_blocking


@pytest.fixture(scope="module")
def series(bench_sizes):
    return exp_blocking.run(sizes=bench_sizes, seed=0, mode="windowing")


def test_exp4_windowing(benchmark, series, bench_sizes):
    size = max(bench_sizes)

    record = benchmark(exp_blocking.run_point, size, 0, None, "windowing")
    assert record["mode"] == "windowing"

    print()
    print(exp_blocking.render(series))

    for row in series:
        # Same shape as blocking: RCK keys at least as complete, RR high.
        assert row["RCK PC"] >= row["manual PC"] - 0.05
        assert row["RCK RR"] > 0.9

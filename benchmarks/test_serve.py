"""BENCH — the resolution service: micro-batched ingest over HTTP.

Runs the real server (asyncio loop on its own thread, stdlib
``http.client`` driving the wire protocol) over a serving-shaped
workload: a warm partial customer base, then live billing traffic, most
of it from unknown card holders.  Three claims are measured:

* ingest throughput through the full HTTP + micro-batch + engine stack
  (records/sec, reported only — no timing assertion on shared runners);
* match latency quantiles straight from the server's own
  ``serve.match.seconds`` histogram (p50/p99);
* the amortization headline: one pooled screening chase per micro-batch
  must cut enforcement-chase invocations by **at least 2x** against
  one-at-a-time ingest of the same events — at *equal correctness*
  (identical final clusters), which is the deterministic acceptance
  bound checked here and in ``check_bench_json.py``.

One JSON document is emitted (appended to ``REPRO_BENCH_JSON`` when
set); the committed baseline lives at
``benchmarks/baselines/BENCH_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from pathlib import Path

from repro.api import Workspace
from repro.core.schema import LEFT
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import arrival_stream
from repro.serve import ResolutionServer, ServerThread

from conftest import serve_size

BATCH = 32
MATCH_REQUESTS = 20


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _serving_workload(size):
    """Warm base + live traffic: 20% of card holders are enrolled up
    front, then every billing transaction arrives — most from unknown
    holders, so their micro-batches screen cleanly in one pooled chase.
    """
    source = generate_dataset(
        size, duplicate_fraction=0.15, namesake_fraction=0.35, seed=13
    )
    events = list(arrival_stream(source).events)
    credit = [event for event in events if event.side == LEFT]
    billing = [event for event in events if event.side != LEFT]
    warm = [event for event in credit if (event.entity % 100) < 20]
    return source, warm + billing


def _spec(source):
    return (
        Workspace.builder()
        .pair(source.pair)
        .target(source.target)
        .mds(extended_mds(source.pair))
        .blocking("hash")
        .execution(top_k=5)
        .serve(port=0, max_batch=BATCH, max_delay_ms=20)
        .build()
    )


def _request(connection, method, path, body=None):
    payload = json.dumps(body) if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    return response.status, json.loads(raw)


def test_micro_batched_service_amortizes_the_chase():
    source, stream = _serving_workload(serve_size())
    spec = _spec(source)
    thread = ServerThread(ResolutionServer(spec))
    host, port = thread.start()
    try:
        connection = http.client.HTTPConnection(host, port, timeout=120)
        try:
            # Ingest through the wire in full micro-batches (the
            # steady-traffic shape); wall time covers HTTP framing,
            # queueing, and the pooled-chase engine work.
            batches = 0
            started = time.perf_counter()
            for start in range(0, len(stream), BATCH):
                status, body = _request(
                    connection,
                    "POST",
                    "/ingest",
                    {
                        "records": [
                            {
                                "side": "left" if event.side == LEFT else "right",
                                "values": dict(event.values),
                                "tid": event.tid,
                            }
                            for event in stream[start : start + BATCH]
                        ]
                    },
                )
                assert status == 200, body
                batches += 1
            ingest_seconds = time.perf_counter() - started
            # Snapshot the chase counter now: the match phase below
            # drives the same compiled plan and would inflate it.
            chases_batched = (
                thread.server.tenant.workspace.plan.stats.enforcements
            )

            # Match latency, measured by the server itself: quantiles
            # come from its per-endpoint histogram, not client clocks.
            left_rows = [
                dict(event.values) for event in stream if event.side == LEFT
            ][:3]
            right_rows = [
                dict(event.values) for event in stream if event.side != LEFT
            ][:3]
            for _ in range(MATCH_REQUESTS):
                status, body = _request(
                    connection,
                    "POST",
                    "/match",
                    {"left": left_rows, "right": right_rows},
                )
                assert status == 200, body
            status, metrics = _request(connection, "GET", "/metrics")
            assert status == 200
            summary = metrics["server"]["histograms"]["serve.match.seconds"]
            assert summary["count"] == MATCH_REQUESTS
        finally:
            connection.close()

        server_clusters = thread.server.tenant.matcher.store.clusters()
    finally:
        thread.stop()

    # The unbatched control: the same events, one chase per record.
    offline = Workspace(spec)
    offline_matcher = offline.stream()
    offline_matcher.ingest_stream(stream)
    chases_unbatched = offline.plan.stats.enforcements
    chase_ratio = chases_unbatched / max(chases_batched, 1)
    clusters_equal = int(server_clusters == offline_matcher.store.clusters())

    _emit({
        "benchmark": "serve",
        "records": len(stream),
        "batches": batches,
        "ingest_seconds": ingest_seconds,
        "ingest_rps": len(stream) / ingest_seconds,
        "match_requests": MATCH_REQUESTS,
        "match_p50_ms": summary["p50"] * 1000.0,
        "match_p99_ms": summary["p99"] * 1000.0,
        "chases_batched": chases_batched,
        "chases_unbatched": chases_unbatched,
        "chase_ratio": chase_ratio,
        "clusters_equal": clusters_equal,
    })
    assert clusters_equal == 1
    assert chase_ratio >= 2.0

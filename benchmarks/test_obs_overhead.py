"""BENCH — the cost of leaving instrumentation in place, tracing off.

Acceptance benchmark for ``repro.obs``: the tracing hooks are threaded
unconditionally through the chase, the workspace, and the engine, so
they MUST be ~free when tracing is off.  Two guarantees are pinned:

* a tracing-off run records **zero** span events (the shared
  :data:`~repro.obs.trace.NULL_TRACER` never allocates or reads the
  clock), and decides exactly the matches of a traced run with the same
  fingerprint;
* the projected overhead of the no-op calls — the number of spans a
  traced run of the same workload records, times the measured per-call
  cost of a null span — stays **under 2%** of the untraced run's
  wall-clock.  The projection is deterministic (a microbenchmark times
  the null span in a tight loop), so the assertion is stable on shared
  single-core CI runners where comparing two noisy end-to-end timings
  would not be.

Results are printed as one JSON document and appended to
``REPRO_BENCH_JSON`` when set; CI schema-checks the output with
``benchmarks/check_bench_json.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.api import Workspace
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.harness import resolution_spec_document, timed
from repro.obs import MetricsRegistry
from repro.obs.trace import NULL_TRACER

from conftest import parallel_size

#: Null-span microbenchmark iterations (enough to resolve sub-µs costs).
NOOP_CALLS = 200_000


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _noop_call_seconds(calls: int = NOOP_CALLS) -> float:
    """Measured per-call cost of one disabled span (enter + exit)."""
    span = NULL_TRACER.span  # the attribute load the hot path performs
    start = time.perf_counter()
    for _ in range(calls):
        with span("x"):
            pass
    return (time.perf_counter() - start) / calls


def run_overhead_point(size: int, seed: int = 3):
    """Untraced vs traced match on one K of the scalability workload."""
    dataset = generate_dataset(size, seed=seed)
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2},
        execution={"mode": "enforce"},
    )

    off_workspace = Workspace.from_dict(document)
    off_report, off_seconds = timed(
        off_workspace.match, dataset.credit, dataset.billing
    )
    off_events = off_workspace.tracer.event_count()

    traced_document = dict(document)
    traced_document["observability"] = {"enabled": True}
    on_workspace = Workspace.from_dict(traced_document)
    on_report = on_workspace.match(dataset.credit, dataset.billing)
    on_events = on_workspace.tracer.event_count()

    per_call = _noop_call_seconds()
    overhead_fraction = (
        on_events * per_call / off_seconds if off_seconds else 0.0
    )
    registry = MetricsRegistry()
    registry.count("obs.traced_on_events", on_events)
    registry.observe("obs.noop_call_seconds", per_call)
    registry.observe("obs.untraced_seconds", off_seconds)
    return {
        "benchmark": "obs_tracer_overhead",
        "K": size,
        "traced_off_events": off_events,
        "traced_on_events": on_events,
        "noop_call_seconds": per_call,
        "untraced_seconds": off_seconds,
        "overhead_fraction": overhead_fraction,
        "reports_identical": int(
            off_report.matches == on_report.matches
            and off_report.clusters == on_report.clusters
            and off_report.fingerprint == on_report.fingerprint
        ),
        "metrics": registry.as_dict(),
    }


def test_noop_tracing_overhead_under_two_percent(benchmark):
    """Tracing off records nothing and projects to < 2% of the run."""
    record = benchmark.pedantic(
        run_overhead_point, args=(parallel_size(),),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _emit(record)
    # The null tracer must be truly silent, and free of side effects.
    assert record["traced_off_events"] == 0
    assert record["traced_on_events"] > 0
    assert record["reports_identical"] == 1
    # The acceptance bound: what the untraced run pays for carrying the
    # instrumentation, projected from the measured no-op call cost.
    assert record["overhead_fraction"] < 0.02

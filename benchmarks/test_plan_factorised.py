"""BENCH — the factorised chase vs the pairwise chase.

Acceptance benchmark for ``repro.plan.factorise``: on a high-duplication
workload (few distinct card holders, many near-identical billing records
— :func:`repro.datagen.high_duplication_dataset`), grouping candidate
pairs by their distinct LHS value-pair signature and evaluating one rule
verdict per group must charge **≥ 3× fewer** predicate evaluations than
the pairwise kernel — measured by the plan's own counters — while
deciding identical matches, which the run checks pair by pair before
reporting anything.

Cost accounting: the pairwise kernel's probe cost is the delta of
``metric_evaluations + cache_hits`` (every per-pair predicate probe,
whether or not the similarity memo absorbed it); the factorised kernel's
cost is the delta of ``value_pairs_evaluated`` (one probe per compiled
atom per *distinct* value pair, verdict-cache hits free).  Both runs use
a fresh plan so neither inherits the other's caches.

Results are printed as one JSON document and appended to
``REPRO_BENCH_JSON`` when set; CI schema-checks the output with
``benchmarks/check_bench_json.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.api import Workspace
from repro.core.semantics import InstancePair
from repro.datagen import high_duplication_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.harness import resolution_spec_document, timed

from conftest import factorised_size


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def run_factorised_point(size: int, seed: int = 3):
    """Factorised vs pairwise chase on one high-duplication workload."""
    dataset = high_duplication_dataset(size, seed=seed)
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2},
        execution={"mode": "enforce"},
    )

    def chase(factorised):
        # A fresh workspace per run: the similarity memo and the
        # group-verdict cache must not leak between the two kernels.
        workspace = Workspace.from_dict(document)
        plan = workspace.plan
        pairs = plan.candidates(dataset.credit, dataset.billing)
        instance = InstancePair(plan.pair, dataset.credit, dataset.billing)
        probes_before = plan.stats.metric_evaluations + plan.stats.cache_hits
        value_pairs_before = plan.stats.value_pairs_evaluated
        result, seconds = timed(
            plan.enforce,
            instance,
            candidate_pairs=pairs,
            factorised=factorised,
        )
        target_pairs = plan.target.attribute_pairs()
        matches = [
            pair for pair in pairs if result.identified(*pair, target_pairs)
        ]
        return {
            "workspace": workspace,
            "pairs": pairs,
            "matches": matches,
            "probes": plan.stats.metric_evaluations
            + plan.stats.cache_hits
            - probes_before,
            "value_pairs": plan.stats.value_pairs_evaluated
            - value_pairs_before,
            "stats": plan.stats,
            "seconds": seconds,
        }

    factorised = chase(True)
    pairwise = chase(False)
    saving = pairwise["probes"] / max(1, factorised["value_pairs"])
    registry = factorised["workspace"].metrics
    registry.count("factorised.candidates", len(factorised["pairs"]))
    registry.count("factorised.matches", len(factorised["matches"]))
    registry.count("factorised.pairwise_evaluations", pairwise["probes"])
    registry.observe("factorised.seconds", factorised["seconds"])
    registry.observe("factorised.pairwise_seconds", pairwise["seconds"])
    return {
        "benchmark": "plan_factorised",
        "K": size,
        "entities": len(dataset.credit),
        "candidates": len(factorised["pairs"]),
        "groups": factorised["stats"].groups_built,
        "factorisation_ratio": factorised["stats"].factorisation_ratio,
        "matches": len(factorised["matches"]),
        "matches_identical": int(
            factorised["matches"] == pairwise["matches"]
        ),
        "factorised_evaluations": factorised["value_pairs"],
        "pairwise_evaluations": pairwise["probes"],
        "evaluation_saving": round(saving, 4),
        "factorised_seconds": factorised["seconds"],
        "pairwise_seconds": pairwise["seconds"],
        "metrics": registry.as_dict(),
    }


def test_factorised_fewer_evaluations_than_pairwise(benchmark):
    """Group-at-a-time verdicts beat per-pair probing ≥ 3× at equal results."""
    size = factorised_size()
    record = benchmark.pedantic(
        run_factorised_point, args=(size,), kwargs={"seed": 3},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _emit(record)
    assert record["candidates"] > 0
    assert record["matches"] > 0
    assert record["matches_identical"] == 1
    # Factorisation actually collapsed pairs onto fewer signatures.
    assert record["groups"] < record["candidates"]
    # The acceptance criterion: the factorised kernel charges at least
    # 3x fewer predicate evaluations than the pairwise kernel.
    assert record["factorised_evaluations"] * 3 <= record["pairwise_evaluations"]

"""Fig. 10(a–c) — Sorted Neighborhood with vs without RCKs (Exp-3).

Regenerates the precision (10a), recall (10b) and runtime (10c) series:
SNrck (rules from the top five deduced RCKs) against SN (the 25-rule hand
theory), on shared windowing candidates.

Reproduction target (shape): SNrck precision strictly above SN at every K,
and SNrck faster than SN (fewer, tighter rules).  Note (EXPERIMENTS.md):
our reconstructed 25-rule baseline is more permissive than [20]'s, so its
*recall* is competitive while its precision pays for it — the paper's
baseline lost on both.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp_fs, exp_sn
from repro.matching.rules import rules_from_rcks
from repro.matching.sorted_neighborhood import SortedNeighborhood


@pytest.fixture(scope="module")
def series(bench_sizes):
    return exp_sn.run(sizes=bench_sizes, seed=0)


def test_fig10_sorted_neighborhood(benchmark, series, bench_sizes):
    size = max(bench_sizes)
    dataset, candidates, rcks = exp_fs.prepare(size, seed=0)
    matcher = SortedNeighborhood(rules_from_rcks(rcks), window=10)

    result = benchmark(
        matcher.run_on_candidates, dataset.credit, dataset.billing, candidates
    )
    assert result.match_count > 0

    print()
    print(exp_sn.render(series))

    for record in series:
        assert record["SNrck precision"] > record["SN precision"], (
            f"SNrck must win precision at K={record['K']}"
        )
        assert record["SNrck seconds"] < record["SN seconds"], (
            f"SNrck must be faster at K={record['K']}"
        )
        assert record["SNrck recall"] > 0.85

"""Ablation — mined MDs vs hand-written MDs (Sections 7 and 8).

Section 7: "one can first discover a small set of MDs via sampling and
learning, and then leverage the reasoning techniques to deduce RCKs.  The
initial set of MDs can also be produced by domain knowledge analysis."

This bench runs the full pipeline both ways on the same data — mine MDs
from a labelled sample vs use the 7 expert MDs — deduces RCKs from each,
and compares match quality on a held-out dataset.
"""

from __future__ import annotations

import pytest

from repro.core.findrcks import find_rcks
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.discovery import (
    DiscoveryConfig,
    discover_mds,
    random_labelled_pairs,
    sample_labelled_pairs,
)
from repro.experiments.harness import Table
from repro.matching.evaluate import evaluate_matches
from repro.matching.pipeline import RCKMatcher
from repro.matching.windowing import attribute_key, window_pairs


@pytest.fixture(scope="module")
def pipeline_outputs():
    train = generate_dataset(800, seed=5)
    key = attribute_key(["zip", "LN"])
    candidates = window_pairs(train.credit, train.billing, key, key, 10)
    sample = sample_labelled_pairs(
        candidates, train.true_matches, limit=5000, seed=0
    )
    sample += random_labelled_pairs(
        train.credit, train.billing, train.true_matches, 5000, seed=1
    )
    mined = discover_mds(
        train.credit,
        train.billing,
        sample,
        train.target,
        DiscoveryConfig(min_confidence=0.97, min_support=10, max_lhs=2),
    )
    mined_sigma = [rule.dependency for rule in mined]
    expert_sigma = extended_mds(train.pair)

    held_out = generate_dataset(800, seed=91)
    results = {}
    for label, sigma in (("mined", mined_sigma), ("expert", expert_sigma)):
        rcks = find_rcks(sigma, train.target, m=5)
        matcher = RCKMatcher(rcks)
        outcome = matcher.match(held_out.credit, held_out.billing)
        results[label] = (
            len(sigma),
            evaluate_matches(outcome.matches, held_out.true_matches),
        )
    return results


def test_ablation_discovery_vs_expert(benchmark, pipeline_outputs):
    table = Table(
        "Ablation: mined vs expert MDs (held-out K=800)",
        ["source", "#MDs", "precision", "recall", "f1"],
    )
    for label, (count, quality) in pipeline_outputs.items():
        table.add(label, count, quality.precision, quality.recall, quality.f1)

    train = generate_dataset(400, seed=5)
    key = attribute_key(["zip", "LN"])
    candidates = window_pairs(train.credit, train.billing, key, key, 10)
    sample = sample_labelled_pairs(
        candidates, train.true_matches, limit=3000, seed=0
    ) + random_labelled_pairs(
        train.credit, train.billing, train.true_matches, 3000, seed=1
    )
    benchmark(
        discover_mds,
        train.credit,
        train.billing,
        sample,
        train.target,
        DiscoveryConfig(min_confidence=0.97, min_support=10, max_lhs=2),
    )

    print()
    print(table.render())

    mined_quality = pipeline_outputs["mined"][1]
    expert_quality = pipeline_outputs["expert"][1]
    # Mined rules should be competitive with expert rules (within 10 F1
    # points) — the Section 7 complementarity claim.
    assert mined_quality.f1 > expert_quality.f1 - 0.10
    assert mined_quality.precision > 0.9

"""BENCH — the sharded parallel chase vs the serial loop.

Acceptance benchmark for ``repro.plan.shard``/``repro.plan.parallel``:
on the Fig. 8-style scalability workload (the generated K-record
credit/billing dataset, hash blocking over RCK keys with
``key_length=2`` so the candidate pairs split into many connected
components), chasing with 4 workers must be **≥ 1.5× faster** than the
serial loop — and must decide identical matches, which the run checks
pair by pair before reporting anything.

Two speedups are reported and distinguished honestly:

* ``critical_path_speedup`` — total pair work divided by the heaviest
  worker bin's pair work.  This is the deterministic, machine-independent
  quantity the shard partitioner controls (a perfectly balanced 4-way
  split scores 4.0), and what the ≥ 1.5× assertion pins everywhere,
  including single-core CI runners where true parallel wall-clock gains
  are physically impossible.
* ``wallclock_speedup`` — measured serial seconds over parallel seconds,
  pool start-up and per-worker plan re-compilation included.  Asserted
  ≥ 1.5× only on explicit full-scale runs (``REPRO_BENCH_FULL=1``) on
  machines with ≥ 4 CPUs — never on plain CI, whose shared runners and
  coverage instrumentation make timing assertions flaky by design (the
  suite's standing rule: CI checks structure and counts, not timings).

Results are printed as one JSON document and appended to
``REPRO_BENCH_JSON`` when set; CI schema-checks the output with
``benchmarks/check_bench_json.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.api import Workspace
from repro.core.semantics import InstancePair
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.harness import resolution_spec_document, timed
from repro.plan.shard import assign_shards, shard_pairs

from conftest import FULL, parallel_size

WORKERS = 4


def _emit(payload):
    text = json.dumps(payload, sort_keys=True)
    print()
    print(text)
    sink = os.environ.get("REPRO_BENCH_JSON")
    if sink:
        with Path(sink).open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def run_parallel_point(size: int, seed: int = 3):
    """Serial vs 4-worker chase on one K of the scalability workload."""
    dataset = generate_dataset(size, seed=seed)
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2},
        execution={"mode": "enforce"},
    )
    workspace = Workspace.from_dict(document)
    plan = workspace.plan
    candidates = plan.candidates(dataset.credit, dataset.billing)
    instance = InstancePair(plan.pair, dataset.credit, dataset.billing)
    target_pairs = plan.target.attribute_pairs()

    def matches(result):
        return [
            pair
            for pair in candidates
            if result.identified(*pair, target_pairs)
        ]

    serial_result, serial_seconds = timed(
        plan.enforce, instance, candidate_pairs=candidates
    )
    parallel_result, parallel_seconds = timed(
        plan.enforce,
        instance,
        candidate_pairs=candidates,
        workers=WORKERS,
        spec_document=workspace.spec.to_dict(),
    )

    shards = shard_pairs(candidates)
    loads = [
        sum(len(shard) for shard in bin_)
        for bin_ in assign_shards(shards, WORKERS)
    ]
    serial_matches = matches(serial_result)
    parallel_matches = matches(parallel_result)
    # The plan observed chase.rounds/chase.seconds into its registry
    # during both runs; report them alongside the benchmark's own
    # timings, all in the repro.obs schema.
    registry = workspace.metrics
    registry.count("parallel.shards", len(shards))
    registry.count("parallel.workers", WORKERS)
    registry.observe("parallel.serial_seconds", serial_seconds)
    registry.observe("parallel.parallel_seconds", parallel_seconds)
    return {
        "metrics": registry.as_dict(),
        "benchmark": "plan_parallel_chase",
        "K": size,
        "candidates": len(candidates),
        "shards": len(shards),
        "workers": WORKERS,
        "heaviest_bin_pairs": max(loads),
        "matches": len(serial_matches),
        "matches_identical": int(serial_matches == parallel_matches),
        "parallel_chases": plan.stats.parallel_chases,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "wallclock_speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "critical_path_speedup": len(candidates) / max(loads),
    }


def test_parallel_chase_speedup_at_4_workers(benchmark):
    """Sharding must split ≥ 1.5× worth of parallel work, identically."""
    record = benchmark.pedantic(
        run_parallel_point, args=(parallel_size(),),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _emit(record)
    assert record["candidates"] > 0
    assert record["matches"] > 0
    # Differential acceptance: same matches, actually through the pool.
    assert record["matches_identical"] == 1
    assert record["parallel_chases"] == 1
    assert record["shards"] > WORKERS
    # The partitioner's deterministic claim, on any machine.
    assert record["critical_path_speedup"] >= 1.5
    # The wall-clock claim: only on explicit full-scale runs, and only
    # where the hardware can express it.
    if FULL and (os.cpu_count() or 1) >= WORKERS:
        assert record["wallclock_speedup"] >= 1.5

"""Figs. 9(d) and 10(d) — blocking key quality (Exp-4).

Pairs completeness (9d) and reduction ratio (10d) of blocking with a
three-attribute key from the top two RCKs (name Soundex-encoded) versus a
manually chosen name+address key.

Reproduction target (shape): RCK-derived keys give better PC at
comparable RR.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp_blocking


@pytest.fixture(scope="module")
def series(bench_sizes):
    return exp_blocking.run(sizes=bench_sizes, seed=0, mode="blocking")


def test_fig9d_10d_blocking(benchmark, series, bench_sizes):
    size = max(bench_sizes)

    record = benchmark(exp_blocking.run_point, size, 0, None, "blocking")
    assert record["RCK candidates"] > 0

    print()
    print(exp_blocking.render(series))

    for row in series:
        assert row["RCK PC"] >= row["manual PC"] - 0.02, (
            f"RCK blocking PC must not lose at K={row['K']}"
        )
        # Fig. 10(d): reduction ratios comparable (both in the high 90s).
        assert abs(row["RCK RR"] - row["manual RR"]) < 0.02
        assert row["RCK RR"] > 0.95

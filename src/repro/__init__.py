"""repro — a reproduction of *Reasoning about Record Matching Rules*
(Wenfei Fan, Xibei Jia, Jianzhong Li, Shuai Ma — VLDB 2009).

The one front door is :mod:`repro.api`::

    from repro import Workspace

    workspace = Workspace.from_file("spec.json")   # a ResolutionSpec
    report = workspace.match(credit, billing)      # batch
    matcher = workspace.stream()                   # streaming, same plan

Underneath, the library implements the paper's full stack:

* :mod:`repro.api` — ``ResolutionSpec`` (versioned, serializable) and
  the ``Workspace`` façade over every execution strategy;
* :mod:`repro.core` — matching dependencies (MDs), relative candidate
  keys (RCKs), the ``MDClosure`` deduction algorithm, ``findRCKs`` with
  its quality model, and the dynamic semantics / enforcement chase;
* :mod:`repro.plan` — the enforcement kernel: MDs/RCKs compiled once into
  an ``EnforcementPlan`` shared by every execution layer;
* :mod:`repro.metrics` — similarity metrics and the Soundex encoder;
* :mod:`repro.relations` — the in-memory relational substrate;
* :mod:`repro.matching` — Fellegi–Sunter (with EM), Sorted Neighborhood,
  blocking, windowing, and evaluation metrics;
* :mod:`repro.engine` — the incremental streaming entity-resolution
  engine (what ``Workspace.stream()`` returns);
* :mod:`repro.datagen` — the paper's schemas and MDs, synthetic datasets
  with ground truth, and streaming arrival scenarios;
* :mod:`repro.experiments` — one module per figure of Section 6.

The attributes below are loaded lazily (PEP 562): ``import repro`` stays
cheap, and ``from repro import Workspace`` pulls in only what it needs.
"""

from importlib import import_module

__version__ = "1.1.0"

#: The curated public API: attribute name -> defining module.  Heavy
#: submodules are imported only when one of their names is touched.
_LAZY_ATTRIBUTES = {
    # The declarative front door (repro.api).
    "Workspace": "repro.api",
    "ResolutionSpec": "repro.api",
    "SpecBuilder": "repro.api",
    "SpecError": "repro.api",
    "MatchReport": "repro.api",
    "SPEC_VERSION": "repro.api",
    "VALUE_POLICIES": "repro.api",
    # The enforcement kernel (repro.plan).
    "EnforcementPlan": "repro.plan",
    "PlanStats": "repro.plan",
    "compile_plan": "repro.plan",
    # The streaming engine (repro.engine).
    "IncrementalMatcher": "repro.engine",
    "MatchStore": "repro.engine",
    "SQLiteMatchStore": "repro.engine",
    "load_store": "repro.engine",
    "save_store": "repro.engine",
    # Core reasoning (repro.core).
    "ComparableLists": "repro.core",
    "MatchingDependency": "repro.core",
    "RelationSchema": "repro.core",
    "RelativeKey": "repro.core",
    "SchemaPair": "repro.core",
    "deduces": "repro.core",
    "find_rcks": "repro.core",
    "format_md": "repro.core",
    "parse_md": "repro.core",
    "parse_mds": "repro.core",
    # The relational substrate (repro.relations).
    "Relation": "repro.relations.relation",
    "load_relation": "repro.relations.csvio",
    "save_relation": "repro.relations.csvio",
}

__all__ = ["__version__", *sorted(_LAZY_ATTRIBUTES)]


def __getattr__(name: str):
    """Resolve a curated attribute on first access (PEP 562)."""
    try:
        module_name = _LAZY_ATTRIBUTES[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}; "
            f"the public API is {__all__}"
        ) from None
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: later accesses skip this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_ATTRIBUTES))

"""repro — a reproduction of *Reasoning about Record Matching Rules*
(Wenfei Fan, Xibei Jia, Jianzhong Li, Shuai Ma — VLDB 2009).

The library implements the paper's full stack:

* :mod:`repro.core` — matching dependencies (MDs), relative candidate keys
  (RCKs), the ``MDClosure`` deduction algorithm, ``findRCKs`` with its
  quality model, and the dynamic semantics / enforcement chase;
* :mod:`repro.plan` — the enforcement kernel: MDs/RCKs compiled once into
  an ``EnforcementPlan`` (deduplicated predicates, compile-time metric
  resolution, similarity memo cache, pluggable blocking backends) that
  every execution layer shares;
* :mod:`repro.metrics` — similarity metrics (Damerau–Levenshtein, Jaro,
  q-grams, ...) and the Soundex encoder;
* :mod:`repro.relations` — the in-memory relational substrate;
* :mod:`repro.matching` — Fellegi–Sunter (with EM), Sorted Neighborhood,
  blocking, windowing, and evaluation metrics;
* :mod:`repro.engine` — the incremental streaming entity-resolution
  engine: per-RCK inverted indexes, identity clusters maintained on every
  ingest, batch bootstrap, and snapshot/restore;
* :mod:`repro.datagen` — the paper's schemas and MDs, synthetic
  credit/billing datasets with ground truth, random MD workloads, and
  streaming arrival scenarios;
* :mod:`repro.experiments` — one module per figure of Section 6.

Quickstart::

    from repro.datagen import credit_billing_pair, paper_mds, paper_target
    from repro.core import find_rcks

    pair = credit_billing_pair()
    for key in find_rcks(paper_mds(pair), paper_target(pair), m=6):
        print(key)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

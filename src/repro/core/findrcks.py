"""Algorithm ``findRCKs`` — deducing quality RCKs from MDs (Section 5).

Given a set Σ of MDs, a comparable target ``(Y1, Y2)`` and a bound ``m``,
the algorithm returns a set Γ of at most ``m`` relative candidate keys,
deduced from Σ and chosen greedily by the cost model of
:mod:`repro.core.quality`.  When fewer than ``m`` RCKs exist, Γ is the set
of *all* RCKs deducible from Σ — detected through the completeness
criterion of Proposition 5.1: Γ is complete iff for every γ ∈ Γ and φ ∈ Σ
some key already in Γ covers ``apply(γ, φ)``.

The structure follows Fig. 7 of the paper:

1. collect the attribute pairs appearing in Σ or the target (``pairing``)
   and zero their diversity counters;
2. seed Γ with ``minimize((Y1, Y2 ‖ =), Σ)`` — the identity key is always
   a relative key, so its minimization is the first RCK;
3. repeatedly apply every MD (cheapest LHS first — ``sortMD``) to every key
   in Γ; keep the results not covered by existing keys, minimized;
4. stop at ``m`` keys or at completeness.

``minimize`` drops triples greedily from the most expensive down, keeping a
triple only when deduction fails without it (checked with
:class:`~repro.core.closure.ClosureEngine`).  Because deducibility of keys
is monotone under adding LHS triples (Lemma 3.1, augmentation), the greedy
sweep yields a globally minimal key — a true RCK, not just a local optimum.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from .closure import ClosureEngine
from .md import MatchingDependency
from .quality import AttributePair, CostModel
from .rck import RelativeKey
from .schema import ComparableLists


def pairing(
    sigma: Sequence[MatchingDependency], target: ComparableLists
) -> Set[AttributePair]:
    """All attribute pairs occurring in the target or in some MD of Σ."""
    pairs: Set[AttributePair] = set(target.attribute_pairs())
    for dependency in sigma:
        pairs.update(dependency.lhs_attribute_pairs())
        pairs.update(dependency.rhs_attribute_pairs())
    return pairs


def minimize(
    key: RelativeKey, engine: ClosureEngine, cost_model: CostModel
) -> RelativeKey:
    """Procedure ``minimize``: strip removable triples, costly ones first.

    Precondition: ``Σ ⊨m key`` (always true for keys produced by
    ``apply``/seeding inside ``findRCKs``).  Post-condition: the result is
    an RCK — no triple can be removed while remaining deducible.
    """
    ordered = sorted(
        key.atoms,
        key=lambda atom: cost_model.cost(atom.attribute_pair),
        reverse=True,
    )
    current = key
    for atom in ordered:
        if current.length == 1:
            break  # a key must keep at least one comparison
        candidate = current.without(atom)
        if engine.deduces(candidate.to_md()):
            current = candidate
    return current


def sort_mds(
    sigma: Sequence[MatchingDependency], cost_model: CostModel
) -> List[MatchingDependency]:
    """Procedure ``sortMD``: Σ by ascending total LHS cost (stable)."""
    return sorted(
        sigma,
        key=lambda dependency: cost_model.lhs_cost(
            dependency.lhs_attribute_pairs()
        ),
    )


def find_rcks(
    sigma: Iterable[MatchingDependency],
    target: ComparableLists,
    m: int,
    cost_model: Optional[CostModel] = None,
    engine: Optional[ClosureEngine] = None,
) -> List[RelativeKey]:
    """Algorithm ``findRCKs``: up to ``m`` quality RCKs relative to target.

    Parameters
    ----------
    sigma:
        The MDs to reason from.
    target:
        The comparable lists ``(Y1, Y2)`` the keys are relative to.
    m:
        Maximum number of RCKs to return; must be positive.
    cost_model:
        Quality model; defaults to the paper's ``w1 = w2 = w3 = 1`` with
        unit accuracies and zero length statistics.
    engine:
        A pre-built :class:`ClosureEngine` for Σ, to amortize indexing when
        calling ``find_rcks`` repeatedly with the same Σ.

    Returns
    -------
    list of :class:`RelativeKey`
        Quality RCKs, in deduction order (most diverse/cheap first).  When
        fewer than ``m`` exist the list is complete (Proposition 5.1).

    >>> from repro.datagen.schemas import credit_billing_pair, paper_mds, paper_target
    >>> pair = credit_billing_pair()
    >>> rcks = find_rcks(paper_mds(pair), paper_target(pair), m=6)
    >>> len(rcks)
    5
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    sigma = list(sigma)
    if cost_model is None:
        cost_model = CostModel()
    if engine is None:
        engine = ClosureEngine(target.pair, sigma)

    pairs = pairing(sigma, target)
    cost_model.reset_counters(pairs)

    # Coverage index: each key in Γ is filed under one *witness* triple
    # (its lexicographically smallest).  A key can only cover a candidate
    # whose triple set contains the witness, so the ≼ test scans
    # |candidate| buckets instead of all of Γ — the difference between
    # seconds and hours on workloads with hundreds of RCKs.
    cover_index: dict = {}

    def witness(key: RelativeKey):
        return min(key.atoms)

    def covered(candidate: RelativeKey) -> bool:
        candidate_set = candidate.triple_set()
        for atom in candidate_set:
            for existing in cover_index.get(atom, ()):
                if existing.triple_set() <= candidate_set:
                    return True
        return False

    def admit(key: RelativeKey) -> None:
        cover_index.setdefault(witness(key), []).append(key)

    seed = minimize(RelativeKey.identity_key(target), engine, cost_model)
    gamma: List[RelativeKey] = [seed]
    admit(seed)
    cost_model.increment(seed.attribute_pairs())
    if m == 1:
        return gamma

    # Worklist over Γ; Γ grows while we iterate (Fig. 7, lines 5-15).
    index = 0
    while index < len(gamma):
        key = gamma[index]
        index += 1
        ordered = sort_mds(sigma, cost_model)
        position = 0
        while position < len(ordered):
            dependency = ordered[position]
            position += 1
            candidate = key.apply_md(dependency)
            if covered(candidate):
                continue
            new_key = minimize(candidate, engine, cost_model)
            gamma.append(new_key)
            admit(new_key)
            cost_model.increment(new_key.attribute_pairs())
            if len(gamma) >= m:
                return gamma
            # Costs changed; re-sort the MDs not yet applied to this key
            # (Fig. 7 line 14 re-sorts LΣ after each addition).
            remaining = ordered[position:]
            ordered = ordered[:position] + sort_mds(remaining, cost_model)
    return gamma


def is_complete(
    gamma: Sequence[RelativeKey],
    sigma: Sequence[MatchingDependency],
) -> bool:
    """Proposition 5.1's completeness test.

    A non-empty Γ consists of *all* RCKs deducible from Σ iff for every
    γ ∈ Γ and φ ∈ Σ some γ1 ∈ Γ covers ``apply(γ, φ)``.
    """
    if not gamma:
        return False
    for key in gamma:
        for dependency in sigma:
            candidate = key.apply_md(dependency)
            if not any(existing.covers(candidate) for existing in gamma):
                return False
    return True


def all_rcks(
    sigma: Iterable[MatchingDependency],
    target: ComparableLists,
    cost_model: Optional[CostModel] = None,
    limit: int = 10_000,
) -> List[RelativeKey]:
    """Enumerate the complete set of RCKs (small Σ only — Fig. 8(c)).

    ``limit`` guards against the theoretical exponential blow-up; hitting
    it raises ``RuntimeError`` rather than silently truncating.
    """
    keys = find_rcks(sigma, target, m=limit, cost_model=cost_model)
    if len(keys) >= limit:
        raise RuntimeError(
            f"more than {limit} RCKs; refusing to enumerate exhaustively"
        )
    return keys

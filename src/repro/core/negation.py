"""Negative matching rules — the first extension of Section 8.

"An extension of MDs is to support 'negation', to specify when records
*cannot* be matched."  A :class:`NegativeRule` has the same LHS shape as
an MD but concludes non-identity::

    ⋀_j R1[X1[j]] ≈_j R2[X2[j]]   →   R1[Z1] <!> R2[Z2]

e.g. "same full name but different SSNs → not the same person".

Two facilities are provided:

* **static conflict checking** — :func:`find_conflicts` reports every
  negative rule whose premise, chased through Σ with ``MDClosure``,
  *forces* the identification it forbids.  Such a Σ would both identify
  and un-identify the same cells on some instance: the rule set is
  inconsistent and should be repaired before deployment.
* **runtime vetoing** — :class:`GuardedRuleSet` wraps a positive
  :class:`~repro.matching.rules.RuleSet` so that a pair matched by a
  positive rule is rejected when any negative rule fires on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Row

from .closure import ClosureEngine
from .md import MatchingDependency, SimilarityAtom
from .schema import SchemaPair
from .similarity import EQUALITY, as_operator


@dataclass(frozen=True)
class PremiseAtom:
    """One premise conjunct of a negative rule, possibly negated.

    With ``negated=False`` this is the MD test ``R1[left] ≈ R2[right]``;
    with ``negated=True`` it is the *dissimilarity* test
    ``NOT (R1[left] ≈ R2[right])`` — the construct negative rules need to
    say "same address but *different* first names".  Positive MDs keep
    their purely positive LHS language (the paper's definition); negation
    lives only in this extension.
    """

    atom: SimilarityAtom
    negated: bool = False

    def holds(
        self,
        left_row: Row,
        right_row: Row,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        predicate = registry.resolve(self.atom.operator.name)
        result = bool(
            predicate(left_row[self.atom.left], right_row[self.atom.right])
        )
        return (not result) if self.negated else result

    def __str__(self) -> str:
        text = str(self.atom)
        return f"not({text})" if self.negated else text


def _coerce_premise(entry) -> PremiseAtom:
    if isinstance(entry, PremiseAtom):
        return entry
    if isinstance(entry, SimilarityAtom):
        return PremiseAtom(entry)
    if len(entry) == 4:
        left, right, operator, negated = entry
        return PremiseAtom(
            SimilarityAtom(left, right, as_operator(operator)), bool(negated)
        )
    left, right, operator = entry
    return PremiseAtom(SimilarityAtom(left, right, as_operator(operator)))


@dataclass(frozen=True)
class NegativeRule:
    """``LHS → Z1 <!> Z2``: premise implies the pair is NOT one entity.

    ``lhs`` accepts :class:`PremiseAtom`, :class:`SimilarityAtom`,
    ``(left, right, op)`` triples, or ``(left, right, op, negated)``
    quadruples; ``forbidden`` lists the (left, right) attribute pairs
    whose identification the rule forbids.  Matching uses the rule as a
    whole — if the premise holds, the tuple pair is vetoed.
    """

    pair: SchemaPair
    lhs: Tuple[PremiseAtom, ...]
    forbidden: Tuple[Tuple[str, str], ...]
    name: str = "negative-rule"

    @classmethod
    def build(
        cls,
        pair: SchemaPair,
        lhs: Iterable,
        forbidden: Iterable[Tuple[str, str]],
        name: str = "negative-rule",
    ) -> "NegativeRule":
        atoms = tuple(_coerce_premise(entry) for entry in lhs)
        rule = cls(pair, atoms, tuple(forbidden), name)
        rule._validate()
        return rule

    def _validate(self) -> None:
        if not self.lhs:
            raise ValueError("a negative rule needs a non-empty LHS")
        if not self.forbidden:
            raise ValueError("a negative rule must forbid at least one pair")
        self.pair.require_comparable(
            [premise.atom.left for premise in self.lhs],
            [premise.atom.right for premise in self.lhs],
        )
        self.pair.require_comparable(
            [left for left, _ in self.forbidden],
            [right for _, right in self.forbidden],
        )

    def positive_atoms(self) -> Tuple[SimilarityAtom, ...]:
        """The non-negated premise tests (what a closure may assume)."""
        return tuple(
            premise.atom for premise in self.lhs if not premise.negated
        )

    def fires(
        self,
        left_row: Row,
        right_row: Row,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        """Does the premise (including negated tests) hold for the pair?"""
        return all(
            premise.holds(left_row, right_row, registry)
            for premise in self.lhs
        )

    def __str__(self) -> str:
        left_name = self.pair.left.name
        right_name = self.pair.right.name

        def atom_text(premise: PremiseAtom) -> str:
            core = (
                f"{left_name}[{premise.atom.left}] {premise.atom.operator} "
                f"{right_name}[{premise.atom.right}]"
            )
            return f"not({core})" if premise.negated else core

        lhs_text = " & ".join(atom_text(premise) for premise in self.lhs)
        rhs_text = " & ".join(
            f"{left_name}[{left}] <!> {right_name}[{right}]"
            for left, right in self.forbidden
        )
        return f"{lhs_text} -> {rhs_text}"


@dataclass(frozen=True)
class Conflict:
    """A negative rule contradicted by Σ."""

    rule: NegativeRule
    forced_pairs: Tuple[Tuple[str, str], ...]

    def __str__(self) -> str:
        pairs = ", ".join(f"{l}~{r}" for l, r in self.forced_pairs)
        return f"{self.rule.name}: Sigma forces identification of {pairs}"


def find_conflicts(
    pair: SchemaPair,
    sigma: Sequence[MatchingDependency],
    negatives: Sequence[NegativeRule],
) -> List[Conflict]:
    """Static consistency check of Σ against negative rules.

    For each negative rule, compute the closure of Σ and the rule's
    *positive* premise atoms (negated tests assert the absence of a fact,
    which a closure cannot consume — they only make the premise rarer, so
    ignoring them is conservative: every reported conflict is real on any
    instance where the full premise holds); if any forbidden pair is
    identified in the closure, Σ demands exactly the identification the
    rule forbids — an irreconcilable conflict.

    >>> # see tests/core/test_negation.py for worked cases
    """
    engine = ClosureEngine(pair, sigma)
    conflicts: List[Conflict] = []
    for rule in negatives:
        if rule.pair != pair:
            raise ValueError(
                f"negative rule {rule.name!r} is over a different schema pair"
            )
        matrix, _ = engine.closure(rule.positive_atoms())
        forced = tuple(
            (left, right)
            for left, right in rule.forbidden
            if matrix.get(
                pair.left_attr(left), pair.right_attr(right), EQUALITY
            )
        )
        if forced:
            conflicts.append(Conflict(rule, forced))
    return conflicts


class GuardedRuleSet:
    """Positive rules guarded by negative vetoes.

    A pair matches iff some positive rule fires AND no negative rule
    fires.  Drop-in compatible with
    :class:`~repro.matching.rules.RuleSet` for the matchers (duck-typed
    ``matches``).
    """

    def __init__(self, positive, negatives: Sequence[NegativeRule]) -> None:
        self.positive = positive
        self.negatives = tuple(negatives)

    def __len__(self) -> int:
        return len(self.positive) + len(self.negatives)

    def matches(
        self,
        left_row: Row,
        right_row: Row,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        """Positive match not vetoed by any negative rule."""
        if not self.positive.matches(left_row, right_row, registry):
            return False
        return not any(
            rule.fires(left_row, right_row, registry)
            for rule in self.negatives
        )

    def veto_reason(
        self,
        left_row: Row,
        right_row: Row,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> str:
        """Name of the first negative rule that fires, or ''."""
        for rule in self.negatives:
            if rule.fires(left_row, right_row, registry):
                return rule.name
        return ""

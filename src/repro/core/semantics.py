"""The dynamic semantics of MDs (Section 2.1) and the enforcement chase.

An MD does not constrain a single instance: a *pair* ``(D, D')`` of
instances of ``(R1, R2)`` with ``D ⊑ D'`` satisfies φ when for every tuple
pair ``(t1, t2)`` matching LHS(φ) in ``D``,

(a) ``t1[Z1] = t2[Z2]`` in ``D'`` (the RHS attributes got identified), and
(b) ``(t1, t2)`` still match LHS(φ) in ``D'``.

An instance ``D`` is *stable* for Σ when ``(D, D) ⊨ Σ`` — a fixpoint of
enforcement.  Deduction (Σ ⊨m φ) quantifies over stable instances; the
:func:`enforce` chase below constructs one, which is how MDs are actually
*used* to match records: two tuples are declared a match when enforcement
identified their target attributes.

Enforcement merges *cells* — (side, tuple id, attribute) triples — with a
union-find, then assigns every merged class a single value chosen by a
:data:`ValueResolver` policy.  Merging is monotone, so the chase
terminates; stability of the result is re-checked (and returned), because
a resolver that changes a value may in principle break a similarity that
an earlier rule application relied on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Relation

from .md import MatchingDependency
from .schema import LEFT, RIGHT, SchemaPair

#: A cell of an instance pair: (side, tuple id, attribute name).
Cell = Tuple[int, int, str]

#: Policy choosing the value a merged cell class takes.  Receives the
#: multiset of current values (nulls included) and returns the resolved one.
ValueResolver = Callable[[Sequence[object]], object]


def prefer_informative(values: Sequence[object]) -> object:
    """Default resolver: longest non-null value, then most frequent.

    The matching operator only requires the cells to be *identified*
    (Example 2.2: "does not specify how they are updated"), so the
    resolver is a policy choice.  Preferring the longest value keeps the
    most informative variant ("10 Oak Street, MH, NJ 07974" over the
    truncated "NJ") even when damaged copies outnumber it; frequency then
    lexicographic order break ties deterministically.
    """
    non_null = [value for value in values if value is not None]
    if not non_null:
        return None
    counts: Dict[object, int] = {}
    for value in non_null:
        counts[value] = counts.get(value, 0) + 1
    return max(
        counts,
        key=lambda value: (len(str(value)), counts[value], str(value)),
    )


@dataclass(frozen=True)
class InstancePair:
    """An instance ``D = (I1, I2)`` of a schema pair.

    ``left`` and ``right`` may be the *same* Relation object when matching
    a relation against itself (deduplication); cells are still qualified by
    side, mirroring the qualified attributes of the reasoning layer.
    """

    pair: SchemaPair
    left: Relation
    right: Relation

    def __post_init__(self) -> None:
        if self.left.schema != self.pair.left:
            raise ValueError("left relation schema does not match the pair")
        if self.right.schema != self.pair.right:
            raise ValueError("right relation schema does not match the pair")

    def copy(self) -> "InstancePair":
        """An extension-ready copy (same tuple ids, fresh storage)."""
        if self.left is self.right:
            shared = self.left.copy()
            return InstancePair(self.pair, shared, shared)
        return InstancePair(self.pair, self.left.copy(), self.right.copy())

    def extends(self, original: "InstancePair") -> bool:
        """``original ⊑ self`` componentwise."""
        return self.left.extends(original.left) and self.right.extends(
            original.right
        )

    def tuple_pairs(self) -> Iterable[Tuple[int, int]]:
        """All ``(t1, t2) ∈ D`` as (left tid, right tid) pairs.

        When both sides are the same relation (self-matching), reflexive
        pairs are skipped and each unordered pair is reported once.
        """
        if self.left is self.right:
            tids = self.left.tids()
            for position, tid1 in enumerate(tids):
                for tid2 in tids[position + 1 :]:
                    yield tid1, tid2
        else:
            for tid1 in self.left.tids():
                for tid2 in self.right.tids():
                    yield tid1, tid2


def lhs_matches(
    dependency: MatchingDependency,
    instance: InstancePair,
    left_tid: int,
    right_tid: int,
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> bool:
    """Do ``(t1, t2)`` match LHS(φ) in the given instance?

    Every conjunct ``R1[X1[j]] ≈_j R2[X2[j]]`` must hold for the tuples'
    current values, with operators resolved through ``registry``.
    """
    t1 = instance.left[left_tid]
    t2 = instance.right[right_tid]
    for atom in dependency.lhs:
        predicate = registry.resolve(atom.operator.name)
        if not predicate(t1[atom.left], t2[atom.right]):
            return False
    return True


def satisfies(
    original: InstancePair,
    extended: InstancePair,
    dependency: MatchingDependency,
    registry: MetricRegistry = DEFAULT_REGISTRY,
    candidate_pairs: Optional[Iterable[Tuple[int, int]]] = None,
) -> bool:
    """``(D, D') ⊨ φ`` per the paper's Section 2.1 definition.

    ``candidate_pairs`` restricts the check to the given tuple pairs (all
    pairs when omitted — quadratic, intended for tests and small data).
    """
    if not extended.extends(original):
        return False
    pairs = candidate_pairs if candidate_pairs is not None else original.tuple_pairs()
    for left_tid, right_tid in pairs:
        if not lhs_matches(dependency, original, left_tid, right_tid, registry):
            continue
        # (a) RHS identified in D'.
        t1 = extended.left[left_tid]
        t2 = extended.right[right_tid]
        for atom in dependency.rhs:
            if t1[atom.left] != t2[atom.right]:
                return False
        # (b) LHS still matched in D'.
        if not lhs_matches(dependency, extended, left_tid, right_tid, registry):
            return False
    return True


def satisfies_all(
    original: InstancePair,
    extended: InstancePair,
    sigma: Iterable[MatchingDependency],
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> bool:
    """``(D, D') ⊨ Σ``: satisfaction of every MD in Σ."""
    return all(
        satisfies(original, extended, dependency, registry)
        for dependency in sigma
    )


def is_stable(
    instance: InstancePair,
    sigma: Iterable[MatchingDependency],
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> bool:
    """Is ``D`` stable for Σ, i.e. ``(D, D) ⊨ Σ``?"""
    return satisfies_all(instance, instance, sigma, registry)


class _CellUnionFind:
    """Union-find over instance cells, tracking class members."""

    def __init__(self) -> None:
        self._parent: Dict[Cell, Cell] = {}
        self._members: Dict[Cell, Set[Cell]] = {}

    def find(self, cell: Cell) -> Cell:
        parent = self._parent
        if cell not in parent:
            parent[cell] = cell
            self._members[cell] = {cell}
            return cell
        root = cell
        while parent[root] != root:
            root = parent[root]
        while parent[cell] != root:
            parent[cell], cell = root, parent[cell]
        return root

    def union(self, a: Cell, b: Cell) -> bool:
        """Merge the classes of ``a`` and ``b``; True when they differed."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if len(self._members[root_a]) < len(self._members[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._members[root_a] |= self._members.pop(root_b)
        return True

    def members(self, cell: Cell) -> Set[Cell]:
        """All cells in the class of ``cell``."""
        return set(self._members[self.find(cell)])

    def classes(self) -> List[Set[Cell]]:
        """Every merged class with more than one member.

        Singleton classes (cells only ever touched by :meth:`find`) carry
        no identification and are omitted; the parallel merge step unions
        per-shard results through this view.
        """
        return [
            set(members)
            for members in self._members.values()
            if len(members) > 1
        ]

    def same(self, a: Cell, b: Cell) -> bool:
        """Whether the two cells are currently in one class."""
        return self.find(a) == self.find(b)


@dataclass
class EnforcementResult:
    """Outcome of :func:`enforce`.

    Attributes
    ----------
    instance:
        The resulting extension ``D'``.
    stable:
        Whether ``(D', D') ⊨ Σ`` — true in all but adversarial resolver
        cases; callers that need a guarantee should assert it.
    rounds:
        Number of chase rounds executed.
    merged_cells:
        The cell union-find after the chase, exposing which cells were
        identified (the matcher reads match decisions from it).
    applications:
        Count of successful rule applications (new cell merges).
    rounds_exhausted:
        True when the chase stopped because ``max_rounds`` ran out while
        merges were still happening *and* the result is not stable — a
        partial extension, not a fixpoint (``rounds_exhausted`` implies
        ``not stable``; a chase that converged on its last permitted
        round is not exhausted).  Previously this case was silent;
        callers that bound the chase should check (or assert) this flag.
    """

    instance: InstancePair
    stable: bool
    rounds: int
    merged_cells: _CellUnionFind
    applications: int
    rounds_exhausted: bool = False

    def identified(
        self, left_tid: int, right_tid: int, attribute_pairs: Iterable[Tuple[str, str]]
    ) -> bool:
        """Were all the given attribute pairs of the two tuples identified?"""
        return all(
            self.merged_cells.same(
                (LEFT, left_tid, left_attr), (RIGHT, right_tid, right_attr)
            )
            for left_attr, right_attr in attribute_pairs
        )


def enforce(
    instance: InstancePair,
    sigma: Sequence[MatchingDependency],
    registry: MetricRegistry = DEFAULT_REGISTRY,
    resolver: ValueResolver = prefer_informative,
    candidate_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    max_rounds: int = 100,
) -> EnforcementResult:
    """Chase ``instance`` with Σ to a stable extension.

    This is the *reference entry point*: it compiles Σ into a throwaway
    :class:`~repro.plan.compile.EnforcementPlan` and delegates to the one
    chase kernel (:func:`repro.plan.executor.chase`).  Matchers that chase
    repeatedly hold a long-lived plan instead and call
    :meth:`~repro.plan.compile.EnforcementPlan.enforce` directly, sharing
    the compiled predicates and the similarity memo cache across runs.

    ``candidate_pairs`` bounds the quadratic pair scan; matchers pass the
    output of blocking/windowing here.
    """
    # Deliberate lazy import: repro.plan sits above repro.core in the
    # layering and imports this module for the chase's data structures.
    from repro.plan.compile import compile_plan

    plan = compile_plan(sigma=sigma, registry=registry)
    return plan.enforce(
        instance,
        resolver=resolver,
        candidate_pairs=candidate_pairs,
        max_rounds=max_rounds,
    )


def _cell_value(instance: InstancePair, cell: Cell, shared: bool) -> object:
    # When both sides share one Relation object, side only tags the cell;
    # reads and writes land in the same storage either way.
    side, tid, attribute = cell
    relation = instance.left if side == LEFT else instance.right
    return relation[tid][attribute]

"""The paper's primary contribution: MDs, RCKs, and their reasoning.

Public surface:

* schemas and comparable lists — :mod:`repro.core.schema`
* symbolic similarity operators — :mod:`repro.core.similarity`
* matching dependencies — :mod:`repro.core.md`, text syntax in
  :mod:`repro.core.parser`
* relative (candidate) keys — :mod:`repro.core.rck`
* deduction: ``Σ ⊨m φ`` — :mod:`repro.core.closure` (Section 4)
* RCK discovery — :mod:`repro.core.findrcks` (Section 5) with the quality
  model of :mod:`repro.core.quality`
* dynamic semantics and the enforcement chase — :mod:`repro.core.semantics`
"""

from .closure import ClosureEngine, ClosureStats, deduces, md_closure_paper_loop
from .explain import Explanation, Step, explain
from .negation import Conflict, GuardedRuleSet, NegativeRule, find_conflicts
from .findrcks import all_rcks, find_rcks, is_complete, minimize, pairing, sort_mds
from .matrix import AxiomaticClosure, SimilarityMatrix
from .md import (
    IdentificationAtom,
    MatchingDependency,
    SimilarityAtom,
    equality_md,
    md,
    total_size,
)
from .parser import MDSyntaxError, format_md, parse_md, parse_mds
from .quality import CostModel, length_statistics_from_rows
from .rck import RelativeKey, is_candidate
from .schema import (
    LEFT,
    RIGHT,
    Attribute,
    ComparableLists,
    QualifiedAttribute,
    RelationSchema,
    SchemaPair,
)
from .semantics import (
    EnforcementResult,
    InstancePair,
    enforce,
    is_stable,
    lhs_matches,
    prefer_informative,
    satisfies,
    satisfies_all,
)
from .similarity import EQUALITY, SimilarityOperator, as_operator, operator_universe

__all__ = [
    "EQUALITY",
    "LEFT",
    "RIGHT",
    "Attribute",
    "AxiomaticClosure",
    "ClosureEngine",
    "ClosureStats",
    "ComparableLists",
    "Conflict",
    "CostModel",
    "Explanation",
    "Step",
    "explain",
    "GuardedRuleSet",
    "NegativeRule",
    "find_conflicts",
    "EnforcementResult",
    "IdentificationAtom",
    "InstancePair",
    "MDSyntaxError",
    "MatchingDependency",
    "QualifiedAttribute",
    "RelationSchema",
    "RelativeKey",
    "SchemaPair",
    "SimilarityAtom",
    "SimilarityMatrix",
    "SimilarityOperator",
    "all_rcks",
    "as_operator",
    "deduces",
    "enforce",
    "equality_md",
    "find_rcks",
    "format_md",
    "is_candidate",
    "is_complete",
    "is_stable",
    "length_statistics_from_rows",
    "lhs_matches",
    "md",
    "md_closure_paper_loop",
    "minimize",
    "operator_universe",
    "pairing",
    "parse_md",
    "parse_mds",
    "prefer_informative",
    "satisfies",
    "satisfies_all",
    "sort_mds",
    "total_size",
]

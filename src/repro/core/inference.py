"""Executable forms of the inference lemmas of Section 3.2.

The paper's sound-and-complete inference system I has 11 axioms; the text
presents four lemmas that the deduction algorithm leans on.  This module
exposes them as MD-rewriting helpers so that tests (and curious users) can
check each one against :func:`repro.core.closure.deduces` — every MD built
by these constructors must be deducible from its premises.

* :func:`augment_lhs` — Lemma 3.1(1): LHS(φ) may gain any similarity test.
* :func:`augment_both` — Lemma 3.1(2): an *equality* test added to LHS(φ)
  may also extend RHS(φ) with the tested pair.
* :func:`weaken_similarity_to_equality` — Lemma 3.2(2): a similarity
  conjunct may be strengthened to equality (the premise gets harder, so
  the MD stays deducible).
* :func:`transitivity` — Lemma 3.3: from ``X → W`` and ``W → Z`` deduce
  ``X → Z`` (with W compared by any operators on the second MD's LHS; the
  classic case uses the identified W pairs directly).
"""

from __future__ import annotations

from typing import Tuple

from .md import MatchingDependency, SimilarityAtom
from .similarity import EQUALITY


def augment_lhs(
    dependency: MatchingDependency, left: str, right: str, operator
) -> MatchingDependency:
    """Lemma 3.1(1): ``LHS(φ) ∧ R1[A] ≈ R2[B] → RHS(φ)``."""
    return dependency.with_extra_lhs(left, right, operator)


def augment_both(
    dependency: MatchingDependency, left: str, right: str
) -> MatchingDependency:
    """Lemma 3.1(2): add ``R1[A] = R2[B]`` to LHS and ``A ⇌ B`` to RHS.

    Only the equality operator supports extending the RHS: an equality in
    the premise *is already* an identification of the pair on stable
    instances.
    """
    augmented = dependency.with_extra_lhs(left, right, EQUALITY)
    if (left, right) in dependency.rhs_attribute_pairs():
        return augmented
    return MatchingDependency(
        augmented.pair, augmented.lhs, augmented.rhs + ((left, right),)
    )


def weaken_similarity_to_equality(
    dependency: MatchingDependency, position: int
) -> MatchingDependency:
    """Lemma 3.2(2): replace the operator of one LHS conjunct with ``=``.

    Equality subsumes every similarity operator, so the new MD has a
    strictly stronger premise and is deducible from the original.
    """
    atoms = list(dependency.lhs)
    if not 0 <= position < len(atoms):
        raise IndexError(
            f"LHS position {position} out of range for {dependency}"
        )
    atoms[position] = atoms[position].with_operator(EQUALITY)
    return MatchingDependency(dependency.pair, atoms, dependency.rhs)


def transitivity(
    first: MatchingDependency, second: MatchingDependency
) -> Tuple[MatchingDependency, ...]:
    """Lemma 3.3: compose ``φ1: X → W`` with ``φ2: W' → Z`` when W ⊇ W'.

    Requires every LHS attribute pair of ``second`` to appear among the
    RHS (identified) pairs of ``first`` — on stable instances those pairs
    are *equal*, hence satisfy any similarity test of ``second``'s LHS.
    Returns the composed MD ``X → Z``.
    """
    if first.pair != second.pair:
        raise ValueError("the two MDs are over different schema pairs")
    identified = set(first.rhs_attribute_pairs())
    missing = [
        atom
        for atom in second.lhs
        if atom.attribute_pair not in identified
    ]
    if missing:
        raise ValueError(
            "cannot compose: second MD's LHS pairs "
            f"{[str(atom) for atom in missing]} are not identified by the first MD"
        )
    return (MatchingDependency(first.pair, first.lhs, second.rhs),)


def reflexive_key_md(dependency: MatchingDependency) -> MatchingDependency:
    """The always-deducible MD ``⋀ (Z1[j] = Z2[j]) → Z1 ⇌ Z2``.

    For any comparable (Z1, Z2): pairwise-equal values are already
    identified.  Useful as a sanity baseline in tests.
    """
    pairs = dependency.rhs_attribute_pairs()
    lhs = [
        SimilarityAtom(left, right, EQUALITY) for left, right in pairs
    ]
    return MatchingDependency(dependency.pair, lhs, pairs)

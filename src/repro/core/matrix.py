"""The similarity matrix ``M`` of Section 4, plus a reference closure model.

Algorithm ``MDClosure`` stores the closure of Σ and LHS(φ) in an
``h × h × p`` array ``M`` indexed by two qualified attributes and a
similarity operator: ``M(R[A], R'[B], ≈) = 1`` iff
``Σ ⊨m LHS(φ) → R[A] ≈ R'[B]``.  Entries are symmetric in the two
attributes, and both intra-relation (``R = R'``) and cross-relation entries
occur — Lemma 3.4 shows intra-relation facts arise from the interaction of
the matching operator with equality and similarity.

:class:`SimilarityMatrix` implements the array with sparse adjacency sets so
neighbour scans (the heart of ``Propagate``/``Infer``) are proportional to
the number of set entries rather than ``h``.

:class:`AxiomaticClosure` is an *independent* model of the same facts,
implemented directly from the generic axioms of Section 2.1:

* ``=`` edges form equivalence classes (a union-find);
* a ``≈`` edge relates two classes (because ``x ≈ y ∧ y = z ⟹ x ≈ z``);
* ``M(a, b, ≈) = 1`` iff ``class(a) = class(b)`` or the classes are
  ``≈``-linked.

Property-based tests assert that the queue-driven matrix closure and this
union-find model always agree; see ``tests/core/test_closure_reference.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Set, Tuple

from .schema import QualifiedAttribute
from .similarity import EQUALITY, SimilarityOperator


class SimilarityMatrix:
    """Sparse, symmetric storage for the closure array ``M``.

    Entries are triples ``(a, b, op)`` with ``a``, ``b`` qualified
    attributes and ``op`` a similarity operator.  Reflexive facts
    (``a op a``) are implicitly true and never stored.
    """

    def __init__(self) -> None:
        # op -> attribute -> set of neighbours under that operator.
        self._links: Dict[
            SimilarityOperator, Dict[QualifiedAttribute, Set[QualifiedAttribute]]
        ] = {}
        self._entry_count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set(
        self,
        a: QualifiedAttribute,
        b: QualifiedAttribute,
        op: SimilarityOperator,
    ) -> bool:
        """Set ``M(a, b, op) = M(b, a, op) = 1``.

        Returns ``True`` when the entry was newly set, ``False`` when it was
        already present or trivially reflexive.  This is the storage half of
        the paper's ``AssignVal``; the equality-subsumption check (skip
        setting ``≈`` when ``=`` already holds) is done by the caller so the
        matrix itself stays a dumb array.
        """
        if a == b:
            return False
        by_attr = self._links.setdefault(op, {})
        neighbours = by_attr.setdefault(a, set())
        if b in neighbours:
            return False
        neighbours.add(b)
        by_attr.setdefault(b, set()).add(a)
        self._entry_count += 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(
        self,
        a: QualifiedAttribute,
        b: QualifiedAttribute,
        op: SimilarityOperator,
    ) -> bool:
        """Raw array lookup: is the entry ``(a, b, op)`` set?

        Reflexive pairs are always true.  No equality subsumption — use
        :meth:`holds` for the axiom-aware query.
        """
        if a == b:
            return True
        by_attr = self._links.get(op)
        if by_attr is None:
            return False
        neighbours = by_attr.get(a)
        return neighbours is not None and b in neighbours

    def holds(
        self,
        a: QualifiedAttribute,
        b: QualifiedAttribute,
        op: SimilarityOperator,
    ) -> bool:
        """Axiom-aware query: ``(a, b, op)`` set, or subsumed by equality."""
        if self.get(a, b, op):
            return True
        if not op.is_equality:
            return self.get(a, b, EQUALITY)
        return False

    def neighbours(
        self, a: QualifiedAttribute, op: SimilarityOperator
    ) -> FrozenSet[QualifiedAttribute]:
        """All ``b`` with the entry ``(a, b, op)`` set (excluding ``a``)."""
        by_attr = self._links.get(op)
        if by_attr is None:
            return frozenset()
        return frozenset(by_attr.get(a, ()))

    def operators_between(
        self, a: QualifiedAttribute, b: QualifiedAttribute
    ) -> FrozenSet[SimilarityOperator]:
        """All operators with a set entry between ``a`` and ``b``."""
        found = set()
        for op, by_attr in self._links.items():
            neighbours = by_attr.get(a)
            if neighbours is not None and b in neighbours:
                found.add(op)
        return frozenset(found)

    def similarity_edges_at(
        self, a: QualifiedAttribute
    ) -> Iterator[Tuple[SimilarityOperator, QualifiedAttribute]]:
        """Iterate ``(op, b)`` over all non-equality entries touching ``a``."""
        for op, by_attr in self._links.items():
            if op.is_equality:
                continue
            for b in by_attr.get(a, ()):
                yield op, b

    def entries(
        self,
    ) -> Iterator[Tuple[QualifiedAttribute, QualifiedAttribute, SimilarityOperator]]:
        """Iterate every set entry once (each symmetric pair reported once)."""
        for op, by_attr in self._links.items():
            seen = set()
            for a, neighbours in by_attr.items():
                for b in neighbours:
                    key = frozenset((a, b))
                    if key in seen:
                        continue
                    seen.add(key)
                    yield a, b, op

    @property
    def entry_count(self) -> int:
        """Number of distinct symmetric entries set so far."""
        return self._entry_count

    def __len__(self) -> int:
        return self._entry_count


class AxiomaticClosure:
    """Union-find model of the generic similarity axioms.

    Used as an oracle to validate :class:`SimilarityMatrix`-based closures:
    both must derive exactly the same facts from the same base edges.
    """

    def __init__(self) -> None:
        self._parent: Dict[QualifiedAttribute, QualifiedAttribute] = {}
        self._rank: Dict[QualifiedAttribute, int] = {}
        # op -> set of frozensets {root_a, root_b} linking two classes.
        self._sim: Dict[SimilarityOperator, Set[FrozenSet[QualifiedAttribute]]] = {}

    # -- union-find ----------------------------------------------------

    def _find(self, a: QualifiedAttribute) -> QualifiedAttribute:
        parent = self._parent
        if a not in parent:
            parent[a] = a
            self._rank[a] = 0
            return a
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:  # path compression
            parent[a], a = root, parent[a]
        return root

    def _union(self, a: QualifiedAttribute, b: QualifiedAttribute) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        # Re-root similarity links that mentioned the absorbed root.
        for links in self._sim.values():
            stale = [link for link in links if root_b in link]
            for link in stale:
                links.discard(link)
                others = [attr for attr in link if attr != root_b]
                other = others[0] if others else root_a
                new_other = self._find(other)
                if new_other != root_a:
                    links.add(frozenset((root_a, new_other)))

    # -- public API ------------------------------------------------------

    def add(
        self,
        a: QualifiedAttribute,
        b: QualifiedAttribute,
        op: SimilarityOperator,
    ) -> None:
        """Assert the base fact ``a op b``."""
        if op.is_equality:
            self._union(a, b)
        else:
            root_a, root_b = self._find(a), self._find(b)
            if root_a != root_b:
                self._sim.setdefault(op, set()).add(frozenset((root_a, root_b)))

    def holds(
        self,
        a: QualifiedAttribute,
        b: QualifiedAttribute,
        op: SimilarityOperator,
    ) -> bool:
        """Is ``a op b`` derivable from the asserted facts and the axioms?"""
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return True  # reflexivity / equality, which every op subsumes
        if op.is_equality:
            return False
        links = self._sim.get(op)
        return links is not None and frozenset((root_a, root_b)) in links

    def equivalence_classes(self) -> Iterable[FrozenSet[QualifiedAttribute]]:
        """The equality classes over every attribute seen so far."""
        classes: Dict[QualifiedAttribute, Set[QualifiedAttribute]] = {}
        for attr in list(self._parent):
            classes.setdefault(self._find(attr), set()).add(attr)
        return [frozenset(members) for members in classes.values()]

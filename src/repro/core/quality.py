"""The quality/cost model used to select RCKs (Section 5).

``findRCKs`` cannot enumerate all RCKs (there may be exponentially many, as
for traditional candidate keys [24]), so it greedily builds *quality* RCKs
guided by a per-attribute-pair cost::

    cost(R1[A], R2[B]) = w1 · ct(R1[A], R2[B])     (diversity counter)
                       + w2 · lt(R1[A], R2[B])     (average value length)
                       + w3 / ac(R1[A], R2[B])     (user-assessed accuracy)

* ``ct`` counts how often the pair already occurs in selected RCKs; rising
  cost steers later keys towards *different* attributes, so that errors in
  some attributes can be compensated by keys over others.
* ``lt`` is the average length of the attribute values — longer values are
  more error-prone.
* ``ac`` is the confidence the user places in the pair — more reliable
  pairs are cheaper.

The paper's experiments use ``w1 = w2 = w3 = 1`` and ``ac ≡ 1``
(Section 6.1); those are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

#: An attribute pair ``(R1[A], R2[B])`` by plain names.
AttributePair = Tuple[str, str]


@dataclass
class CostModel:
    """Mutable cost bookkeeping for ``findRCKs``.

    Parameters
    ----------
    w1, w2, w3:
        Weights of the diversity, length and accuracy terms.
    lengths:
        ``lt`` statistics per pair; missing pairs default to 0 (no length
        penalty).
    accuracies:
        ``ac`` statistics per pair in ``(0, 1]``; missing pairs default
        to 1 (fully trusted).

    >>> model = CostModel()
    >>> model.cost(("email", "email"))
    1.0
    >>> model.increment([("email", "email")])
    >>> model.cost(("email", "email"))
    2.0
    """

    w1: float = 1.0
    w2: float = 1.0
    w3: float = 1.0
    lengths: Dict[AttributePair, float] = field(default_factory=dict)
    accuracies: Dict[AttributePair, float] = field(default_factory=dict)
    _counters: Dict[AttributePair, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pair, accuracy in self.accuracies.items():
            if not 0.0 < accuracy <= 1.0:
                raise ValueError(
                    f"accuracy for {pair} must be in (0, 1], got {accuracy}"
                )

    # ------------------------------------------------------------------
    # Counters (the diversity term)
    # ------------------------------------------------------------------

    def reset_counters(self, pairs: Iterable[AttributePair]) -> None:
        """Zero the ``ct`` counters for the given pairs (findRCKs line 2)."""
        self._counters = {pair: 0 for pair in pairs}

    def increment(self, pairs: Iterable[AttributePair]) -> None:
        """``incrementCt``: bump the counter of each pair by one."""
        for pair in pairs:
            self._counters[pair] = self._counters.get(pair, 0) + 1

    def counter(self, pair: AttributePair) -> int:
        """Current ``ct`` value of a pair."""
        return self._counters.get(pair, 0)

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------

    def cost(self, pair: AttributePair) -> float:
        """The cost of including ``pair`` in an RCK."""
        ct = self._counters.get(pair, 0)
        lt = self.lengths.get(pair, 0.0)
        ac = self.accuracies.get(pair, 1.0)
        return self.w1 * ct + self.w2 * lt + self.w3 / ac

    def lhs_cost(self, pairs: Iterable[AttributePair]) -> float:
        """Total cost of a list of pairs (used by ``sortMD``)."""
        return sum(self.cost(pair) for pair in pairs)


def length_statistics_from_rows(
    pairs: Iterable[AttributePair],
    left_rows: Iterable[dict],
    right_rows: Iterable[dict],
) -> Dict[AttributePair, float]:
    """Estimate the ``lt`` statistic from instance data.

    For each attribute pair, the mean string length of the non-null values
    of both attributes across the given rows.  Useful when real data is
    available at compile time; the paper's experiments set ``w2 = 1`` with
    synthetic statistics, so this helper is optional.
    """
    pairs = list(pairs)
    totals: Dict[AttributePair, float] = {pair: 0.0 for pair in pairs}
    counts: Dict[AttributePair, int] = {pair: 0 for pair in pairs}
    left_rows = list(left_rows)
    right_rows = list(right_rows)
    for pair in pairs:
        left_attr, right_attr = pair
        for row in left_rows:
            value = row.get(left_attr)
            if value is not None:
                totals[pair] += len(str(value))
                counts[pair] += 1
        for row in right_rows:
            value = row.get(right_attr)
            if value is not None:
                totals[pair] += len(str(value))
                counts[pair] += 1
    return {
        pair: (totals[pair] / counts[pair] if counts[pair] else 0.0)
        for pair in pairs
    }

"""Symbolic similarity operators for MD reasoning.

The deduction machinery of the paper (Sections 3–5) is *generic*: it never
evaluates a similarity metric, it only manipulates operator identities under
the generic axioms of Section 2.1:

* every operator is reflexive and symmetric;
* every operator subsumes equality (``x = y`` implies ``x ≈ y``);
* equality is additionally transitive, and for any operator ``≈``,
  ``x ≈ y ∧ y = z`` implies ``x ≈ z``;
* no other operator is assumed transitive.

This module defines the *symbolic* operator type used inside MDs and the
closure algorithms.  The executable counterpart (actual string comparison)
lives in :mod:`repro.metrics` and is resolved by name at match time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

#: Canonical name of the equality operator.
EQUALITY_NAME = "="


@dataclass(frozen=True, order=True)
class SimilarityOperator:
    """A member of the operator set Θ, identified by name.

    Names follow the :mod:`repro.metrics.registry` convention:
    ``"="`` for equality, ``"metric(theta)"`` for thresholded metrics.
    Two operators with different thresholds are *different* members of Θ —
    the closure treats them as unrelated relations.

    >>> EQUALITY.is_equality
    True
    >>> SimilarityOperator("dl(0.8)").is_equality
    False
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")

    @property
    def is_equality(self) -> bool:
        """Whether this operator is the equality relation ``=``."""
        return self.name == EQUALITY_NAME

    def __str__(self) -> str:
        return self.name


#: The equality operator, always a member of Θ.
EQUALITY = SimilarityOperator(EQUALITY_NAME)


def as_operator(value) -> SimilarityOperator:
    """Coerce a string or operator into a :class:`SimilarityOperator`."""
    if isinstance(value, SimilarityOperator):
        return value
    if isinstance(value, str):
        return SimilarityOperator(value)
    raise TypeError(
        f"expected SimilarityOperator or str, got {type(value).__name__}"
    )


def operator_universe(operators: Iterable[SimilarityOperator]) -> FrozenSet[SimilarityOperator]:
    """The set Θ induced by a collection of operators, always including =.

    The closure array of Section 4 is indexed by this set (its size is the
    paper's ``p``).

    >>> sorted(op.name for op in operator_universe([SimilarityOperator("dl(0.8)")]))
    ['=', 'dl(0.8)']
    """
    universe = {EQUALITY}
    universe.update(operators)
    return frozenset(universe)

"""Relation schemas, attributes, and comparable attribute lists.

Matching dependencies are defined over a *pair* of relation schemas
``(R1, R2)`` (which may be the same schema twice — Example 2.3 of the paper
uses ``(R, R)``).  Because of that, the reasoning machinery never refers to
an attribute by schema name alone: every attribute occurrence is *qualified*
by the side of the pair it belongs to (:class:`QualifiedAttribute` with
``side`` in ``{LEFT, RIGHT}``).

A pair of attribute lists ``(X1, X2)`` is *comparable* over ``(R1, R2)``
(Section 2.1) when the lists have the same length and their elements are
pairwise comparable: ``X1[j] ∈ R1``, ``X2[j] ∈ R2`` and
``dom(X1[j]) = dom(X2[j])``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

#: Side tags for the two positions in a schema pair.
LEFT = 0
RIGHT = 1

#: Default attribute domain when none is declared.  Data standardization
#: (Section 2.1) is assumed to have unified representations, so a single
#: string domain is the common case.
STRING = "string"


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation schema."""

    name: str
    domain: str = STRING

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")

    def __str__(self) -> str:
        return self.name


class RelationSchema:
    """A relation schema: an ordered set of named attributes.

    Parameters
    ----------
    name:
        The relation name, e.g. ``"credit"``.
    attributes:
        Either :class:`Attribute` objects or plain strings (which get the
        default string domain).

    >>> credit = RelationSchema("credit", ["c#", "FN", "LN"])
    >>> credit.arity
    3
    >>> credit["FN"].domain
    'string'
    >>> "LN" in credit
    True
    """

    def __init__(self, name: str, attributes: Iterable) -> None:
        if not name:
            raise ValueError("relation name must be non-empty")
        self.name = name
        self._attributes: Tuple[Attribute, ...] = tuple(
            attr if isinstance(attr, Attribute) else Attribute(attr)
            for attr in attributes
        )
        self._by_name: Dict[str, Attribute] = {}
        for attr in self._attributes:
            if attr.name in self._by_name:
                raise ValueError(
                    f"duplicate attribute {attr.name!r} in schema {name!r}"
                )
            self._by_name[attr.name] = attr
        if not self._attributes:
            raise ValueError(f"schema {name!r} must have at least one attribute")

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The attribute names, in declaration order."""
        return tuple(attr.name for attr in self._attributes)

    @property
    def arity(self) -> int:
        """The number of attributes."""
        return len(self._attributes)

    def __getitem__(self, attribute_name: str) -> Attribute:
        try:
            return self._by_name[attribute_name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no attribute {attribute_name!r}; "
                f"attributes are {list(self._by_name)}"
            ) from None

    def __contains__(self, attribute_name: object) -> bool:
        return attribute_name in self._by_name

    def __iter__(self):
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {list(self.attribute_names)!r})"


@dataclass(frozen=True)
class QualifiedAttribute:
    """An attribute occurrence qualified by its side in a schema pair.

    Two occurrences of attribute ``A`` are distinct when they live on
    different sides, even if ``R1`` and ``R2`` are the same schema — exactly
    what the paper needs for MDs of the form ``R[A] = R[A] → ...``.
    """

    side: int
    relation: str
    attribute: str

    def __post_init__(self) -> None:
        if self.side not in (LEFT, RIGHT):
            raise ValueError(f"side must be LEFT (0) or RIGHT (1), got {self.side}")

    def __str__(self) -> str:
        return f"{self.relation}[{self.attribute}]"

    @property
    def display(self) -> str:
        """Unambiguous rendering including the side tag."""
        tag = "L" if self.side == LEFT else "R"
        return f"{tag}:{self.relation}[{self.attribute}]"


@dataclass(frozen=True)
class SchemaPair:
    """An ordered pair of relation schemas ``(R1, R2)``.

    All MD reasoning happens relative to one schema pair; the pair also
    provides qualified-attribute constructors and comparability checks.

    >>> pair = SchemaPair(RelationSchema("R", ["A", "B"]),
    ...                   RelationSchema("S", ["C", "D"]))
    >>> pair.left_attr("A")
    QualifiedAttribute(side=0, relation='R', attribute='A')
    >>> pair.comparable(["A", "B"], ["C", "D"])
    True
    """

    left: RelationSchema
    right: RelationSchema

    def left_attr(self, attribute_name: str) -> QualifiedAttribute:
        """Qualify ``attribute_name`` on the left schema, validating it."""
        self.left[attribute_name]
        return QualifiedAttribute(LEFT, self.left.name, attribute_name)

    def right_attr(self, attribute_name: str) -> QualifiedAttribute:
        """Qualify ``attribute_name`` on the right schema, validating it."""
        self.right[attribute_name]
        return QualifiedAttribute(RIGHT, self.right.name, attribute_name)

    def attr(self, side: int, attribute_name: str) -> QualifiedAttribute:
        """Qualify ``attribute_name`` on the given side."""
        if side == LEFT:
            return self.left_attr(attribute_name)
        if side == RIGHT:
            return self.right_attr(attribute_name)
        raise ValueError(f"side must be LEFT (0) or RIGHT (1), got {side}")

    def schema(self, side: int) -> RelationSchema:
        """Return the schema on the given side."""
        if side == LEFT:
            return self.left
        if side == RIGHT:
            return self.right
        raise ValueError(f"side must be LEFT (0) or RIGHT (1), got {side}")

    @property
    def total_arity(self) -> int:
        """Total number of qualified attributes, the paper's ``h``."""
        return self.left.arity + self.right.arity

    def all_qualified_attributes(self) -> Tuple[QualifiedAttribute, ...]:
        """All qualified attributes of both sides, left side first."""
        left = tuple(
            QualifiedAttribute(LEFT, self.left.name, attr.name)
            for attr in self.left
        )
        right = tuple(
            QualifiedAttribute(RIGHT, self.right.name, attr.name)
            for attr in self.right
        )
        return left + right

    def comparable(
        self, left_list: Sequence[str], right_list: Sequence[str]
    ) -> bool:
        """Check that ``(left_list, right_list)`` is a comparable pair.

        Same length, every element present in its schema, and pairwise
        equal domains (Section 2.1).
        """
        if len(left_list) != len(right_list):
            return False
        for left_name, right_name in zip(left_list, right_list):
            if left_name not in self.left or right_name not in self.right:
                return False
            if self.left[left_name].domain != self.right[right_name].domain:
                return False
        return True

    def require_comparable(
        self, left_list: Sequence[str], right_list: Sequence[str]
    ) -> None:
        """Raise ``ValueError`` with a precise message when not comparable."""
        if len(left_list) != len(right_list):
            raise ValueError(
                f"attribute lists have different lengths: "
                f"{len(left_list)} vs {len(right_list)}"
            )
        for position, (left_name, right_name) in enumerate(
            zip(left_list, right_list)
        ):
            if left_name not in self.left:
                raise ValueError(
                    f"position {position}: {left_name!r} is not an attribute "
                    f"of {self.left.name!r}"
                )
            if right_name not in self.right:
                raise ValueError(
                    f"position {position}: {right_name!r} is not an attribute "
                    f"of {self.right.name!r}"
                )
            left_dom = self.left[left_name].domain
            right_dom = self.right[right_name].domain
            if left_dom != right_dom:
                raise ValueError(
                    f"position {position}: domains differ for "
                    f"{self.left.name}[{left_name}] ({left_dom}) and "
                    f"{self.right.name}[{right_name}] ({right_dom})"
                )


@dataclass(frozen=True)
class ComparableLists:
    """A validated comparable pair of attribute lists over a schema pair.

    This is the paper's ``(Y1, Y2)`` — e.g. the card-holder attributes of
    Example 1.1.  Element access mirrors the paper's ``(X1[j], X2[j])``
    notation.
    """

    pair: SchemaPair
    left_list: Tuple[str, ...]
    right_list: Tuple[str, ...]
    _positions: Tuple[Tuple[str, str], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "left_list", tuple(self.left_list))
        object.__setattr__(self, "right_list", tuple(self.right_list))
        self.pair.require_comparable(self.left_list, self.right_list)
        object.__setattr__(
            self, "_positions", tuple(zip(self.left_list, self.right_list))
        )

    def __len__(self) -> int:
        return len(self.left_list)

    def __getitem__(self, position: int) -> Tuple[str, str]:
        return self._positions[position]

    def __iter__(self):
        return iter(self._positions)

    def qualified(self) -> Tuple[Tuple[QualifiedAttribute, QualifiedAttribute], ...]:
        """The positions as pairs of qualified attributes."""
        return tuple(
            (self.pair.left_attr(left_name), self.pair.right_attr(right_name))
            for left_name, right_name in self._positions
        )

    def attribute_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The positions as plain name pairs."""
        return self._positions

    def __str__(self) -> str:
        left = ", ".join(self.left_list)
        right = ", ".join(self.right_list)
        return f"([{left}], [{right}])"

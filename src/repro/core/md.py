"""Matching dependencies (MDs) — the paper's core formalism (Section 2.1).

An MD over a schema pair ``(R1, R2)`` has the form::

    ⋀_{j∈[1,k]} R1[X1[j]] ≈_j R2[X2[j]]   →   R1[Z1] ⇌ R2[Z2]

where ``(X1, X2)`` and ``(Z1, Z2)`` are comparable attribute lists and each
``≈_j`` is a similarity operator in Θ.  The left-hand side (LHS) is a
conjunction of per-position similarity tests; the right-hand side (RHS)
asserts that the ``Z`` attributes must be *identified* (the matching
operator ``⇌``, written ``<=>`` in our concrete syntax).

The *dynamic semantics* — what it means for a pair of instances to satisfy
an MD — lives in :mod:`repro.core.semantics`; this module is the purely
syntactic layer used by the reasoning algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .schema import SchemaPair
from .similarity import EQUALITY, SimilarityOperator, as_operator


@dataclass(frozen=True, order=True)
class SimilarityAtom:
    """One conjunct ``R1[left] ≈ R2[right]`` of an MD's LHS.

    ``left`` is always an attribute of the left schema of the pair and
    ``right`` of the right schema; the operator is symbolic.
    """

    left: str
    right: str
    operator: SimilarityOperator

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"

    def with_operator(self, operator: SimilarityOperator) -> "SimilarityAtom":
        """Return a copy of this atom with a different operator."""
        return SimilarityAtom(self.left, self.right, operator)

    @property
    def attribute_pair(self) -> Tuple[str, str]:
        """The ``(left, right)`` attribute names without the operator."""
        return (self.left, self.right)


@dataclass(frozen=True, order=True)
class IdentificationAtom:
    """One RHS pair ``R1[left] ⇌ R2[right]`` to be identified."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left} <=> {self.right}"

    @property
    def attribute_pair(self) -> Tuple[str, str]:
        """The ``(left, right)`` attribute names."""
        return (self.left, self.right)


class MatchingDependency:
    """A matching dependency bound to a schema pair.

    Parameters
    ----------
    pair:
        The schema pair ``(R1, R2)`` the MD is defined over.
    lhs:
        Iterable of LHS conjuncts; each element is a
        :class:`SimilarityAtom` or a ``(left, right, operator)`` triple
        where the operator may be a string name (e.g. ``"="``,
        ``"dl(0.8)"``).
    rhs:
        Iterable of RHS pairs; each element is an
        :class:`IdentificationAtom` or a ``(left, right)`` pair.

    The constructor validates that the LHS and RHS lists are comparable
    over the pair and that the LHS is non-empty (an MD with an empty
    premise would identify everything unconditionally) and duplicate-free.

    >>> from repro.core.schema import RelationSchema, SchemaPair
    >>> pair = SchemaPair(RelationSchema("credit", ["tel", "addr"]),
    ...                   RelationSchema("billing", ["phn", "post"]))
    >>> md = MatchingDependency(pair, [("tel", "phn", "=")],
    ...                         [("addr", "post")])
    >>> print(md)
    credit[tel] = billing[phn] -> credit[addr] <=> billing[post]
    """

    def __init__(self, pair: SchemaPair, lhs: Iterable, rhs: Iterable) -> None:
        self.pair = pair
        self.lhs: Tuple[SimilarityAtom, ...] = tuple(
            self._coerce_lhs_atom(atom) for atom in lhs
        )
        self.rhs: Tuple[IdentificationAtom, ...] = tuple(
            self._coerce_rhs_atom(atom) for atom in rhs
        )
        self._validate()

    @staticmethod
    def _coerce_lhs_atom(atom) -> SimilarityAtom:
        if isinstance(atom, SimilarityAtom):
            return atom
        left, right, operator = atom
        return SimilarityAtom(left, right, as_operator(operator))

    @staticmethod
    def _coerce_rhs_atom(atom) -> IdentificationAtom:
        if isinstance(atom, IdentificationAtom):
            return atom
        left, right = atom
        return IdentificationAtom(left, right)

    def _validate(self) -> None:
        if not self.lhs:
            raise ValueError("an MD must have a non-empty LHS")
        if not self.rhs:
            raise ValueError("an MD must have a non-empty RHS")
        self.pair.require_comparable(
            [atom.left for atom in self.lhs],
            [atom.right for atom in self.lhs],
        )
        self.pair.require_comparable(
            [atom.left for atom in self.rhs],
            [atom.right for atom in self.rhs],
        )
        seen_lhs = set()
        for atom in self.lhs:
            key = (atom.left, atom.right, atom.operator)
            if key in seen_lhs:
                raise ValueError(f"duplicate LHS conjunct: {atom}")
            seen_lhs.add(key)
        seen_rhs = set()
        for atom in self.rhs:
            key = atom.attribute_pair
            if key in seen_rhs:
                raise ValueError(f"duplicate RHS pair: {atom}")
            seen_rhs.add(key)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def is_normal_form(self) -> bool:
        """True when the RHS is a single attribute pair (Section 4)."""
        return len(self.rhs) == 1

    def normalize(self) -> List["MatchingDependency"]:
        """Split into equivalent normal-form MDs, one per RHS pair.

        By Lemmas 3.1 and 3.3 an MD with RHS ``(Z1, Z2)`` is equivalent to
        the set of MDs with the same LHS and a single RHS pair each.
        """
        if self.is_normal_form:
            return [self]
        return [
            MatchingDependency(self.pair, self.lhs, [atom]) for atom in self.rhs
        ]

    def lhs_attribute_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The LHS ``(left, right)`` pairs, without operators."""
        return tuple(atom.attribute_pair for atom in self.lhs)

    def rhs_attribute_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The RHS ``(left, right)`` pairs."""
        return tuple(atom.attribute_pair for atom in self.rhs)

    def operators(self) -> Tuple[SimilarityOperator, ...]:
        """The similarity operators used in the LHS, in order."""
        return tuple(atom.operator for atom in self.lhs)

    @property
    def size(self) -> int:
        """The number of atoms, the unit of the paper's input size ``n``."""
        return len(self.lhs) + len(self.rhs)

    def with_extra_lhs(
        self, left: str, right: str, operator
    ) -> "MatchingDependency":
        """Augment the LHS with one more similarity test (Lemma 3.1).

        If the new conjunct already appears, the MD is returned unchanged.
        """
        new_atom = SimilarityAtom(left, right, as_operator(operator))
        if new_atom in self.lhs:
            return self
        return MatchingDependency(self.pair, self.lhs + (new_atom,), self.rhs)

    # ------------------------------------------------------------------
    # Equality / rendering
    # ------------------------------------------------------------------

    def _key(self):
        return (
            self.pair.left.name,
            self.pair.right.name,
            frozenset(self.lhs),
            frozenset(self.rhs),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchingDependency):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        left_name = self.pair.left.name
        right_name = self.pair.right.name
        lhs_text = " & ".join(
            f"{left_name}[{atom.left}] {atom.operator} {right_name}[{atom.right}]"
            for atom in self.lhs
        )
        rhs_text = " & ".join(
            f"{left_name}[{atom.left}] <=> {right_name}[{atom.right}]"
            for atom in self.rhs
        )
        return f"{lhs_text} -> {rhs_text}"

    def __repr__(self) -> str:
        return f"MatchingDependency({self!s})"


def md(
    pair: SchemaPair,
    lhs: Sequence,
    rhs: Sequence,
) -> MatchingDependency:
    """Shorthand constructor for :class:`MatchingDependency`.

    >>> from repro.core.schema import RelationSchema, SchemaPair
    >>> pair = SchemaPair(RelationSchema("R", ["A", "B"]),
    ...                   RelationSchema("R", ["A", "B"]))
    >>> str(md(pair, [("A", "A", "=")], [("B", "B")]))
    'R[A] = R[A] -> R[B] <=> R[B]'
    """
    return MatchingDependency(pair, lhs, rhs)


def total_size(mds: Iterable[MatchingDependency]) -> int:
    """The paper's ``n``: total number of atoms across a set of MDs."""
    return sum(dependency.size for dependency in mds)


def equality_md(
    pair: SchemaPair, lhs_pairs: Sequence[Tuple[str, str]], rhs_pairs: Sequence[Tuple[str, str]]
) -> MatchingDependency:
    """Build an MD whose LHS tests are all plain equality."""
    return MatchingDependency(
        pair,
        [(left, right, EQUALITY) for left, right in lhs_pairs],
        list(rhs_pairs),
    )

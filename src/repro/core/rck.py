"""Relative keys and relative candidate keys (RCKs) — Section 2.2.

A *key relative to* comparable lists ``(Y1, Y2)`` is an MD whose RHS is
fixed to ``(Y1, Y2)``; the paper writes it ``(X1, X2 ‖ C)`` where ``C`` is
the comparison vector ``[≈1, ..., ≈k]``.  Such a key says: to decide
whether ``t1[Y1]`` and ``t2[Y2]`` refer to the same entity, it suffices to
compare the ``X1``/``X2`` attributes pairwise with the operators in ``C``.

A key ψ is a *relative candidate key* (RCK) when no other key ψ′ relative
to the same ``(Y1, Y2)`` satisfies ψ′ ≼ ψ, i.e. is built from a strict
sub-list of ψ's ``(attribute, attribute, operator)`` triples.  RCKs
minimize the number of attributes a matcher must inspect.

This module also implements ``apply(γ, φ)`` (Section 5): the relative key
obtained by replacing the RHS pairs of an MD φ occurring in γ with the LHS
tests of φ — the single deduction step ``findRCKs`` iterates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from .md import MatchingDependency, SimilarityAtom
from .schema import ComparableLists
from .similarity import EQUALITY, SimilarityOperator, as_operator


@dataclass(frozen=True)
class RelativeKey:
    """A key ``(X1, X2 ‖ C)`` relative to a target ``(Y1, Y2)``.

    ``atoms`` is the tuple of LHS triples; order carries no meaning (the
    LHS is a conjunction) but is preserved for display.  Duplicate triples
    are rejected.

    >>> from repro.core.schema import RelationSchema, SchemaPair, ComparableLists
    >>> pair = SchemaPair(RelationSchema("credit", ["email", "tel", "FN"]),
    ...                   RelationSchema("billing", ["email", "phn", "FN"]))
    >>> target = ComparableLists(pair, ["FN"], ["FN"])
    >>> key = RelativeKey.from_triples(target,
    ...     [("email", "email", "="), ("tel", "phn", "=")])
    >>> key.length
    2
    >>> print(key)
    ([email, tel], [email, phn] || [=, =])
    """

    target: ComparableLists
    atoms: Tuple[SimilarityAtom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a relative key must compare at least one pair")
        self.target.pair.require_comparable(
            [atom.left for atom in self.atoms],
            [atom.right for atom in self.atoms],
        )
        if len(set(self.atoms)) != len(self.atoms):
            raise ValueError("duplicate triples in relative key")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_triples(
        cls, target: ComparableLists, triples: Iterable
    ) -> "RelativeKey":
        """Build a key from ``(left, right, operator)`` triples."""
        atoms = tuple(
            triple
            if isinstance(triple, SimilarityAtom)
            else SimilarityAtom(triple[0], triple[1], as_operator(triple[2]))
            for triple in triples
        )
        return cls(target, atoms)

    @classmethod
    def identity_key(cls, target: ComparableLists) -> "RelativeKey":
        """The trivial key ``(Y1, Y2 ‖ [=, ..., =])`` seeding ``findRCKs``."""
        atoms = tuple(
            SimilarityAtom(left, right, EQUALITY) for left, right in target
        )
        return cls(target, atoms)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """The paper's key length ``k`` — number of compared pairs."""
        return len(self.atoms)

    @property
    def comparison_vector(self) -> Tuple[SimilarityOperator, ...]:
        """The vector ``C`` of operators, in atom order."""
        return tuple(atom.operator for atom in self.atoms)

    def triple_set(self) -> frozenset:
        """The atoms as a set — the basis of the ≼ comparison."""
        return frozenset(self.atoms)

    def attribute_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The compared ``(left, right)`` attribute pairs, in order."""
        return tuple(atom.attribute_pair for atom in self.atoms)

    def to_md(self) -> MatchingDependency:
        """The key as an MD: ``⋀ atoms → (Y1, Y2)``."""
        return MatchingDependency(
            self.target.pair, self.atoms, list(self.target)
        )

    # ------------------------------------------------------------------
    # The ≼ order and editing operations
    # ------------------------------------------------------------------

    def covers(self, other: "RelativeKey") -> bool:
        """``self ≼ other``: every triple of ``self`` occurs in ``other``.

        When the containment is strict this is the paper's ψ′ ≺ ψ (shorter
        key built from a sub-list of the longer one); equality of the two
        triple sets also counts as covering, so a set Γ containing ``other``
        never re-adds an identical key.
        """
        return self.triple_set() <= other.triple_set()

    def strictly_smaller_than(self, other: "RelativeKey") -> bool:
        """The strict order of Section 2.2: shorter and contained."""
        return self.length < other.length and self.covers(other)

    def without(self, atom: SimilarityAtom) -> "RelativeKey":
        """The key with one triple removed (used by ``minimize``)."""
        remaining = tuple(existing for existing in self.atoms if existing != atom)
        return RelativeKey(self.target, remaining)

    def apply_md(self, dependency: MatchingDependency) -> "RelativeKey":
        """The paper's ``apply(γ, φ)``.

        Remove from this key every triple whose attribute pair occurs in
        RHS(φ) (whatever its operator), then add LHS(φ)'s triples
        (deduplicated).  The result is a relative key deduced by one
        application of φ; it is *not* minimized here — ``findRCKs`` calls
        ``minimize`` afterwards.
        """
        if dependency.pair != self.target.pair:
            raise ValueError("MD is defined over a different schema pair")
        rhs_pairs = set(dependency.rhs_attribute_pairs())
        kept = [
            atom for atom in self.atoms if atom.attribute_pair not in rhs_pairs
        ]
        present = set(kept)
        for atom in dependency.lhs:
            if atom not in present:
                kept.append(atom)
                present.add(atom)
        return RelativeKey(self.target, tuple(kept))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        lefts = ", ".join(atom.left for atom in self.atoms)
        rights = ", ".join(atom.right for atom in self.atoms)
        ops = ", ".join(str(atom.operator) for atom in self.atoms)
        return f"([{lefts}], [{rights}] || [{ops}])"

    def __len__(self) -> int:
        return self.length


def is_candidate(
    key: RelativeKey, others: Sequence[RelativeKey]
) -> bool:
    """Whether ``key`` is minimal w.r.t. a collection of known keys.

    ``key`` fails candidacy when some strictly smaller key in ``others``
    covers it (Section 2.2's condition for *not* being an RCK).
    """
    return not any(other.strictly_smaller_than(key) for other in others)

"""Concrete text syntax for matching dependencies.

MDs are dataclass-built in code, but experiments and examples are easier to
read with a one-line syntax close to the paper's::

    credit[LN] = billing[LN] & credit[FN] ~dl(0.8) billing[FN]
        -> credit[addr] <=> billing[post] & credit[FN] <=> billing[FN]

* LHS conjuncts are joined with ``&``; each is ``rel[attr] OP rel[attr]``
  where ``OP`` is ``=`` (equality) or ``~metric(theta)`` (a thresholded
  similarity operator, resolved by name at match time).
* ``->`` separates LHS from RHS; RHS pairs use the matching operator,
  written ``<=>``.
* The left operand of every atom must come from the pair's left schema and
  the right operand from the right schema — the parser validates relation
  names and attribute existence and reports precise positions.

:func:`format_md` is the inverse, producing parseable text.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .md import MatchingDependency
from .schema import SchemaPair
from .similarity import EQUALITY, SimilarityOperator

_ATOM_RE = re.compile(
    r"""^\s*
        (?P<left_rel>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<left_attr>[^\]]+?)\s*\]
        \s*(?P<op><=>|=|~[A-Za-z][A-Za-z0-9_]*\(\s*[0-9.]+\s*\))\s*
        (?P<right_rel>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<right_attr>[^\]]+?)\s*\]
        \s*$""",
    re.VERBOSE,
)


class MDSyntaxError(ValueError):
    """Raised when MD text cannot be parsed or validated."""


def _parse_atom(
    text: str, pair: SchemaPair, expect_matching: bool
) -> Tuple[str, str, str]:
    """Parse one atom; returns (left_attr, right_attr, operator_name)."""
    match = _ATOM_RE.match(text)
    if match is None:
        raise MDSyntaxError(f"cannot parse atom {text.strip()!r}")
    left_rel = match.group("left_rel")
    right_rel = match.group("right_rel")
    if left_rel != pair.left.name:
        raise MDSyntaxError(
            f"atom {text.strip()!r}: left relation {left_rel!r} is not the "
            f"pair's left schema {pair.left.name!r}"
        )
    if right_rel != pair.right.name:
        raise MDSyntaxError(
            f"atom {text.strip()!r}: right relation {right_rel!r} is not the "
            f"pair's right schema {pair.right.name!r}"
        )
    operator_text = match.group("op")
    if expect_matching:
        if operator_text != "<=>":
            raise MDSyntaxError(
                f"RHS atom {text.strip()!r} must use the matching operator '<=>'"
            )
        operator_name = "<=>"
    else:
        if operator_text == "<=>":
            raise MDSyntaxError(
                f"LHS atom {text.strip()!r} cannot use the matching operator"
            )
        if operator_text == "=":
            operator_name = EQUALITY.name
        else:
            # strip the leading '~' and normalize inner spacing
            operator_name = re.sub(r"\s+", "", operator_text[1:])
    left_attr = match.group("left_attr")
    right_attr = match.group("right_attr")
    if left_attr not in pair.left:
        raise MDSyntaxError(
            f"atom {text.strip()!r}: {left_attr!r} is not an attribute of "
            f"{pair.left.name!r}"
        )
    if right_attr not in pair.right:
        raise MDSyntaxError(
            f"atom {text.strip()!r}: {right_attr!r} is not an attribute of "
            f"{pair.right.name!r}"
        )
    return left_attr, right_attr, operator_name


def parse_md(text: str, pair: SchemaPair) -> MatchingDependency:
    """Parse one MD from text over the given schema pair.

    >>> from repro.core.schema import RelationSchema, SchemaPair
    >>> pair = SchemaPair(RelationSchema("credit", ["tel", "addr"]),
    ...                   RelationSchema("billing", ["phn", "post"]))
    >>> md = parse_md("credit[tel] = billing[phn] -> credit[addr] <=> billing[post]", pair)
    >>> md.lhs[0].operator.name
    '='
    """
    parts = text.split("->")
    if len(parts) != 2:
        raise MDSyntaxError(
            f"an MD needs exactly one '->', found {len(parts) - 1} in {text!r}"
        )
    lhs_text, rhs_text = parts
    lhs: List[Tuple[str, str, SimilarityOperator]] = []
    for atom_text in lhs_text.split("&"):
        left_attr, right_attr, operator_name = _parse_atom(
            atom_text, pair, expect_matching=False
        )
        lhs.append((left_attr, right_attr, SimilarityOperator(operator_name)))
    rhs: List[Tuple[str, str]] = []
    for atom_text in rhs_text.split("&"):
        left_attr, right_attr, _ = _parse_atom(
            atom_text, pair, expect_matching=True
        )
        rhs.append((left_attr, right_attr))
    return MatchingDependency(pair, lhs, rhs)


def parse_mds(text: str, pair: SchemaPair) -> List[MatchingDependency]:
    """Parse multiple MDs: one per non-empty, non-comment (``#``) line."""
    dependencies = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            dependencies.append(parse_md(stripped, pair))
        except MDSyntaxError as error:
            raise MDSyntaxError(f"line {line_number}: {error}") from None
    return dependencies


def format_md(dependency: MatchingDependency) -> str:
    """Render an MD as parseable text (inverse of :func:`parse_md`)."""
    left_name = dependency.pair.left.name
    right_name = dependency.pair.right.name

    def lhs_atom(atom) -> str:
        operator = (
            "=" if atom.operator.is_equality else f"~{atom.operator.name}"
        )
        return (
            f"{left_name}[{atom.left}] {operator} {right_name}[{atom.right}]"
        )

    lhs_text = " & ".join(lhs_atom(atom) for atom in dependency.lhs)
    rhs_text = " & ".join(
        f"{left_name}[{atom.left}] <=> {right_name}[{atom.right}]"
        for atom in dependency.rhs
    )
    return f"{lhs_text} -> {rhs_text}"

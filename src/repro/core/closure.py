"""Algorithm ``MDClosure`` — deduction analysis for MDs (Section 4).

Given a set Σ of MDs and another MD φ over ``(R1, R2)``, decide whether
``Σ ⊨m φ``: the algorithm computes the *closure* of Σ and LHS(φ) — every
fact ``R[A] ≈ R'[B]`` that must hold on stable instances whenever LHS(φ)
holds — and answers yes iff every RHS pair of φ appears in the closure with
equality (Lemma 3.2 lets the matching operator ``⇌`` be read as ``=`` on
stable instances).

Two implementations are provided:

* :class:`ClosureEngine` — the production engine.  It indexes LHS conjuncts
  so each MD in Σ is re-examined only when one of its conjuncts becomes
  satisfied, the index-based refinement the paper points to via [8, 25]
  ("the algorithm can possibly be improved to O(n + h³) time").  Building
  the engine costs ``O(n)`` and is amortized across many queries — exactly
  the access pattern of ``findRCKs``, which calls the closure once per
  candidate attribute removal.
* :func:`md_closure_paper_loop` — the literal repeat-until-no-change scan of
  Fig. 5 (``O(n²)`` in the size of Σ).  Kept for fidelity, used in tests to
  cross-check the engine and in an ablation benchmark.

Both use the corrected symmetric propagation discussed in DESIGN.md: each
newly derived edge is combined with existing equality edges at *both*
endpoints, and each newly derived equality transports the similarity edges
of *both* endpoints.  This is the closure of the generic axioms:

* ``x ≈ y  ∧  x = z   ⟹   z ≈ y``      (equality substitution)
* ``x = y  ∧  x ≈ z   ⟹   y ≈ z``      (equality transport; with ``≈`` = ``=``
  this is transitivity of equality)

The fixpoint is validated in tests against the independent union-find model
:class:`repro.core.matrix.AxiomaticClosure`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .matrix import SimilarityMatrix
from .md import MatchingDependency, SimilarityAtom
from .schema import QualifiedAttribute, SchemaPair
from .similarity import EQUALITY, SimilarityOperator


@dataclass
class ClosureStats:
    """Bookkeeping produced by a closure computation."""

    mds_fired: int = 0
    entries_set: int = 0
    queue_pops: int = 0


@dataclass(frozen=True)
class _Conjunct:
    """One indexed LHS conjunct of an MD in Σ."""

    md_index: int
    position: int
    operator: SimilarityOperator


class ClosureEngine:
    """Reusable ``MDClosure`` evaluator for a fixed Σ over a schema pair.

    Parameters
    ----------
    pair:
        The schema pair ``(R1, R2)``.
    sigma:
        The MDs of Σ.  They are normalized internally (one RHS pair each);
        generality is not lost (Lemmas 3.1, 3.3).

    >>> from repro.core.schema import RelationSchema, SchemaPair
    >>> from repro.core.md import MatchingDependency
    >>> pair = SchemaPair(RelationSchema("R", ["A", "B", "C"]),
    ...                   RelationSchema("R", ["A", "B", "C"]))
    >>> sigma = [MatchingDependency(pair, [("A", "A", "=")], [("B", "B")]),
    ...          MatchingDependency(pair, [("B", "B", "=")], [("C", "C")])]
    >>> phi = MatchingDependency(pair, [("A", "A", "=")], [("C", "C")])
    >>> ClosureEngine(pair, sigma).deduces(phi)   # Example 3.1 / Lemma 3.3
    True
    """

    def __init__(
        self, pair: SchemaPair, sigma: Iterable[MatchingDependency]
    ) -> None:
        self.pair = pair
        self._mds: List[MatchingDependency] = []
        for dependency in sigma:
            if dependency.pair != pair:
                raise ValueError(
                    f"MD {dependency} is defined over a different schema pair"
                )
            self._mds.extend(dependency.normalize())

        # Static structures shared by every closure query.
        self._lhs_sizes: List[int] = []
        self._rhs: List[Tuple[QualifiedAttribute, QualifiedAttribute]] = []
        self._triggers: Dict[
            Tuple[QualifiedAttribute, QualifiedAttribute], List[_Conjunct]
        ] = {}
        for index, dependency in enumerate(self._mds):
            self._lhs_sizes.append(len(dependency.lhs))
            rhs_atom = dependency.rhs[0]
            self._rhs.append(
                (pair.left_attr(rhs_atom.left), pair.right_attr(rhs_atom.right))
            )
            for position, atom in enumerate(dependency.lhs):
                key = (pair.left_attr(atom.left), pair.right_attr(atom.right))
                self._triggers.setdefault(key, []).append(
                    _Conjunct(index, position, atom.operator)
                )

    @property
    def normalized_mds(self) -> Tuple[MatchingDependency, ...]:
        """Σ in normal form, as the engine indexes it."""
        return tuple(self._mds)

    # ------------------------------------------------------------------
    # Closure computation
    # ------------------------------------------------------------------

    def closure(
        self, lhs: Sequence[SimilarityAtom]
    ) -> Tuple[SimilarityMatrix, ClosureStats]:
        """Compute the closure of Σ and the given LHS conjuncts.

        Returns the similarity matrix ``M`` and computation statistics.
        """
        matrix = SimilarityMatrix()
        stats = ClosureStats()
        remaining = list(self._lhs_sizes)
        satisfied = set()  # {(md_index, position)}
        fired = [False] * len(self._mds)
        queue = deque()

        def assign(
            a: QualifiedAttribute, b: QualifiedAttribute, op: SimilarityOperator
        ) -> None:
            """The paper's AssignVal: set the entry unless redundant."""
            if a == b:
                return
            if matrix.get(a, b, EQUALITY):
                return  # = subsumes every operator, nothing to record
            if not op.is_equality and matrix.get(a, b, op):
                return
            matrix.set(a, b, op)
            stats.entries_set += 1
            queue.append((a, b, op))

        def notify(
            a: QualifiedAttribute, b: QualifiedAttribute, op: SimilarityOperator
        ) -> None:
            """Decrement waiting counts of conjuncts satisfied by the entry."""
            key = None
            if a.side == 0 and b.side == 1:
                key = (a, b)
            elif a.side == 1 and b.side == 0:
                key = (b, a)
            if key is None:
                return  # intra-relation entries never match an LHS conjunct
            for conjunct in self._triggers.get(key, ()):
                if (conjunct.md_index, conjunct.position) in satisfied:
                    continue
                if not op.is_equality and op != conjunct.operator:
                    continue  # only the exact operator or = satisfies a test
                satisfied.add((conjunct.md_index, conjunct.position))
                remaining[conjunct.md_index] -= 1
                if remaining[conjunct.md_index] == 0 and not fired[conjunct.md_index]:
                    fired[conjunct.md_index] = True
                    stats.mds_fired += 1
                    rhs_left, rhs_right = self._rhs[conjunct.md_index]
                    assign(rhs_left, rhs_right, EQUALITY)

        def propagate(
            a: QualifiedAttribute, b: QualifiedAttribute, op: SimilarityOperator
        ) -> None:
            """Derive consequences of the new edge under the axioms."""
            # Equality substitution at both endpoints: z = a gives z op b,
            # and z = b gives a op z.
            for z in matrix.neighbours(a, EQUALITY):
                assign(z, b, op)
            for z in matrix.neighbours(b, EQUALITY):
                assign(a, z, op)
            if op.is_equality:
                # Equality transport: similarity edges move across the new
                # equality, in both directions (Lemma 3.4 interactions).
                for other_op, z in list(matrix.similarity_edges_at(a)):
                    assign(z, b, other_op)
                for other_op, z in list(matrix.similarity_edges_at(b)):
                    assign(a, z, other_op)

        for atom in lhs:
            assign(
                self.pair.left_attr(atom.left),
                self.pair.right_attr(atom.right),
                atom.operator,
            )
        while queue:
            a, b, op = queue.popleft()
            stats.queue_pops += 1
            notify(a, b, op)
            propagate(a, b, op)
        return matrix, stats

    # ------------------------------------------------------------------
    # Deduction queries
    # ------------------------------------------------------------------

    def deduces(self, phi: MatchingDependency) -> bool:
        """Decide ``Σ ⊨m φ``.

        True iff every RHS pair of φ is in the closure of Σ and LHS(φ)
        with equality.
        """
        if phi.pair != self.pair:
            raise ValueError("phi is defined over a different schema pair")
        matrix, _ = self.closure(phi.lhs)
        return all(
            matrix.get(
                self.pair.left_attr(atom.left),
                self.pair.right_attr(atom.right),
                EQUALITY,
            )
            for atom in phi.rhs
        )


def deduces(
    pair: SchemaPair,
    sigma: Iterable[MatchingDependency],
    phi: MatchingDependency,
) -> bool:
    """One-shot convenience wrapper: ``Σ ⊨m φ``.

    Builds a fresh :class:`ClosureEngine`; when issuing many queries against
    the same Σ, construct the engine once instead.
    """
    return ClosureEngine(pair, sigma).deduces(phi)


def md_closure_paper_loop(
    pair: SchemaPair,
    sigma: Iterable[MatchingDependency],
    lhs: Sequence[SimilarityAtom],
) -> SimilarityMatrix:
    """The literal repeat-scan loop of Fig. 5 (``O(n²)``), for cross-checks.

    Semantics are identical to :meth:`ClosureEngine.closure`; only the MD
    application strategy differs (full rescans of Σ until no change instead
    of conjunct-indexed wake-ups).
    """
    normalized: List[MatchingDependency] = []
    for dependency in sigma:
        normalized.extend(dependency.normalize())

    matrix = SimilarityMatrix()
    queue = deque()

    def assign(a, b, op) -> None:
        if a == b or matrix.get(a, b, EQUALITY):
            return
        if not op.is_equality and matrix.get(a, b, op):
            return
        matrix.set(a, b, op)
        queue.append((a, b, op))

    def drain() -> None:
        while queue:
            a, b, op = queue.popleft()
            for z in matrix.neighbours(a, EQUALITY):
                assign(z, b, op)
            for z in matrix.neighbours(b, EQUALITY):
                assign(a, z, op)
            if op.is_equality:
                for other_op, z in list(matrix.similarity_edges_at(a)):
                    assign(z, b, other_op)
                for other_op, z in list(matrix.similarity_edges_at(b)):
                    assign(a, z, other_op)

    for atom in lhs:
        assign(pair.left_attr(atom.left), pair.right_attr(atom.right), atom.operator)
    drain()

    pending = list(normalized)
    changed = True
    while changed:
        changed = False
        still_pending = []
        for dependency in pending:
            lhs_matched = all(
                matrix.holds(
                    pair.left_attr(atom.left),
                    pair.right_attr(atom.right),
                    atom.operator,
                )
                for atom in dependency.lhs
            )
            if not lhs_matched:
                still_pending.append(dependency)
                continue
            rhs_atom = dependency.rhs[0]
            assign(
                pair.left_attr(rhs_atom.left),
                pair.right_attr(rhs_atom.right),
                EQUALITY,
            )
            drain()
            changed = True
        pending = still_pending
    return matrix

"""Explainable deduction: *why* does Σ ⊨m φ hold?

``MDClosure`` answers yes/no; rule authors debugging a surprising
deduction (or its absence) need the derivation.  This module re-runs the
closure with provenance: every derived fact carries a justification —

* ``premise``: asserted by LHS(φ);
* ``fired``: produced by an MD of Σ whose LHS tests are all satisfied
  (with pointers to the facts that satisfied them);
* ``equality``: derived from two parent facts by the equality axioms
  (substitution/transport).

:func:`explain` returns a :class:`Explanation` whose ``steps`` are in
derivation order and print as a proof trace like Example 4.1's table.
Tracing costs more than the production engine, so it lives here rather
than in :mod:`repro.core.closure`; tests assert both agree.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .md import MatchingDependency, SimilarityAtom
from .schema import QualifiedAttribute, SchemaPair
from .similarity import EQUALITY, SimilarityOperator

#: A derived fact: (attribute, attribute, operator), symmetric in a, b.
Fact = Tuple[QualifiedAttribute, QualifiedAttribute, SimilarityOperator]


def _canonical(fact: Fact) -> Fact:
    a, b, op = fact
    if (b.side, b.relation, b.attribute) < (a.side, a.relation, a.attribute):
        return (b, a, op)
    return fact


@dataclass(frozen=True)
class Step:
    """One derivation step."""

    fact: Fact
    kind: str  # "premise" | "fired" | "equality"
    rule: Optional[MatchingDependency] = None
    parents: Tuple[Fact, ...] = ()

    def render(self) -> str:
        a, b, op = self.fact
        fact_text = f"{a.display} {op} {b.display}"
        if self.kind == "premise":
            return f"{fact_text}    [premise]"
        if self.kind == "fired":
            return f"{fact_text}    [by MD: {self.rule}]"
        parent_text = "; ".join(
            f"{pa.display} {pop} {pb.display}" for pa, pb, pop in self.parents
        )
        return f"{fact_text}    [equality axioms from: {parent_text}]"


@dataclass
class Explanation:
    """The outcome of :func:`explain`."""

    deduced: bool
    phi: MatchingDependency
    steps: List[Step] = field(default_factory=list)

    def render(self) -> str:
        """A readable proof trace (or a failure report)."""
        header = (
            f"Sigma |=m phi: {self.deduced}\n"
            f"phi: {self.phi}\n"
        )
        if not self.deduced:
            missing = ", ".join(
                f"{atom.left}~{atom.right}" for atom in self.phi.rhs
            )
            return header + (
                f"No derivation reaches every RHS pair ({missing}); "
                f"{len(self.steps)} fact(s) were derivable from the premise."
            )
        lines = [header + "Derivation:"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index:>3}. {step.render()}")
        return "\n".join(lines)

    def rules_used(self) -> List[MatchingDependency]:
        """The MDs of Σ that appear in the derivation, in firing order."""
        seen = []
        for step in self.steps:
            if step.kind == "fired" and step.rule not in seen:
                seen.append(step.rule)
        return seen


class _TracingClosure:
    """A closure run that records one justification per derived fact."""

    def __init__(self, pair: SchemaPair, sigma: Sequence[MatchingDependency]):
        self.pair = pair
        self.sigma: List[MatchingDependency] = []
        for dependency in sigma:
            self.sigma.extend(dependency.normalize())
        self.justification: Dict[Fact, Step] = {}
        self._queue: deque = deque()

    def _holds(self, a, b, op) -> bool:
        if a == b:
            return True
        if _canonical((a, b, op)) in self.justification:
            return True
        return _canonical((a, b, EQUALITY)) in self.justification

    def _add(self, fact: Fact, step: Step) -> None:
        fact = _canonical(fact)
        a, b, op = fact
        if a == b or self._holds(a, b, op):
            return
        self.justification[fact] = step
        self._queue.append(fact)

    def run(self, lhs: Sequence[SimilarityAtom]) -> None:
        for atom in lhs:
            fact = (
                self.pair.left_attr(atom.left),
                self.pair.right_attr(atom.right),
                atom.operator,
            )
            self._add(fact, Step(_canonical(fact), "premise"))
        pending = list(self.sigma)
        progress = True
        while progress:
            self._drain()
            progress = False
            still = []
            for dependency in pending:
                satisfied_by: List[Fact] = []
                ok = True
                for atom in dependency.lhs:
                    a = self.pair.left_attr(atom.left)
                    b = self.pair.right_attr(atom.right)
                    if _canonical((a, b, EQUALITY)) in self.justification:
                        satisfied_by.append(_canonical((a, b, EQUALITY)))
                    elif _canonical((a, b, atom.operator)) in self.justification:
                        satisfied_by.append(_canonical((a, b, atom.operator)))
                    else:
                        ok = False
                        break
                if not ok:
                    still.append(dependency)
                    continue
                rhs_atom = dependency.rhs[0]
                fact = (
                    self.pair.left_attr(rhs_atom.left),
                    self.pair.right_attr(rhs_atom.right),
                    EQUALITY,
                )
                self._add(
                    fact,
                    Step(
                        _canonical(fact),
                        "fired",
                        rule=dependency,
                        parents=tuple(satisfied_by),
                    ),
                )
                progress = True
            pending = still

    def _drain(self) -> None:
        """Close under the equality axioms, justifying each new fact."""
        while self._queue:
            fact = self._queue.popleft()
            a, b, op = fact
            # Combine with every equality fact sharing an endpoint
            # (substitution), and, when this fact is an equality, carry
            # similarity facts across it (transport).
            for other in list(self.justification):
                oa, ob, oop = other
                if oop.is_equality:
                    for x, y in ((oa, ob), (ob, oa)):
                        if x == a:
                            self._add(
                                (y, b, op),
                                Step(
                                    _canonical((y, b, op)),
                                    "equality",
                                    parents=(fact, other),
                                ),
                            )
                        if x == b:
                            self._add(
                                (a, y, op),
                                Step(
                                    _canonical((a, y, op)),
                                    "equality",
                                    parents=(fact, other),
                                ),
                            )
                if op.is_equality and not oop.is_equality:
                    for x, y in ((a, b), (b, a)):
                        if oa == x:
                            self._add(
                                (y, ob, oop),
                                Step(
                                    _canonical((y, ob, oop)),
                                    "equality",
                                    parents=(other, fact),
                                ),
                            )
                        if ob == x:
                            self._add(
                                (oa, y, oop),
                                Step(
                                    _canonical((oa, y, oop)),
                                    "equality",
                                    parents=(other, fact),
                                ),
                            )


def explain(
    pair: SchemaPair,
    sigma: Sequence[MatchingDependency],
    phi: MatchingDependency,
) -> Explanation:
    """Decide Σ ⊨m φ and return the derivation (or a failure report).

    The returned steps are the *relevant* ones: facts on which some RHS
    pair of φ transitively depends, in a valid derivation order.
    """
    tracer = _TracingClosure(pair, sigma)
    tracer.run(phi.lhs)

    goals: List[Fact] = []
    deduced = True
    for atom in phi.rhs:
        fact = _canonical(
            (
                pair.left_attr(atom.left),
                pair.right_attr(atom.right),
                EQUALITY,
            )
        )
        if fact in tracer.justification:
            goals.append(fact)
        else:
            deduced = False

    explanation = Explanation(deduced=deduced, phi=phi)
    if not deduced:
        explanation.steps = list(tracer.justification.values())
        return explanation

    # Backward slice from the goals, then emit in derivation order.
    needed: List[Fact] = []
    seen = set()
    frontier = list(goals)
    while frontier:
        fact = frontier.pop()
        if fact in seen:
            continue
        seen.add(fact)
        needed.append(fact)
        step = tracer.justification[fact]
        frontier.extend(step.parents)

    order = {fact: index for index, fact in enumerate(tracer.justification)}
    needed.sort(key=lambda fact: order[fact])
    explanation.steps = [tracer.justification[fact] for fact in needed]
    return explanation

"""Tenants: one workspace + streaming matcher + micro-batch queue each.

A tenant is keyed by its spec fingerprint (deployment-only sections —
``observability``, ``persistence``, ``serve`` — never enter the
fingerprint, so retuning a deployment keeps the tenant).  Its durable
store opens *lazily* on first use through ``Workspace.stream()``: the
exact path audited for connection leaks on fingerprint rejection, so a
reload against a mismatched store fails without holding a handle.

All engine work — ingest batches, batch matches, cluster queries — runs
in worker threads (``asyncio.to_thread``) serialized by one per-tenant
lock, keeping the event loop free to accept connections while a chase
runs.  The drain task is the queue's single consumer: it pulls a
micro-batch, runs one pooled-chase ingest over it, assigns each event a
monotonically increasing ``seq`` in processing order (what the
differential suite replays offline), and resolves the waiting futures.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional

from repro.core.schema import LEFT, RIGHT
from repro.relations.relation import Relation

from .batching import MicroBatchQueue


class TenantClosed(Exception):
    """The tenant stopped before the event was processed (HTTP 503)."""


def parse_side(value: object) -> int:
    """``"left"``/``"right"``/0/1 → the schema-side constant."""
    if value in (LEFT, "left", str(LEFT)):
        return LEFT
    if value in (RIGHT, "right", str(RIGHT)):
        return RIGHT
    raise ValueError(f"side must be 'left' or 'right', got {value!r}")


def side_name(side: int) -> str:
    return "left" if side == LEFT else "right"


class Tenant:
    """One spec's serving state: workspace, matcher, queue, drain task."""

    def __init__(
        self,
        workspace,
        max_batch: int = 16,
        max_delay_ms: int = 10,
        queue_limit: int = 1024,
    ) -> None:
        self.workspace = workspace
        self.fingerprint: str = workspace.fingerprint
        self.queue: MicroBatchQueue = MicroBatchQueue(
            max_batch=max_batch,
            max_delay=max_delay_ms / 1000.0,
            limit=queue_limit,
        )
        self._matcher = None
        self._lock = threading.Lock()
        self._seq = 0
        self._drain_task: Optional["asyncio.Task"] = None
        self.draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the queue's single consumer on the running loop."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    @property
    def matcher(self):
        """The streaming matcher, opened lazily on first use.

        For a durable spec this opens (or resumes) the SQLite store;
        a failure — fingerprint mismatch, foreign blocking semantics —
        propagates *without* leaking the connection
        (``Workspace.stream()`` closes self-opened stores on every
        rejection path).
        """
        if self._matcher is None:
            self._matcher = self.workspace.stream()
        return self._matcher

    @property
    def opened(self) -> bool:
        """Whether the matcher (and any durable store) is open yet."""
        return self._matcher is not None

    async def close(self, abort: bool = False) -> None:
        """Stop the tenant.

        Graceful (default): the queue stops accepting, every already
        accepted event is processed and committed, then the store
        closes.  ``abort=True`` models a crash for the fault suite:
        accepted-but-unprocessed events fail with :class:`TenantClosed`
        and the store closes without a further commit — batches that
        finished keep their durable commits, nothing else lands.
        """
        self.draining = True
        self.queue.close()
        if abort:
            self.queue.abort_pending(TenantClosed())
        if self._drain_task is not None:
            await self._drain_task
            self._drain_task = None
        if self._matcher is not None:
            await asyncio.to_thread(self._close_store, not abort)

    def _close_store(self, commit: bool) -> None:
        with self._lock:
            self._matcher.store.close(commit=commit)

    # ------------------------------------------------------------------
    # Ingest (producer + consumer sides)
    # ------------------------------------------------------------------

    def submit(self, side: int, values: Dict[str, object], tid) -> "asyncio.Future":
        """Queue one ingest event; resolves to ``(seq, IngestResult)``."""
        return self.queue.submit((side, values, tid))

    async def _drain(self) -> None:
        while True:
            batch = await self.queue.next_batch()
            if batch is None:
                return
            if not batch:
                continue
            events = [entry.item for entry in batch]
            try:
                numbered = await asyncio.to_thread(self._ingest_batch, events)
            except Exception as error:  # engine failure: fail this batch
                for entry in batch:
                    if not entry.future.done():
                        entry.future.set_exception(error)
                continue
            for entry, outcome in zip(batch, numbered):
                if not entry.future.done():
                    entry.future.set_result(outcome)

    def _ingest_batch(self, events):
        with self._lock:
            matcher = self.matcher
            results = matcher.ingest_batch(events)
            first = self._seq
            self._seq += len(results)
        return [(first + offset, result) for offset, result in enumerate(results)]

    # ------------------------------------------------------------------
    # Queries (worker-thread bodies; call via asyncio.to_thread)
    # ------------------------------------------------------------------

    def query_cluster(self, side: int, tid: int) -> Optional[Dict[str, object]]:
        """The cluster containing ``(side, tid)``; ``None`` when absent."""
        with self._lock:
            store = self.matcher.store
            if tid not in store.relation(side):
                return None
            cluster = store.cluster_of(side, tid)
            return {
                "side": side_name(side),
                "tid": tid,
                "left_tids": sorted(cluster.left_tids),
                "right_tids": sorted(cluster.right_tids),
            }

    def match_batch(self, left_rows, right_rows) -> Dict[str, object]:
        """One batch match over inline rows; the CLI's report shape."""
        pair = self.workspace.plan.pair
        left = Relation(pair.left)
        for values in left_rows:
            left.insert(values)
        right = Relation(pair.right)
        for values in right_rows:
            right.insert(values)
        with self._lock:
            report = self.workspace.match(left, right)
        return report.to_dict()

    def stats(self) -> Dict[str, object]:
        """This tenant's metrics/plan/store counters for ``/metrics``."""
        out: Dict[str, object] = {
            "fingerprint": self.fingerprint,
            "draining": self.draining,
            "queue": {
                "pending": self.queue.pending,
                "limit": self.queue.limit,
                "max_batch": self.queue.max_batch,
                "max_delay_ms": round(self.queue.max_delay * 1000),
            },
            "processed": self._seq,
            "metrics": self.workspace.metrics.as_dict(),
        }
        if self._matcher is not None:
            with self._lock:
                out["plan"] = self.workspace.plan.stats.as_dict()
                out["store"] = self._matcher.store.stats()
        return out

    def explain(self) -> str:
        return self.workspace.explain()

"""`repro serve`: the asyncio resolution service over :class:`Workspace`.

Endpoints (all JSON unless noted):

- ``POST /ingest`` — one record (``{"side", "values", "tid"?}``) or a
  list (``{"records": [...]}``); each event rides a per-tenant
  micro-batch (one pooled chase per batch) and resolves to its
  ``seq``/``tid``/``matches``.  A full queue answers **429** with
  ``Retry-After`` — backpressure, never silent loss.
- ``POST /match`` — batch matching over inline rows
  (``{"left": [...], "right": [...]}``); the CLI's report shape.
- ``GET /query/<tid>?side=left|right`` — the record's live cluster.
- ``GET /explain`` — the compiled plan, human-readable (text/plain).
- ``GET /healthz`` — liveness + tenant roster (never opens stores).
- ``GET /metrics`` — per-endpoint latency summaries (p50/p95/p99) and
  request counters, plus each tenant's engine/plan/store counters.
- ``POST /admin/reload`` — hot spec swap: a document with a *new*
  fingerprint becomes a fresh tenant (lazily opening its store) and
  takes over serving; the old tenant drains its queue, commits, and
  closes in the background.  Same fingerprint → no-op (deployment-only
  sections never enter the fingerprint).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

from repro.api.spec import ResolutionSpec, SpecError
from repro.api.workspace import Workspace
from repro.obs.metrics import MetricsRegistry

from .batching import QueueFull
from .http import (
    BadRequest,
    Request,
    error_body,
    read_request,
    response_bytes,
)
from .tenants import Tenant, TenantClosed, parse_side


class ResolutionServer:
    """One listening socket, one primary tenant, any number draining."""

    def __init__(
        self,
        spec: ResolutionSpec,
        host: Optional[str] = None,
        port: Optional[int] = None,
        max_batch: Optional[int] = None,
        max_delay_ms: Optional[int] = None,
        queue_limit: Optional[int] = None,
    ) -> None:
        self.host = host if host is not None else spec.serve_host
        self.port = port if port is not None else spec.serve_port
        self.max_batch = max_batch if max_batch is not None else spec.serve_max_batch
        self.max_delay_ms = (
            max_delay_ms if max_delay_ms is not None else spec.serve_max_delay_ms
        )
        self.queue_limit = (
            queue_limit if queue_limit is not None else spec.serve_queue_limit
        )
        self.metrics = MetricsRegistry()
        self.tenants: Dict[str, Tenant] = {}
        self.primary: str = ""
        self._adopt(Workspace(spec))
        self._server: Optional["asyncio.base_events.Server"] = None
        self._reload_lock: Optional["asyncio.Lock"] = None
        self._background: set = set()
        self._connections: set = set()

    def _adopt(self, workspace: Workspace) -> Tenant:
        tenant = Tenant(
            workspace,
            max_batch=self.max_batch,
            max_delay_ms=self.max_delay_ms,
            queue_limit=self.queue_limit,
        )
        self.tenants[tenant.fingerprint] = tenant
        self.primary = tenant.fingerprint
        return tenant

    @property
    def tenant(self) -> Tenant:
        """The primary (serving) tenant."""
        return self.tenants[self.primary]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the primary tenant's consumer."""
        self._reload_lock = asyncio.Lock()
        self.tenant.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.host, self.port = sock.getsockname()[:2]
            break

    @property
    def address(self):
        """The bound ``(host, port)`` — resolved after :meth:`start`."""
        return self.host, self.port

    async def stop(self, abort: bool = False) -> None:
        """Stop listening, then stop every tenant.

        Graceful (default): every accepted ingest is processed and
        durably committed before the stores close.  ``abort=True``
        models a crash (the fault suite's kill): queued events fail,
        only batches that already committed survive.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._background):
            await task
        for tenant in list(self.tenants.values()):
            await tenant.close(abort=abort)
        self.tenants.clear()
        # Reap connection handlers: in-flight responses (resolved while
        # the tenants drained above) get a beat to flush, then lingering
        # keep-alive connections are cancelled so no coroutine outlives
        # the loop.
        if self._connections:
            done, pending = await asyncio.wait(
                set(self._connections), timeout=1.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        self._connections.clear()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as error:
                    writer.write(
                        response_bytes(
                            400, error_body(str(error)), keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                payload = await self._dispatch(request)
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> bytes:
        endpoint, handler = self._route(request)
        started = time.perf_counter()
        try:
            status, body, extra = await handler(request)
        except BadRequest as error:
            status, body, extra = 400, error_body(str(error)), None
        except SpecError as error:
            # Before the ValueError clause: SpecError IS a ValueError,
            # and its structured errors list must reach the client.
            status, body, extra = (
                400,
                error_body("invalid spec", errors=list(error.errors)),
                None,
            )
        except (KeyError, ValueError) as error:
            status, body, extra = 400, error_body(str(error)), None
        except QueueFull:
            retry_after = max(1, round(self.max_delay_ms / 1000) + 1)
            status, body, extra = (
                429,
                error_body(
                    "ingest queue full",
                    retry_after=retry_after,
                    queue_limit=self.queue_limit,
                ),
                {"Retry-After": str(retry_after)},
            )
        except (TenantClosed, RuntimeError) as error:
            status, body, extra = (
                503,
                error_body(f"tenant unavailable: {error}"),
                None,
            )
        except Exception as error:  # pragma: no cover - last-resort guard
            status, body, extra = (
                500,
                error_body(f"{type(error).__name__}: {error}"),
                None,
            )
        elapsed = time.perf_counter() - started
        self.metrics.count("serve.requests")
        self.metrics.count(f"serve.{endpoint}.requests")
        self.metrics.count(f"serve.status.{status // 100}xx")
        self.metrics.observe(f"serve.{endpoint}.seconds", elapsed)
        content_type = (
            "text/plain; charset=utf-8"
            if isinstance(body, str)
            else "application/json"
        )
        return response_bytes(
            status, body, content_type=content_type, extra_headers=extra
        )

    def _route(self, request: Request):
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return "healthz", self._handle_healthz
        if path == "/metrics" and method == "GET":
            return "metrics", self._handle_metrics
        if path == "/explain" and method == "GET":
            return "explain", self._handle_explain
        if path == "/ingest" and method == "POST":
            return "ingest", self._handle_ingest
        if path == "/match" and method == "POST":
            return "match", self._handle_match
        if path.startswith("/query/") and method == "GET":
            return "query", self._handle_query
        if path == "/admin/reload" and method == "POST":
            return "reload", self._handle_reload
        return "unrouted", self._handle_unrouted

    # ------------------------------------------------------------------
    # Handlers (each returns (status, body, extra_headers))
    # ------------------------------------------------------------------

    async def _handle_unrouted(self, request: Request):
        known = (
            "/healthz", "/metrics", "/explain", "/ingest", "/match",
            "/query/<tid>", "/admin/reload",
        )
        return (
            404,
            error_body(
                f"no route for {request.method} {request.path}",
                routes=list(known),
            ),
            None,
        )

    async def _handle_healthz(self, request: Request):
        return (
            200,
            {
                "status": "ok",
                "fingerprint": self.primary,
                "tenants": {
                    fingerprint: {
                        "draining": tenant.draining,
                        "opened": tenant.opened,
                        "pending": tenant.queue.pending,
                    }
                    for fingerprint, tenant in self.tenants.items()
                },
            },
            None,
        )

    async def _handle_metrics(self, request: Request):
        tenants = {
            fingerprint: await asyncio.to_thread(tenant.stats)
            for fingerprint, tenant in self.tenants.items()
        }
        return (
            200,
            {"server": self.metrics.as_dict(), "tenants": tenants},
            None,
        )

    async def _handle_explain(self, request: Request):
        text = await asyncio.to_thread(self.tenant.explain)
        return 200, text, None

    async def _handle_ingest(self, request: Request):
        document = request.json()
        if not isinstance(document, dict):
            raise BadRequest("expected a JSON object body")
        if "records" in document:
            records = document["records"]
            if not isinstance(records, list) or not records:
                raise BadRequest("records: expected a non-empty list")
        else:
            records = [document]
        tenant = self.tenant
        futures = []
        for position, record in enumerate(records):
            if not isinstance(record, dict):
                raise BadRequest(f"records[{position}]: expected an object")
            side = parse_side(record.get("side"))
            values = record.get("values")
            if not isinstance(values, dict):
                raise BadRequest(
                    f"records[{position}].values: expected an object"
                )
            tid = record.get("tid")
            if tid is not None and not isinstance(tid, int):
                raise BadRequest(
                    f"records[{position}].tid: expected an integer"
                )
            futures.append((side, values, tid))
        # All-or-nothing admission: either every record of the request
        # fits the queue or QueueFull sheds the whole request — a client
        # retries the request as a unit, so nothing is half-applied on
        # 429.  The capacity check and the submits run without an await
        # in between, so no other handler can take the headroom first.
        if len(futures) > tenant.queue.limit - tenant.queue.pending:
            raise QueueFull()
        enqueued = [
            tenant.submit(side, values, tid) for side, values, tid in futures
        ]
        outcomes = await asyncio.gather(*enqueued)
        results = []
        for seq, result in outcomes:
            results.append(
                {
                    "seq": seq,
                    "side": "left" if result.side == 0 else "right",
                    "tid": result.tid,
                    "candidates": len(result.candidates),
                    "matches": [list(pair) for pair in result.matches],
                    "merged": result.merged,
                }
            )
        self.metrics.count("serve.ingested", len(results))
        return 200, {"results": results}, None

    async def _handle_match(self, request: Request):
        document = request.json()
        if not isinstance(document, dict):
            raise BadRequest("expected a JSON object body")
        left = document.get("left", [])
        right = document.get("right", [])
        for name, rows in (("left", left), ("right", right)):
            if not isinstance(rows, list) or not all(
                isinstance(row, dict) for row in rows
            ):
                raise BadRequest(f"{name}: expected a list of row objects")
        report = await asyncio.to_thread(self.tenant.match_batch, left, right)
        return 200, report, None

    async def _handle_query(self, request: Request):
        tail = request.path[len("/query/"):]
        try:
            tid = int(tail)
        except ValueError:
            raise BadRequest(f"query tid must be an integer, got {tail!r}")
        side = parse_side(request.query.get("side", "left"))
        cluster = await asyncio.to_thread(
            self.tenant.query_cluster, side, tid
        )
        if cluster is None:
            return (
                404,
                error_body(
                    f"no {request.query.get('side', 'left')} record with "
                    f"tid {tid}"
                ),
                None,
            )
        return 200, cluster, None

    async def _handle_reload(self, request: Request):
        document = request.json()
        spec = ResolutionSpec.from_dict(document)  # SpecError → 400
        async with self._reload_lock:
            fingerprint = spec.fingerprint()
            if fingerprint == self.primary:
                return (
                    200,
                    {"reloaded": False, "fingerprint": fingerprint},
                    None,
                )
            previous = self.tenant
            tenant = self._adopt(Workspace(spec))
            tenant.start()
            # The old tenant drains in the background: accepted ingests
            # still process and commit, then its store closes and it
            # drops off /healthz.
            task = asyncio.get_running_loop().create_task(
                self._retire(previous)
            )
            self._background.add(task)
            task.add_done_callback(self._background.discard)
            self.metrics.count("serve.reloads")
            return (
                200,
                {
                    "reloaded": True,
                    "fingerprint": fingerprint,
                    "draining": previous.fingerprint,
                },
                None,
            )

    async def _retire(self, tenant: Tenant) -> None:
        try:
            await tenant.close(abort=False)
        finally:
            existing = self.tenants.get(tenant.fingerprint)
            if existing is tenant:
                del self.tenants[tenant.fingerprint]

"""`repro.serve`: the zero-dependency asyncio resolution service.

The paper's operators become a long-running, multi-tenant HTTP service:
ingest events ride per-tenant micro-batch queues so one pooled
enforcement chase is amortized across a batch
(:meth:`~repro.engine.matcher.IncrementalMatcher.ingest_batch`), with
bounded-queue backpressure (429 + ``Retry-After``), hot spec reload by
fingerprint, and graceful drain on shutdown.  Everything served over
HTTP is bit-identical to the offline ``Workspace`` path — pinned by the
service differential suite (``tests/serve/``).
"""

from .app import ResolutionServer
from .batching import MicroBatchQueue, QueueFull
from .runner import ServerThread, serve_forever
from .tenants import Tenant, TenantClosed

__all__ = [
    "MicroBatchQueue",
    "QueueFull",
    "ResolutionServer",
    "ServerThread",
    "Tenant",
    "TenantClosed",
    "serve_forever",
]

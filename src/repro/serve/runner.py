"""Run the service: foreground (CLI) or background thread (tests).

``serve_forever`` owns a fresh event loop until SIGINT/SIGTERM, then
shuts the server down gracefully (drain queues, commit, close stores).

:class:`ServerThread` runs the same server on a dedicated loop thread so
synchronous test code can drive it with plain ``http.client`` calls;
``start()`` returns the bound address (pass ``port=0`` for an ephemeral
port), ``stop(abort=True)`` models a crash for the fault suite.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from typing import Optional, Tuple

from .app import ResolutionServer


def serve_forever(server: ResolutionServer) -> None:
    """Start the server and block until SIGINT/SIGTERM; then drain."""

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, stopping.set)
        await server.start()
        host, port = server.address
        print(f"# repro serve: listening on http://{host}:{port}")
        print(f"# primary tenant: {server.primary}")
        try:
            await stopping.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        # add_signal_handler unavailable (rare platforms): asyncio.run
        # already cancelled and cleaned up the main task.
        pass


class ServerThread:
    """A :class:`ResolutionServer` on its own event-loop thread."""

    def __init__(self, server: ResolutionServer) -> None:
        self.server = server
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as error:
                self._startup_error = error
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            loop.close()

    def submit(self, coroutine, timeout: float = 60.0):
        """Run a coroutine on the server loop from test code."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    def stop(self, abort: bool = False, timeout: float = 60.0) -> None:
        """Stop the server and join the loop thread.

        Graceful by default; ``abort=True`` models a crash (queued
        ingests fail, only committed batches survive).
        """
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(abort=abort), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None
        self._thread = None

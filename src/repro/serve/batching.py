"""The per-tenant ingest micro-batch queue.

One producer side (HTTP handlers) submits single ingest events and gets
back futures; one consumer (the tenant's drain task) pulls *batches*:
the first event is awaited, then the batch grows until ``max_batch``
events are in hand or ``max_delay`` seconds have passed since the first
— whichever comes first.  The engine then amortizes one pooled
screening chase over the whole batch
(:meth:`repro.engine.matcher.IncrementalMatcher.ingest_batch`), which
is where the service's throughput over per-record ingest comes from.

The queue is bounded: past ``limit`` pending events :meth:`submit`
raises :class:`QueueFull` and the HTTP layer answers 429 with a
``Retry-After`` — backpressure instead of unbounded memory.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")

#: Sentinel closing the queue; the consumer drains then stops.
_CLOSE = object()


class QueueFull(Exception):
    """The bounded ingest queue is at capacity — shed load (HTTP 429)."""


@dataclass
class _Entry(Generic[T]):
    item: T
    future: "asyncio.Future"


class MicroBatchQueue(Generic[T]):
    """Bounded single-consumer queue that hands out micro-batches."""

    def __init__(
        self,
        max_batch: int = 16,
        max_delay: float = 0.01,
        limit: int = 1024,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.max_batch = max_batch
        self.max_delay = max(0.0, max_delay)
        self.limit = limit
        # Unbounded at the asyncio level; the limit is enforced in
        # submit() so producers get QueueFull synchronously instead of
        # blocking (the HTTP layer needs to answer 429 immediately).
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._pending = 0
        self._taken = 0
        self._closed = False

    @property
    def pending(self) -> int:
        """Events submitted but not yet handed to the consumer."""
        return self._pending

    @property
    def taken(self) -> int:
        """Total events ever handed to the consumer in batches.

        Monotone, so an observer can distinguish "the queue is empty
        because the consumer took the event" from "the queue is empty
        because the event never arrived" — ``pending`` alone cannot.
        """
        return self._taken

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, item: T) -> "asyncio.Future":
        """Enqueue one event; the future resolves to its ingest result.

        Raises :class:`QueueFull` at capacity and :class:`RuntimeError`
        after :meth:`close` (the HTTP layer maps that to 503).
        """
        if self._closed:
            raise RuntimeError("queue is closed")
        if self._pending >= self.limit:
            raise QueueFull()
        future = asyncio.get_running_loop().create_future()
        self._pending += 1
        self._queue.put_nowait(_Entry(item, future))
        return future

    def close(self) -> None:
        """Stop accepting events; the consumer drains what is queued."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(_CLOSE)

    async def next_batch(self) -> Optional[List["_Entry[T]"]]:
        """The next micro-batch, or ``None`` when closed and drained.

        Waits for the first event, then collects greedily (whatever is
        already queued) and patiently (up to ``max_delay`` seconds from
        the first event) until ``max_batch`` events are in hand.
        """
        first = await self._queue.get()
        if first is _CLOSE:
            return None
        batch: List[_Entry[T]] = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay
        while len(batch) < self.max_batch:
            # Greedy phase: take whatever is already there.
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                # Patient phase: wait out the rest of the delay budget.
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    entry = await asyncio.wait_for(
                        self._queue.get(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
            if entry is _CLOSE:
                # Keep the sentinel for the next call so the consumer
                # still sees the close after this batch.
                self._queue.put_nowait(_CLOSE)
                break
            batch.append(entry)
        self._pending -= len(batch)
        self._taken += len(batch)
        return batch

    def abort_pending(self, error: BaseException) -> int:
        """Fail every queued event (abortive shutdown); returns count."""
        failed = 0
        saw_close = False
        while True:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if entry is _CLOSE:
                # Put the sentinel back after the sweep: the consumer's
                # next get() must still observe the close, or it waits
                # forever on a queue nothing will ever feed again.
                saw_close = True
                continue
            if not entry.future.done():
                entry.future.set_exception(error)
            failed += 1
        if saw_close:
            self._queue.put_nowait(_CLOSE)
        self._pending -= failed
        return failed

"""Minimal HTTP/1.1 framing over asyncio streams — no web framework.

The service's transport needs are small enough that stdlib ``asyncio``
streams plus ~150 lines of framing beat a framework dependency: parse a
request line, fold headers, read a ``Content-Length`` body, and write a
correctly framed response with keep-alive.  Anything the parser does not
understand is a clean 400, never an exception escaping to the
connection loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bounds keeping one bad client from holding the process hostage.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(ValueError):
    """A request the framing layer refuses (malformed or oversized)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    _json: object = field(default=None, repr=False)

    def json(self) -> object:
        """The body parsed as JSON (:class:`BadRequest` when invalid)."""
        if self._json is None:
            if not self.body:
                raise BadRequest("expected a JSON body")
            try:
                self._json = json.loads(self.body)
            except json.JSONDecodeError as error:
                raise BadRequest(f"invalid JSON body: {error}") from None
        return self._json

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`BadRequest` for anything malformed — the connection
    loop answers 400 and closes.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise BadRequest("truncated request line") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise BadRequest("request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise BadRequest(f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise BadRequest("truncated headers") from None
        if raw in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise BadRequest("too many headers")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, separator, value = text.partition(":")
        if not separator:
            raise BadRequest(f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise BadRequest(
                f"invalid Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise BadRequest(f"invalid Content-Length {length}")
        if length > max_body:
            raise BadRequest(f"body of {length} bytes exceeds {max_body}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest("truncated body") from None
    elif headers.get("transfer-encoding"):
        raise BadRequest("chunked requests are not supported")

    split = urlsplit(target)
    query = {
        key: value for key, value in parse_qsl(split.query, keep_blank_values=True)
    }
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: object = None,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """A full HTTP/1.1 response; dict/list bodies are JSON-encoded."""
    if body is None:
        payload = b""
    elif isinstance(body, bytes):
        payload = body
    elif isinstance(body, str):
        payload = body.encode("utf-8")
        if content_type == "application/json":
            content_type = "text/plain; charset=utf-8"
    else:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload


def error_body(message: str, **extra: object) -> Dict[str, object]:
    """The uniform error payload every non-2xx response carries."""
    body: Dict[str, object] = {"error": message}
    body.update(extra)
    return body


Address = Tuple[str, int]

"""Blocking: partition relations by a derived key; compare within blocks.

"To handle large relations it is common to partition the relations into
blocks based on blocking keys (discriminating attributes), such that only
tuples in the same block are compared" (Section 1).  Exp-4 evaluates
blocking keys built from (part of) RCK attributes — three attributes from
the top two RCKs, with the name attribute Soundex-encoded — against
manually chosen keys.

The key-derivation and bucket machinery lives in the enforcement kernel
(:mod:`repro.plan.blocking`), where the batch pipelines and the streaming
engine share it; this module re-exports the primitives under their
historical names and keeps the Exp-4 key recipe
(:func:`rck_blocking_keys`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.rck import RelativeKey
from repro.metrics.soundex import soundex
from repro.plan.blocking import (
    Encoder,
    RowKey,
    attribute_key,
    hash_candidates,
    leading_attribute_pairs,
)
from repro.relations.relation import Relation

from .evaluate import Pair

__all__ = [
    "Encoder",
    "RowKey",
    "attribute_key",
    "block_pairs",
    "multi_pass_block_pairs",
    "rck_blocking_keys",
]


def block_pairs(
    left: Relation,
    right: Relation,
    left_key: RowKey,
    right_key: RowKey,
) -> List[Pair]:
    """Candidate pairs: all cross-relation pairs sharing a block key."""
    return hash_candidates(left, right, left_key, right_key)


def multi_pass_block_pairs(
    left: Relation,
    right: Relation,
    keys: Sequence[Tuple[RowKey, RowKey]],
) -> List[Pair]:
    """Union of candidates over several blocking keys (multi-pass blocking).

    "This process is often repeated multiple times to improve match
    quality, each using a different blocking key."
    """
    seen: Set[Pair] = set()
    for left_key, right_key in keys:
        seen.update(hash_candidates(left, right, left_key, right_key))
    return sorted(seen)


def rck_blocking_keys(
    rcks: Sequence[RelativeKey],
    attribute_count: int = 3,
    encode_attributes: Iterable[str] = ("FN", "LN"),
) -> Tuple[RowKey, RowKey]:
    """Blocking keys from (part of) RCK attributes, per Exp-4.

    Takes the first ``attribute_count`` distinct attribute pairs from the
    given RCKs (the paper uses "three attributes in top two RCKs") and
    Soundex-encodes the name attributes ("one of the attributes is name,
    encoded by Soundex before blocking").
    """
    if not rcks:
        raise ValueError("need at least one RCK")
    encode_set = set(encode_attributes)
    chosen = leading_attribute_pairs(rcks, attribute_count)
    if len(chosen) < attribute_count:
        raise ValueError(
            f"the given RCKs only provide {len(chosen)} distinct attribute "
            f"pairs, need {attribute_count}"
        )
    left_attrs = [left_attr for left_attr, _ in chosen]
    right_attrs = [right_attr for _, right_attr in chosen]
    left_encoders = [
        soundex if attribute in encode_set else None for attribute in left_attrs
    ]
    right_encoders = [
        soundex if attribute in encode_set else None for attribute in right_attrs
    ]
    return (
        attribute_key(left_attrs, left_encoders),
        attribute_key(right_attrs, right_encoders),
    )

"""Blocking: partition relations by a derived key; compare within blocks.

"To handle large relations it is common to partition the relations into
blocks based on blocking keys (discriminating attributes), such that only
tuples in the same block are compared" (Section 1).  Exp-4 evaluates
blocking keys built from (part of) RCK attributes — three attributes from
the top two RCKs, with the name attribute Soundex-encoded — against
manually chosen keys.

A blocking key here is a pair of functions (one per relation) deriving a
hashable key from a row; :func:`block_pairs` returns the candidate pairs
(cross products within equal-key buckets).  Multi-pass blocking unions the
candidates of several keys.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.rck import RelativeKey
from repro.metrics.soundex import soundex
from repro.relations.index import HashIndex
from repro.relations.relation import Relation, Row

from .evaluate import Pair

#: Derives a blocking key from a row.
RowKey = Callable[[Row], object]

#: Per-attribute value encoders applied before keying.
Encoder = Callable[[str], str]


def _encode(value: object, encoder: Optional[Encoder]) -> str:
    text = "" if value is None else str(value)
    return encoder(text) if encoder is not None else text


def attribute_key(
    attributes: Sequence[str],
    encoders: Optional[Sequence[Optional[Encoder]]] = None,
) -> RowKey:
    """A key function concatenating (encoded) attribute values.

    ``encoders[i]`` (when given) transforms the i-th attribute's value —
    e.g. :func:`~repro.metrics.soundex.soundex` for names.

    >>> key = attribute_key(["LN"], [soundex])
    >>> # rows with phonetically equal last names collide
    """
    if encoders is not None and len(encoders) != len(attributes):
        raise ValueError("encoders must align with attributes")

    def derive(row: Row) -> Tuple[str, ...]:
        return tuple(
            _encode(row[attribute], encoders[index] if encoders else None)
            for index, attribute in enumerate(attributes)
        )

    return derive


def block_pairs(
    left: Relation,
    right: Relation,
    left_key: RowKey,
    right_key: RowKey,
) -> List[Pair]:
    """Candidate pairs: all cross-relation pairs sharing a block key."""
    left_index = HashIndex(left, left_key)
    candidates: List[Pair] = []
    for right_row in right:
        for left_tid in left_index.lookup(right_key(right_row)):
            candidates.append((left_tid, right_row.tid))
    return candidates


def multi_pass_block_pairs(
    left: Relation,
    right: Relation,
    keys: Sequence[Tuple[RowKey, RowKey]],
) -> List[Pair]:
    """Union of candidates over several blocking keys (multi-pass blocking).

    "This process is often repeated multiple times to improve match
    quality, each using a different blocking key."
    """
    seen: Set[Pair] = set()
    for left_key, right_key in keys:
        seen.update(block_pairs(left, right, left_key, right_key))
    return sorted(seen)


def rck_blocking_keys(
    rcks: Sequence[RelativeKey],
    attribute_count: int = 3,
    encode_attributes: Iterable[str] = ("FN", "LN"),
) -> Tuple[RowKey, RowKey]:
    """Blocking keys from (part of) RCK attributes, per Exp-4.

    Takes the first ``attribute_count`` distinct attribute pairs from the
    given RCKs (the paper uses "three attributes in top two RCKs") and
    Soundex-encodes the name attributes ("one of the attributes is name,
    encoded by Soundex before blocking").
    """
    if not rcks:
        raise ValueError("need at least one RCK")
    encode_set = set(encode_attributes)
    chosen: List[Tuple[str, str]] = []
    for key in rcks:
        for left_attr, right_attr in key.attribute_pairs():
            if (left_attr, right_attr) not in chosen:
                chosen.append((left_attr, right_attr))
            if len(chosen) == attribute_count:
                break
        if len(chosen) == attribute_count:
            break
    if len(chosen) < attribute_count:
        raise ValueError(
            f"the given RCKs only provide {len(chosen)} distinct attribute "
            f"pairs, need {attribute_count}"
        )
    left_attrs = [left_attr for left_attr, _ in chosen]
    right_attrs = [right_attr for _, right_attr in chosen]
    left_encoders = [
        soundex if attribute in encode_set else None for attribute in left_attrs
    ]
    right_encoders = [
        soundex if attribute in encode_set else None for attribute in right_attrs
    ]
    return (
        attribute_key(left_attrs, left_encoders),
        attribute_key(right_attrs, right_encoders),
    )

"""Comparison vectors: from RCKs (or raw attribute pairs) to features.

A *comparison vector* is the per-attribute-pair agreement pattern computed
for a candidate tuple pair — the input of the Fellegi–Sunter model and the
unit of work of rule-based matchers.  RCKs are precisely specifications of
comparison vectors: they say which attribute pairs to compare and with
which operator (Section 1, "Applications — Matching").

:class:`ComparisonSpec` holds an ordered list of features
``(left_attr, right_attr, operator_name)``; :meth:`ComparisonSpec.compare`
evaluates them on a pair of rows.  :func:`union_of_rcks` builds the spec
the paper uses for FSrck/SNrck: "the union of top five RCKs derived by our
algorithms".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.rck import RelativeKey
from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Row

#: One feature: (left attribute, right attribute, operator name).
Feature = Tuple[str, str, str]


@dataclass(frozen=True)
class ComparisonSpec:
    """An ordered, executable list of comparison features.

    Operator names are resolved to predicates **once, at construction**
    (through the bound ``registry``) — evaluating a spec never goes back
    to the registry, which ``tests/matching/test_comparison.py`` pins
    with a lookup-count regression test.  Passing a *different* registry
    to :meth:`compare`/:meth:`agrees_on_all` still works and resolves
    through that registry instead; an operator the bound registry does
    not know defers its resolution to call time (so specs naming
    custom-registry metrics still construct, exactly as before).

    >>> spec = ComparisonSpec((("FN", "FN", "dl(0.8)"), ("LN", "LN", "=")))
    >>> len(spec)
    2
    """

    features: Tuple[Feature, ...]
    registry: MetricRegistry = field(
        default=DEFAULT_REGISTRY, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.features:
            raise ValueError("a comparison spec needs at least one feature")
        if len(set(self.features)) != len(self.features):
            raise ValueError("duplicate features in comparison spec")
        resolved = []
        for _, _, operator_name in self.features:
            try:
                resolved.append(self.registry.resolve(operator_name))
            except (KeyError, ValueError):
                # Unknown to the bound registry; a call-time registry may
                # still know it — resolve (or fail) lazily then.
                resolved.append(None)
        object.__setattr__(self, "_predicates", tuple(resolved))

    def __len__(self) -> int:
        return len(self.features)

    def _bound_predicates(self, registry: Optional[MetricRegistry]):
        if registry is None or registry is self.registry:
            if None in self._predicates:
                return tuple(
                    self.registry.resolve(operator_name)
                    for _, _, operator_name in self.features
                )
            return self._predicates
        return tuple(
            registry.resolve(operator_name)
            for _, _, operator_name in self.features
        )

    def compare(
        self,
        left_row: Row,
        right_row: Row,
        registry: Optional[MetricRegistry] = None,
    ) -> Tuple[bool, ...]:
        """The agreement vector of the two rows under this spec."""
        return tuple(
            bool(predicate(left_row[left_attr], right_row[right_attr]))
            for (left_attr, right_attr, _), predicate in zip(
                self.features, self._bound_predicates(registry)
            )
        )

    def agrees_on_all(
        self,
        left_row: Row,
        right_row: Row,
        registry: Optional[MetricRegistry] = None,
    ) -> bool:
        """True when every feature agrees (short-circuiting).

        This is exactly "the pair matches the LHS of the key".
        """
        for (left_attr, right_attr, _), predicate in zip(
            self.features, self._bound_predicates(registry)
        ):
            if not predicate(left_row[left_attr], right_row[right_attr]):
                return False
        return True

    def attribute_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The (left, right) attribute pairs, operators dropped."""
        return tuple(
            (left_attr, right_attr) for left_attr, right_attr, _ in self.features
        )


def spec_from_rck(key: RelativeKey) -> ComparisonSpec:
    """The comparison spec of a single relative key."""
    return ComparisonSpec(
        tuple(
            (atom.left, atom.right, atom.operator.name) for atom in key.atoms
        )
    )


def union_of_rcks(keys: Sequence[RelativeKey]) -> ComparisonSpec:
    """The union spec of several RCKs (the paper's "union of top five").

    A comparison vector has one feature per *attribute pair*: when the same
    pair occurs in several keys with different operators (e.g. ``FN = FN``
    in one key and ``FN ≈dl FN`` in another), the similarity operator is
    kept — it is the more error-tolerant test, and the Fellegi–Sunter
    model's independence assumption forbids near-duplicate features.
    First-key-first order is preserved.
    """
    if not keys:
        raise ValueError("need at least one RCK")
    chosen: dict = {}
    order: List[Tuple[str, str]] = []
    for key in keys:
        for atom in key.atoms:
            pair = (atom.left, atom.right)
            operator = atom.operator.name
            if pair not in chosen:
                chosen[pair] = operator
                order.append(pair)
            elif chosen[pair] == "=" and operator != "=":
                chosen[pair] = operator
    return ComparisonSpec(
        tuple((left, right, chosen[(left, right)]) for left, right in order)
    )


def equality_spec(attribute_pairs: Iterable[Tuple[str, str]]) -> ComparisonSpec:
    """A spec comparing the given pairs with plain equality.

    The naive configuration a matcher uses without RCK guidance — the
    baseline FS vector in the experiments.
    """
    return ComparisonSpec(
        tuple((left, right, "=") for left, right in attribute_pairs)
    )

"""End-to-end MD-based matching pipelines.

The paper positions MDs/RCKs as a compile-time facility that existing
matchers plug in.  This module packages the full flow for downstream users:

1. compile the rules once into an :class:`~repro.plan.compile.EnforcementPlan`
   (deduced RCKs, deduplicated predicates, resolved metrics, a blocking
   backend — see :mod:`repro.plan`);
2. generate candidate pairs through the plan's blocking backend;
3. decide matches either

   * *directly*: a pair matches when some RCK's comparisons all agree
     (:class:`RCKMatcher`), or
   * *by enforcement*: chase the instances with the MDs and read matches
     off the identified target cells (:class:`EnforcementMatcher`) — the
     dynamic semantics in action, able to match tuples that no single rule
     matches directly (the paper's t1/t4 example, where ϕ2 first repairs
     the address and ϕ1 then fires).

Both matchers are *batch*: each run re-blocks, re-compares and re-enforces
the full instance from scratch.  For online workloads — records arriving
one at a time or in micro-batches against a warm instance — use
:mod:`repro.engine`, which executes the *same* compiled plan over per-record
deltas; driving both matchers through one shared plan is exactly how the
batch/streaming equivalence suite pins their agreement
(``tests/plan/test_batch_stream_equivalence.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.md import MatchingDependency
from repro.core.rck import RelativeKey
from repro.core.schema import ComparableLists
from repro.core.semantics import InstancePair
from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.plan.compile import EnforcementPlan, compile_plan
from repro.relations.relation import Relation

from .evaluate import Pair


def _warn_deprecated(old: str, replacement: str) -> None:
    """One DeprecationWarning, attributed to the external caller.

    ``stacklevel=3`` skips this helper *and* the public entry point that
    called it, so the warning points at user code — and the test suite's
    "no DeprecationWarning from within repro" filter stays meaningful.
    """
    warnings.warn(
        f"{old} is deprecated and will be removed in a future release; "
        f"{replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class PipelineResult:
    """Matches plus the candidate set they were drawn from."""

    matches: Tuple[Pair, ...]
    candidates: Tuple[Pair, ...]


class RCKMatcher:
    """Direct rule matching with deduced RCKs, executed via a compiled plan.

    >>> # matcher = RCKMatcher.from_mds(sigma, target, top_k=5)
    >>> # result = matcher.match(credit, billing)
    """

    def __init__(
        self,
        rcks: Sequence[RelativeKey] = (),
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
        plan: Optional[EnforcementPlan] = None,
    ) -> None:
        _warn_deprecated(
            "RCKMatcher",
            "build a repro.api.Workspace (execution mode 'direct') and "
            "call Workspace.match",
        )
        self._init(rcks=rcks, window=window, registry=registry, plan=plan)

    def _init(
        self,
        rcks: Sequence[RelativeKey] = (),
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
        plan: Optional[EnforcementPlan] = None,
    ) -> None:
        if plan is None:
            if not rcks:
                raise ValueError("need at least one RCK")
            plan = compile_plan(
                rcks=rcks, registry=registry, window=window
            )
        elif not plan.keys:
            raise ValueError("the given plan was compiled without RCKs")
        self.plan = plan
        self.rcks = list(plan.rcks)
        self.window = window
        self.registry = plan.registry

    @classmethod
    def from_mds(
        cls,
        sigma: Sequence[MatchingDependency],
        target: ComparableLists,
        top_k: int = 5,
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> "RCKMatcher":
        """Deduce ``top_k`` RCKs from Σ and compile the matcher's plan."""
        _warn_deprecated(
            "RCKMatcher.from_mds",
            "build a repro.api.Workspace (execution mode 'direct') and "
            "call Workspace.match",
        )
        plan = compile_plan(
            sigma, target, top_k=top_k, window=window, registry=registry
        )
        matcher = cls.__new__(cls)
        matcher._init(plan=plan, window=window)
        return matcher

    def candidate_pairs(
        self, left: Relation, right: Relation
    ) -> List[Pair]:
        """Candidates from the plan's blocking backend."""
        return self.plan.candidates(left, right)

    def match(
        self,
        left: Relation,
        right: Relation,
        candidates: Optional[Sequence[Pair]] = None,
    ) -> PipelineResult:
        """Match: any RCK whose comparisons all agree declares a match."""
        if candidates is None:
            candidates = self.candidate_pairs(left, right)
        plan = self.plan
        plan.stats.pairs_compared += len(candidates)
        matches = [
            (left_tid, right_tid)
            for left_tid, right_tid in candidates
            if plan.matches_any_key(left[left_tid], right[right_tid])
        ]
        return PipelineResult(tuple(matches), tuple(candidates))


class EnforcementMatcher:
    """Matching by chasing the instances with the MDs themselves.

    Enforcement can identify pairs that no direct rule matches: updates by
    one MD enable the LHS of another (dynamic semantics).  More expensive
    than :class:`RCKMatcher` — candidate generation should narrow the pair
    space first.  The chase runs through the compiled plan's kernel
    (:meth:`~repro.plan.compile.EnforcementPlan.enforce`), sharing
    predicate dedup and the similarity cache across runs.
    """

    def __init__(
        self,
        sigma: Sequence[MatchingDependency] = (),
        target: Optional[ComparableLists] = None,
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
        plan: Optional[EnforcementPlan] = None,
        workers: int = 1,
    ) -> None:
        _warn_deprecated(
            "EnforcementMatcher",
            "build a repro.api.Workspace (execution mode 'enforce') and "
            "call Workspace.match or Workspace.enforce",
        )
        if plan is None:
            if not sigma:
                raise ValueError("need at least one MD")
            if target is None:
                raise ValueError("need a match target")
            # RCKs drive candidate generation even for the enforcement
            # matcher; compile_plan deduces them from Σ.
            plan = compile_plan(
                sigma, target, top_k=5, window=window, registry=registry
            )
        elif not plan.sigma:
            raise ValueError("the given plan was compiled without MDs")
        elif plan.target is None:
            raise ValueError("the given plan was compiled without a target")
        self.plan = plan
        self.sigma = list(plan.sigma)
        self.target = plan.target
        self.window = window
        self.registry = plan.registry
        #: Chase worker processes; > 1 shards the candidate pairs through
        #: repro.plan.parallel (the plan is re-derived in workers from a
        #: spec document, so plans with custom registries stay serial).
        self.workers = workers

    def candidate_pairs(
        self, left: Relation, right: Relation
    ) -> List[Pair]:
        """Candidates from the plan's blocking backend."""
        return self.plan.candidates(left, right)

    def match(
        self,
        left: Relation,
        right: Relation,
        candidates: Optional[Sequence[Pair]] = None,
    ) -> PipelineResult:
        """Chase, then read off pairs whose target attributes identified."""
        if candidates is None:
            candidates = self.candidate_pairs(left, right)
        instance = InstancePair(self.target.pair, left, right)
        result = self.plan.enforce(
            instance, candidate_pairs=list(candidates), workers=self.workers
        )
        target_pairs = self.target.attribute_pairs()
        matches = [
            (left_tid, right_tid)
            for left_tid, right_tid in candidates
            if result.identified(left_tid, right_tid, target_pairs)
        ]
        return PipelineResult(tuple(matches), tuple(candidates))

"""End-to-end MD-based matching pipelines.

The paper positions MDs/RCKs as a compile-time facility that existing
matchers plug in.  This module packages the full flow for downstream users:

1. deduce RCKs from domain MDs (``findRCKs``);
2. generate candidate pairs by windowing or blocking on RCK attributes;
3. decide matches either

   * *directly*: a pair matches when some RCK's comparisons all agree
     (:class:`RCKMatcher`), or
   * *by enforcement*: chase the instances with the MDs and read matches
     off the identified target cells (:class:`EnforcementMatcher`) — the
     dynamic semantics in action, able to match tuples that no single rule
     matches directly (the paper's t1/t4 example, where ϕ2 first repairs
     the address and ϕ1 then fires).

Both matchers are *batch*: each run re-blocks, re-compares and re-enforces
the full instance from scratch.  For online workloads — records arriving
one at a time or in micro-batches against a warm instance — use
:mod:`repro.engine`, which keeps per-RCK inverted indexes and identity
clusters incrementally and only ever evaluates the delta, while reaching
the same clusters as :class:`EnforcementMatcher` on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.findrcks import find_rcks
from repro.core.md import MatchingDependency
from repro.core.rck import RelativeKey
from repro.core.schema import ComparableLists
from repro.core.semantics import InstancePair, enforce
from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Relation

from .evaluate import Pair
from .rules import RuleSet, rules_from_rcks
from .windowing import rck_sort_keys, window_pairs


@dataclass(frozen=True)
class PipelineResult:
    """Matches plus the candidate set they were drawn from."""

    matches: Tuple[Pair, ...]
    candidates: Tuple[Pair, ...]


class RCKMatcher:
    """Direct rule matching with deduced RCKs.

    >>> # matcher = RCKMatcher.from_mds(sigma, target, top_k=5)
    >>> # result = matcher.match(credit, billing)
    """

    def __init__(
        self,
        rcks: Sequence[RelativeKey],
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        if not rcks:
            raise ValueError("need at least one RCK")
        self.rcks = list(rcks)
        self.rules: RuleSet = rules_from_rcks(self.rcks)
        self.window = window
        self.registry = registry

    @classmethod
    def from_mds(
        cls,
        sigma: Sequence[MatchingDependency],
        target: ComparableLists,
        top_k: int = 5,
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> "RCKMatcher":
        """Deduce ``top_k`` RCKs from Σ and build the matcher."""
        rcks = find_rcks(sigma, target, m=top_k)
        return cls(rcks, window=window, registry=registry)

    def candidate_pairs(
        self, left: Relation, right: Relation
    ) -> List[Pair]:
        """Windowing candidates sorted on RCK attributes."""
        left_key, right_key = rck_sort_keys(self.rcks)
        return window_pairs(left, right, left_key, right_key, self.window)

    def match(
        self,
        left: Relation,
        right: Relation,
        candidates: Optional[Sequence[Pair]] = None,
    ) -> PipelineResult:
        """Match: any RCK whose comparisons all agree declares a match."""
        if candidates is None:
            candidates = self.candidate_pairs(left, right)
        matches = [
            (left_tid, right_tid)
            for left_tid, right_tid in candidates
            if self.rules.matches(left[left_tid], right[right_tid], self.registry)
        ]
        return PipelineResult(tuple(matches), tuple(candidates))


class EnforcementMatcher:
    """Matching by chasing the instances with the MDs themselves.

    Enforcement can identify pairs that no direct rule matches: updates by
    one MD enable the LHS of another (dynamic semantics).  More expensive
    than :class:`RCKMatcher` — candidate generation should narrow the pair
    space first.
    """

    def __init__(
        self,
        sigma: Sequence[MatchingDependency],
        target: ComparableLists,
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        if not sigma:
            raise ValueError("need at least one MD")
        self.sigma = list(sigma)
        self.target = target
        self.window = window
        self.registry = registry
        # RCKs drive candidate generation even for the enforcement matcher.
        self._rcks = find_rcks(self.sigma, target, m=5)

    def candidate_pairs(
        self, left: Relation, right: Relation
    ) -> List[Pair]:
        """Windowing candidates sorted on deduced-RCK attributes."""
        left_key, right_key = rck_sort_keys(self._rcks)
        return window_pairs(left, right, left_key, right_key, self.window)

    def match(
        self,
        left: Relation,
        right: Relation,
        candidates: Optional[Sequence[Pair]] = None,
    ) -> PipelineResult:
        """Chase, then read off pairs whose target attributes identified."""
        if candidates is None:
            candidates = self.candidate_pairs(left, right)
        instance = InstancePair(self.target.pair, left, right)
        result = enforce(
            instance,
            self.sigma,
            registry=self.registry,
            candidate_pairs=list(candidates),
        )
        target_pairs = self.target.attribute_pairs()
        matches = [
            (left_tid, right_tid)
            for left_tid, right_tid in candidates
            if result.identified(left_tid, right_tid, target_pairs)
        ]
        return PipelineResult(tuple(matches), tuple(candidates))

"""The Sorted Neighborhood method (merge/purge, Exp-3).

[20]'s rule-based matcher: sort by a key, slide a fixed window, apply the
equational-theory rules to every cross-relation pair inside the window.
The paper's Exp-3 compares SN with the 25 hand rules against SNrck with
rules derived from the top five RCKs, both over the same windowing keys
("the same set of windowing keys were used in these experiments to make
the evaluation fair").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Relation

from .blocking import RowKey
from .evaluate import Pair
from .rules import RuleSet
from .windowing import multi_pass_window_pairs, window_pairs


@dataclass(frozen=True)
class SNResult:
    """Output of a Sorted Neighborhood run."""

    matches: Tuple[Pair, ...]
    candidates_examined: int
    comparisons_made: int

    @property
    def match_count(self) -> int:
        """Number of pairs declared matches."""
        return len(self.matches)


class SortedNeighborhood:
    """A Sorted Neighborhood matcher bound to a rule set.

    Parameters
    ----------
    rules:
        The equational theory deciding matches inside windows.
    window:
        The sliding window size (the paper fixes 10).
    registry:
        Metric registry resolving rule operators.
    """

    def __init__(
        self,
        rules: RuleSet,
        window: int = 10,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.rules = rules
        self.window = window
        self.registry = registry

    def run(
        self,
        left: Relation,
        right: Relation,
        left_key: RowKey,
        right_key: RowKey,
        extra_keys: Optional[Sequence[Tuple[RowKey, RowKey]]] = None,
    ) -> SNResult:
        """One (or multi-pass) SN run; returns matches and work counters.

        ``extra_keys`` adds further sort passes whose window candidates are
        unioned with the first pass before rule evaluation.
        """
        if extra_keys:
            keys = [(left_key, right_key)] + list(extra_keys)
            candidates = multi_pass_window_pairs(
                left, right, keys, self.window
            )
        else:
            candidates = window_pairs(
                left, right, left_key, right_key, self.window
            )
        return self.run_on_candidates(left, right, candidates)

    def run_on_candidates(
        self,
        left: Relation,
        right: Relation,
        candidates: Sequence[Pair],
    ) -> SNResult:
        """Apply the rules to an externally supplied candidate set."""
        matches: List[Pair] = []
        comparisons = 0
        for left_tid, right_tid in candidates:
            comparisons += 1
            if self.rules.matches(
                left[left_tid], right[right_tid], self.registry
            ):
                matches.append((left_tid, right_tid))
        return SNResult(
            matches=tuple(matches),
            candidates_examined=len(candidates),
            comparisons_made=comparisons,
        )

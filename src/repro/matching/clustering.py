"""Entity consolidation: from pairwise matches to entity clusters.

Matchers emit pairwise decisions; downstream consumers (merge/purge, MDM)
need *entities*.  This module groups matched pairs into clusters by
transitive closure (union-find over the bipartite match graph) and scores
cluster quality against the generator truth:

* *pairwise* precision/recall over the pairs implied by the clustering
  (the standard cluster-level metric for ER);
* cluster counts and size distribution, and the number of clusters mixing
  several true entities (purity violations).

Transitive closure can over-merge when a false positive bridges two
entities — exactly the effect the cluster metrics surface; the paper's
RCK-based rules keep bridges rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .evaluate import MatchQuality, Pair

#: A node of the match graph: ("L", tid) or ("R", tid).
Node = Tuple[str, int]


@dataclass(frozen=True)
class Cluster:
    """One consolidated entity: the left and right tuple ids merged."""

    left_tids: FrozenSet[int]
    right_tids: FrozenSet[int]

    @property
    def size(self) -> int:
        """Total number of tuples in the cluster."""
        return len(self.left_tids) + len(self.right_tids)

    def implied_pairs(self) -> Set[Pair]:
        """All cross-relation pairs the cluster asserts to match."""
        return {
            (left_tid, right_tid)
            for left_tid in self.left_tids
            for right_tid in self.right_tids
        }


def cluster_matches(matches: Iterable[Pair]) -> List[Cluster]:
    """Transitive closure of pairwise matches into clusters.

    Singleton tuples (never matched) do not appear — callers that need
    them can add one cluster per unmatched tid.

    >>> clusters = cluster_matches([(0, 0), (0, 1), (2, 3)])
    >>> sorted(cluster.size for cluster in clusters)
    [2, 3]
    """
    parent: Dict[Node, Node] = {}

    def find(node: Node) -> Node:
        if node not in parent:
            parent[node] = node
            return node
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(a: Node, b: Node) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for left_tid, right_tid in matches:
        union(("L", left_tid), ("R", right_tid))

    members: Dict[Node, Tuple[Set[int], Set[int]]] = {}
    for node in list(parent):
        root = find(node)
        lefts, rights = members.setdefault(root, (set(), set()))
        side, tid = node
        (lefts if side == "L" else rights).add(tid)

    return [
        Cluster(frozenset(lefts), frozenset(rights))
        for lefts, rights in members.values()
    ]


@dataclass(frozen=True)
class ClusterQuality:
    """Cluster-level evaluation results."""

    pairwise: MatchQuality
    cluster_count: int
    largest_cluster: int
    impure_clusters: int

    def __str__(self) -> str:
        return (
            f"{self.pairwise} clusters={self.cluster_count} "
            f"largest={self.largest_cluster} impure={self.impure_clusters}"
        )


def evaluate_clusters(
    clusters: Iterable[Cluster],
    truth: FrozenSet[Pair],
    left_entity: Optional[Dict[int, int]] = None,
    right_entity: Optional[Dict[int, int]] = None,
) -> ClusterQuality:
    """Score a clustering against the pairwise truth.

    ``left_entity``/``right_entity`` (tid → entity id, as produced by the
    dataset generator) enable the purity count; without them impure
    clusters are reported as 0.
    """
    clusters = list(clusters)
    implied: Set[Pair] = set()
    largest = 0
    impure = 0
    for cluster in clusters:
        implied |= cluster.implied_pairs()
        largest = max(largest, cluster.size)
        if left_entity is not None and right_entity is not None:
            entities = {left_entity[tid] for tid in cluster.left_tids} | {
                right_entity[tid] for tid in cluster.right_tids
            }
            if len(entities) > 1:
                impure += 1
    true_positives = len(implied & truth)
    pairwise = MatchQuality(
        true_positives=true_positives,
        false_positives=len(implied) - true_positives,
        false_negatives=len(truth) - true_positives,
    )
    return ClusterQuality(
        pairwise=pairwise,
        cluster_count=len(clusters),
        largest_cluster=largest,
        impure_clusters=impure,
    )

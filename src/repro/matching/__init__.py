"""Record-matching methods, candidate generation, and evaluation."""

from .blocking import (
    attribute_key,
    block_pairs,
    multi_pass_block_pairs,
    rck_blocking_keys,
)
from .clustering import Cluster, ClusterQuality, cluster_matches, evaluate_clusters
from .comparison import (
    ComparisonSpec,
    equality_spec,
    spec_from_rck,
    union_of_rcks,
)
from .em import EMEstimate, fit_em
from .evaluate import (
    MatchQuality,
    Pair,
    ReductionQuality,
    evaluate_matches,
    evaluate_reduction,
)
from .fellegi_sunter import FellegiSunter
from .pipeline import EnforcementMatcher, PipelineResult, RCKMatcher
from .rules import MatchRule, RuleSet, default_person_rules, rules_from_rcks
from .sorted_neighborhood import SNResult, SortedNeighborhood
from .windowing import (
    multi_pass_window_pairs,
    rck_sort_keys,
    window_pairs,
)

__all__ = [
    "Cluster",
    "ClusterQuality",
    "ComparisonSpec",
    "EMEstimate",
    "EnforcementMatcher",
    "FellegiSunter",
    "MatchQuality",
    "MatchRule",
    "Pair",
    "PipelineResult",
    "RCKMatcher",
    "ReductionQuality",
    "RuleSet",
    "SNResult",
    "SortedNeighborhood",
    "attribute_key",
    "block_pairs",
    "cluster_matches",
    "evaluate_clusters",
    "default_person_rules",
    "equality_spec",
    "evaluate_matches",
    "evaluate_reduction",
    "fit_em",
    "multi_pass_block_pairs",
    "multi_pass_window_pairs",
    "rck_blocking_keys",
    "rck_sort_keys",
    "rules_from_rcks",
    "spec_from_rck",
    "union_of_rcks",
    "window_pairs",
]

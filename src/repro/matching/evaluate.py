"""Match-quality and candidate-space metrics (Section 6.2).

* *precision* — true matches correctly found / all matches returned;
* *recall* — true matches correctly found / all true matches in the data;
* *pairs completeness* ``PC = sM / nM`` — the fraction of true matched
  pairs that survive blocking/windowing (``sM``: matched pairs *with* the
  reduction technique; ``nM``: matched pairs without it, i.e. the truth);
* *reduction ratio* ``RR = 1 − (sM + sU)/(nM + nU)`` — the saving in
  comparison space.

All metrics are computed against the generator-held truth, as the paper
does ("precision, recall, PC and RR can be accurately computed ... by
checking the truth held by the generator").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

#: A candidate or predicted pair: (left tuple id, right tuple id).
Pair = Tuple[int, int]


@dataclass(frozen=True)
class MatchQuality:
    """Precision/recall/F1 of a predicted match set against the truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """True matches found / all matches returned (1.0 when none returned)."""
        returned = self.true_positives + self.false_positives
        return self.true_positives / returned if returned else 1.0

    @property
    def recall(self) -> float:
        """True matches found / all true matches (1.0 when no true matches)."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f}"
        )


def evaluate_matches(
    predicted: Iterable[Pair], truth: FrozenSet[Pair]
) -> MatchQuality:
    """Score a predicted match set against the ground truth.

    >>> quality = evaluate_matches([(0, 0), (0, 1)], frozenset({(0, 0), (1, 2)}))
    >>> quality.true_positives, quality.false_positives, quality.false_negatives
    (1, 1, 1)
    """
    predicted_set: Set[Pair] = set(predicted)
    true_positives = len(predicted_set & truth)
    return MatchQuality(
        true_positives=true_positives,
        false_positives=len(predicted_set) - true_positives,
        false_negatives=len(truth) - true_positives,
    )


@dataclass(frozen=True)
class ReductionQuality:
    """Pairs completeness and reduction ratio of a candidate pair set."""

    pairs_completeness: float
    reduction_ratio: float
    candidate_count: int
    total_pairs: int

    def __str__(self) -> str:
        return (
            f"PC={self.pairs_completeness:.3f} RR={self.reduction_ratio:.3f} "
            f"({self.candidate_count}/{self.total_pairs} pairs)"
        )


def evaluate_reduction(
    candidates: Iterable[Pair],
    truth: FrozenSet[Pair],
    total_pairs: int,
) -> ReductionQuality:
    """PC and RR of a blocking/windowing candidate set.

    ``total_pairs`` is the size of the unreduced comparison space
    (|I1| × |I2|).

    >>> rq = evaluate_reduction([(0, 0), (1, 1)], frozenset({(0, 0)}), 100)
    >>> rq.pairs_completeness
    1.0
    >>> rq.reduction_ratio
    0.98
    """
    candidate_set: Set[Pair] = set(candidates)
    if total_pairs <= 0:
        raise ValueError(f"total_pairs must be positive, got {total_pairs}")
    surviving_matches = len(candidate_set & truth)
    pairs_completeness = (
        surviving_matches / len(truth) if truth else 1.0
    )
    reduction_ratio = 1.0 - len(candidate_set) / total_pairs
    return ReductionQuality(
        pairs_completeness=pairs_completeness,
        reduction_ratio=reduction_ratio,
        candidate_count=len(candidate_set),
        total_pairs=total_pairs,
    )

"""The Fellegi–Sunter record-matching method (Exp-2).

The statistical matcher of [17]: each candidate pair gets a comparison
vector; the pair's score is the log likelihood ratio
``Σ_i log2(P(γ_i | match) / P(γ_i | non-match))`` and pairs scoring above a
threshold are declared matches.  Parameters come from unsupervised EM
(:mod:`repro.matching.em`), "a powerful tool to estimate parameters such as
weights and threshold [21]".

Two configurations mirror the paper's Exp-2:

* **FS** — the baseline: the comparison vector is the naive equality
  comparison of the target attribute pairs, with EM choosing the weights
  (and thereby which attributes effectively matter);
* **FSrck** — the vector is the union of the top-k RCKs deduced by
  ``findRCKs``: fewer attribute pairs, each compared with the operator the
  rules prescribe.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Relation

from .comparison import ComparisonSpec
from .em import EMEstimate, fit_em
from .evaluate import Pair


@dataclass
class FellegiSunter:
    """A Fellegi–Sunter matcher over a fixed comparison spec.

    Typical use::

        matcher = FellegiSunter(spec)
        matcher.fit(left, right, candidates, sample_size=30_000, seed=0)
        matches = matcher.classify(left, right, candidates)

    The decision threshold defaults to the prior-odds point: declare a
    match when the posterior match probability exceeds ½, i.e. when the
    score exceeds ``log2((1 − p) / p)``.  An explicit ``threshold``
    overrides it.
    """

    spec: ComparisonSpec
    registry: MetricRegistry = DEFAULT_REGISTRY
    estimate: Optional[EMEstimate] = None
    threshold: Optional[float] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        left: Relation,
        right: Relation,
        candidates: Sequence[Pair],
        sample_size: int = 30_000,
        seed: int = 0,
        initial_p: float = 0.1,
    ) -> EMEstimate:
        """Estimate (m, u, p) by EM on a sample of candidate pairs.

        The paper samples "at most 30k tuples"; we sample candidate pairs,
        which is the unit EM consumes.
        """
        if not candidates:
            raise ValueError("cannot fit on an empty candidate set")
        rng = random.Random(seed)
        if len(candidates) > sample_size:
            sample = rng.sample(list(candidates), sample_size)
        else:
            sample = list(candidates)
        vectors = [
            self.spec.compare(left[l_tid], right[r_tid], self.registry)
            for l_tid, r_tid in sample
        ]
        self.estimate = fit_em(vectors, initial_p=initial_p)
        return self.estimate

    # ------------------------------------------------------------------
    # Scoring / classification
    # ------------------------------------------------------------------

    def _require_estimate(self) -> EMEstimate:
        if self.estimate is None:
            raise RuntimeError("matcher is not fitted; call fit() first")
        return self.estimate

    def decision_threshold(self) -> float:
        """The score above which a pair is declared a match."""
        if self.threshold is not None:
            return self.threshold
        estimate = self._require_estimate()
        # Posterior > 1/2  ⇔  score > log2((1-p)/p).
        return math.log2((1.0 - estimate.p) / estimate.p)

    def score(self, left_row, right_row) -> float:
        """Log2 likelihood-ratio score of one pair."""
        estimate = self._require_estimate()
        vector = self.spec.compare(left_row, right_row, self.registry)
        return estimate.score(vector)

    def classify(
        self,
        left: Relation,
        right: Relation,
        candidates: Sequence[Pair],
    ) -> List[Pair]:
        """All candidate pairs scoring above the decision threshold."""
        estimate = self._require_estimate()
        cutoff = self.decision_threshold()
        matches: List[Pair] = []
        for left_tid, right_tid in candidates:
            vector = self.spec.compare(
                left[left_tid], right[right_tid], self.registry
            )
            if estimate.score(vector) > cutoff:
                matches.append((left_tid, right_tid))
        return matches

    def feature_weights(self) -> List[Tuple[str, float, float]]:
        """Per-feature (name, agreement weight, disagreement weight).

        Useful to inspect which attributes EM considers discriminative —
        the sense in which "the vector was picked by an EM algorithm".
        """
        estimate = self._require_estimate()
        rows = []
        for index, (left_attr, right_attr, operator) in enumerate(
            self.spec.features
        ):
            rows.append(
                (
                    f"{left_attr}~{right_attr}[{operator}]",
                    estimate.agreement_weight(index),
                    estimate.disagreement_weight(index),
                )
            )
        return rows

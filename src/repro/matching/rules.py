"""Equational-theory rules for the Sorted Neighborhood method (Exp-3).

The merge/purge method of Hernández & Stolfo [20] decides matches with
hand-written rules of an *equational theory*: implications whose premises
are (similarity) comparisons of attribute values.  The paper's Exp-3 runs
SN with "the 25 rules used in [20]" as the baseline and with the union of
the top five RCKs (SNrck) as the alternative.

[20]'s exact rule set is not published as a machine-readable artefact;
:func:`default_person_rules` reconstructs a 25-rule equational theory in
its style over our extended schemas — combinations of social-security-like
ids (card number), names, addresses, phones and emails at varying
strictness, including deliberately permissive rules (the kind whose false
positives RCKs avoid).  The *shape* of the experiment only requires a
fixed, hand-written baseline; see DESIGN.md, "Substitutions".

A rule is satisfied when **all** its conditions hold; a pair matches when
**any** rule is satisfied (rules are disjuncts of the theory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.rck import RelativeKey
from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Row

from .comparison import ComparisonSpec, Feature, spec_from_rck


@dataclass(frozen=True)
class MatchRule:
    """One equational-theory rule: a named conjunction of comparisons."""

    name: str
    spec: ComparisonSpec

    def matches(
        self,
        left_row: Row,
        right_row: Row,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        """Whether the pair satisfies every condition of the rule."""
        return self.spec.agrees_on_all(left_row, right_row, registry)


class RuleSet:
    """A disjunctive set of match rules.

    >>> rules = RuleSet([MatchRule("same-email",
    ...     ComparisonSpec((("email", "email", "="),)))])
    >>> len(rules)
    1
    """

    def __init__(self, rules: Sequence[MatchRule]) -> None:
        if not rules:
            raise ValueError("a rule set needs at least one rule")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate rule names")
        self._rules: Tuple[MatchRule, ...] = tuple(rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def matches(
        self,
        left_row: Row,
        right_row: Row,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        """Whether any rule declares the pair a match."""
        return any(
            rule.matches(left_row, right_row, registry) for rule in self._rules
        )

    def first_matching_rule(
        self,
        left_row: Row,
        right_row: Row,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> str:
        """Name of the first rule that fires, or '' when none does."""
        for rule in self._rules:
            if rule.matches(left_row, right_row, registry):
                return rule.name
        return ""


def _rule(name: str, *features: Feature) -> MatchRule:
    return MatchRule(name, ComparisonSpec(tuple(features)))


def default_person_rules(dl: str = "dl(0.8)", jw: str = "jw(0.9)") -> RuleSet:
    """A 25-rule equational theory over the extended credit/billing schemas.

    Reconstructed in the style of [20]: identifier-anchored rules, full-name
    + address rules, phone/email rules, and a tail of looser rules relying
    on partial evidence.  Like typical hand-written theories, most
    comparisons are exact equality (which misses typographic variants — the
    recall cost RCK-derived rules avoid) and a few disjuncts are permissive
    (which admits household members and namesakes — the precision cost).
    """
    return RuleSet(
        [
            # --- identifier-anchored rules -----------------------------
            _rule("card-exact-name", ("c#", "c#", "="), ("FN", "FN", "="), ("LN", "LN", "=")),
            _rule("card-lastname", ("c#", "c#", "="), ("LN", "LN", "=")),
            _rule("card-address", ("c#", "c#", "="), ("street", "street", "="), ("zip", "zip", "=")),
            _rule("card-phone", ("c#", "c#", "="), ("tel", "phn", "=")),
            _rule("card-email", ("c#", "c#", "="), ("email", "email", "=")),
            # --- name + address rules ----------------------------------
            _rule("name-street-zip", ("FN", "FN", "="), ("LN", "LN", "="), ("street", "street", "="), ("zip", "zip", "=")),
            _rule("name-street-city", ("FN", "FN", "="), ("LN", "LN", "="), ("street", "street", "="), ("city", "city", "=")),
            _rule("lastname-street-exact", ("LN", "LN", "="), ("street", "street", "="), ("city", "city", "=")),
            _rule("name-city-state-zip", ("FN", "FN", jw), ("LN", "LN", "="), ("city", "city", "="), ("state", "state", "="), ("zip", "zip", "=")),
            _rule("initials-street-zip", ("FN", "FN", jw), ("LN", "LN", "="), ("street", "street", "="), ("zip", "zip", "=")),
            # --- phone rules -------------------------------------------
            _rule("phone-lastname", ("tel", "phn", "="), ("LN", "LN", "=")),
            _rule("phone-firstname", ("tel", "phn", "="), ("FN", "FN", "=")),
            _rule("phone-street", ("tel", "phn", "="), ("street", "street", "=")),
            _rule("phone-zip-gender", ("tel", "phn", "="), ("zip", "zip", "="), ("gender", "gender", "=")),
            # --- email rules -------------------------------------------
            _rule("email-lastname", ("email", "email", "="), ("LN", "LN", "=")),
            _rule("email-zip", ("email", "email", "="), ("zip", "zip", "=")),
            _rule("email-phone", ("email", "email", "="), ("tel", "phn", "=")),
            _rule("email-city", ("email", "email", "="), ("city", "city", "=")),
            # --- looser tail (the error-prone rules of a hand theory) ---
            _rule("name-zip", ("FN", "FN", "="), ("LN", "LN", "="), ("zip", "zip", "=")),
            _rule("name-city", ("FN", "FN", "="), ("LN", "LN", "="), ("city", "city", "=")),
            _rule("lastname-street", ("LN", "LN", "="), ("street", "street", "=")),
            _rule("name-gender-state", ("FN", "FN", "="), ("LN", "LN", "="), ("gender", "gender", "="), ("state", "state", "=")),
            _rule("street-zip-gender", ("street", "street", "="), ("zip", "zip", "="), ("gender", "gender", "=")),
            _rule("similar-name-county", ("FN", "FN", jw), ("LN", "LN", jw), ("county", "county", "="), ("gender", "gender", "=")),
            _rule("fuzzy-name-same-zip", ("FN", "FN", jw), ("LN", "LN", jw), ("zip", "zip", "=")),
        ]
    )


def rules_from_rcks(rcks: Sequence[RelativeKey]) -> RuleSet:
    """One rule per RCK — the SNrck configuration.

    An RCK *is* an equational-theory rule: compare exactly its attribute
    pairs with its comparison vector; all agree → match.
    """
    if not rcks:
        raise ValueError("need at least one RCK")
    return RuleSet(
        [
            MatchRule(f"rck-{index}", spec_from_rck(key))
            for index, key in enumerate(rcks)
        ]
    )

"""Windowing (sorted-neighborhood candidate generation).

"An alternative way to cope with large relations is by first sorting tuples
using a key, and then comparing the tuples using a sliding window of a
fixed size, such that only tuples within the same window are compared"
(Section 1, after [20]).

The merge-and-slide loop itself lives in the enforcement kernel
(:mod:`repro.plan.blocking`, :func:`~repro.plan.blocking.window_candidates`)
so batch pipelines and plan blocking backends share one implementation;
this module re-exports it under its historical names.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.plan.blocking import (
    RowKey,
    attribute_key,
    rck_sort_keys,
    window_candidates,
)
from repro.relations.relation import Relation

from .evaluate import Pair

__all__ = [
    "attribute_key",
    "multi_pass_window_pairs",
    "rck_sort_keys",
    "window_pairs",
]

#: One sorted-neighborhood pass — see
#: :func:`repro.plan.blocking.window_candidates`.
window_pairs = window_candidates


def multi_pass_window_pairs(
    left: Relation,
    right: Relation,
    keys: Sequence[Tuple[RowKey, RowKey]],
    window: int = 10,
) -> List[Pair]:
    """Union of window candidates over several sort keys."""
    seen: Set[Pair] = set()
    for left_key, right_key in keys:
        seen.update(window_candidates(left, right, left_key, right_key, window))
    return sorted(seen)

"""Windowing (sorted-neighborhood candidate generation).

"An alternative way to cope with large relations is by first sorting tuples
using a key, and then comparing the tuples using a sliding window of a
fixed size, such that only tuples within the same window are compared"
(Section 1, after [20]).

For cross-relation matching the two relations are merged into one sorted
sequence (each element tagged with its side); a window of size ``w`` slides
over the sequence and every cross-side pair inside the window becomes a
candidate.  Multi-pass windowing unions candidates over several sort keys.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.core.rck import RelativeKey
from repro.relations.relation import Relation

from .blocking import RowKey, attribute_key
from .evaluate import Pair

#: Sides in the merged sequence.
_LEFT = 0
_RIGHT = 1


def window_pairs(
    left: Relation,
    right: Relation,
    left_key: RowKey,
    right_key: RowKey,
    window: int = 10,
) -> List[Pair]:
    """Candidate pairs from one sorted-neighborhood pass.

    The merged sequence is sorted by the derived key (ties broken by side
    then tuple id, keeping runs deterministic); every pair of a left and a
    right tuple at distance < ``window`` in the sorted order is a
    candidate.

    >>> # window=1 yields no pairs: no two elements share a window
    """
    if window < 2:
        return []
    merged: List[Tuple[object, int, int]] = []
    for row in left:
        merged.append((left_key(row), _LEFT, row.tid))
    for row in right:
        merged.append((right_key(row), _RIGHT, row.tid))
    merged.sort(key=lambda item: (item[0], item[1], item[2]))

    candidates: Set[Pair] = set()
    for position, (_, side, tid) in enumerate(merged):
        upper = min(len(merged), position + window)
        for other_position in range(position + 1, upper):
            _, other_side, other_tid = merged[other_position]
            if side == other_side:
                continue
            if side == _LEFT:
                candidates.add((tid, other_tid))
            else:
                candidates.add((other_tid, tid))
    return sorted(candidates)


def multi_pass_window_pairs(
    left: Relation,
    right: Relation,
    keys: Sequence[Tuple[RowKey, RowKey]],
    window: int = 10,
) -> List[Pair]:
    """Union of window candidates over several sort keys."""
    seen: Set[Pair] = set()
    for left_key, right_key in keys:
        seen.update(window_pairs(left, right, left_key, right_key, window))
    return sorted(seen)


def rck_sort_keys(
    rcks: Sequence[RelativeKey],
    attribute_count: int = 3,
) -> Tuple[RowKey, RowKey]:
    """Sort keys from the first attributes of the given RCKs.

    The derived key concatenates the first ``attribute_count`` distinct
    attribute pairs of the RCK list — "(part of) RCKs suffice to serve as
    quality sorting keys" (Section 1, Windowing).
    """
    if not rcks:
        raise ValueError("need at least one RCK")
    chosen: List[Tuple[str, str]] = []
    for key in rcks:
        for pair in key.attribute_pairs():
            if pair not in chosen:
                chosen.append(pair)
            if len(chosen) == attribute_count:
                break
        if len(chosen) == attribute_count:
            break
    left_attrs = [left_attr for left_attr, _ in chosen]
    right_attrs = [right_attr for _, right_attr in chosen]
    return attribute_key(left_attrs), attribute_key(right_attrs)

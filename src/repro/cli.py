"""Command-line interface: ``python -m repro <command>``.

Drives the full pipeline from plain files, so the library is usable
without writing Python:

* ``deduce``  — read a schema spec and an MD file, print quality RCKs;
* ``check``   — decide Σ ⊨m φ for an MD given on the command line;
* ``match``   — match two CSV files with deduced RCKs, write match pairs;
* ``plan``    — the enforcement kernel (:mod:`repro.plan`):
  ``plan explain`` compiles the MD file into an ``EnforcementPlan`` and
  prints it — deduplicated predicates, metric bindings, lowered rules and
  keys, and the chosen blocking backend;
* ``demo``    — run the paper's Fig. 1 example end to end;
* ``engine``  — the incremental streaming engine (:mod:`repro.engine`):
  ``engine ingest`` streams CSV records into a persistent match store,
  ``engine stats`` reports its counters, ``engine query`` prints the
  identity cluster of a record.

The schema spec is JSON::

    {
      "left":   {"name": "credit",  "attributes": ["c#", "FN", ...]},
      "right":  {"name": "billing", "attributes": ["c#", "FN", ...]},
      "target": {"left": ["FN", "LN", ...], "right": ["FN", "LN", ...]}
    }

MD files contain one MD per line in the :mod:`repro.core.parser` syntax;
blank lines and ``#`` comments are ignored.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.closure import deduces
from repro.core.findrcks import find_rcks
from repro.core.parser import parse_md, parse_mds
from repro.core.schema import ComparableLists, RelationSchema, SchemaPair
from repro.matching.pipeline import RCKMatcher
from repro.relations.csvio import load_relation
from repro.relations.relation import Relation


class CliError(Exception):
    """A user-facing CLI failure (bad input, missing file, ...)."""


def load_schema_spec(path: Path) -> Tuple[SchemaPair, ComparableLists]:
    """Parse the JSON schema spec into a pair and target lists."""
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CliError(f"schema spec not found: {path}") from None
    except json.JSONDecodeError as error:
        raise CliError(f"invalid JSON in {path}: {error}") from None
    for key in ("left", "right", "target"):
        if key not in spec:
            raise CliError(f"schema spec is missing the {key!r} section")
    try:
        pair = SchemaPair(
            RelationSchema(spec["left"]["name"], spec["left"]["attributes"]),
            RelationSchema(spec["right"]["name"], spec["right"]["attributes"]),
        )
        target = ComparableLists(
            pair, spec["target"]["left"], spec["target"]["right"]
        )
    except (KeyError, ValueError) as error:
        raise CliError(f"invalid schema spec: {error}") from None
    return pair, target


def load_md_file(path: Path, pair: SchemaPair):
    """Parse the MD file against the schema pair."""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise CliError(f"MD file not found: {path}") from None
    try:
        return parse_mds(text, pair)
    except ValueError as error:
        raise CliError(f"cannot parse {path}: {error}") from None


def _load_csv_relation(schema, path: Path) -> Relation:
    """Load a CSV with or without the __tid__ column."""
    try:
        with path.open("r", newline="", encoding="utf-8") as handle:
            header = next(csv.reader(handle), None)
    except FileNotFoundError:
        raise CliError(f"data file not found: {path}") from None
    if header and header[0] == "__tid__":
        return load_relation(schema, path)
    # Plain CSV: columns must cover a subset of the schema.
    relation = Relation(schema)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        unknown = set(reader.fieldnames or ()) - set(schema.attribute_names)
        if unknown:
            raise CliError(
                f"{path}: columns {sorted(unknown)} not in schema "
                f"{schema.name!r}"
            )
        for record in reader:
            relation.insert(
                {key: (value if value != "" else None) for key, value in record.items()}
            )
    return relation


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_deduce(args) -> int:
    pair, target = load_schema_spec(Path(args.schema))
    sigma = load_md_file(Path(args.mds), pair)
    keys = find_rcks(sigma, target, m=args.m)
    print(f"# {len(keys)} RCK(s) relative to {target}")
    for key in keys:
        print(key)
    return 0


def cmd_check(args) -> int:
    pair, _ = load_schema_spec(Path(args.schema))
    sigma = load_md_file(Path(args.mds), pair)
    try:
        phi = parse_md(args.md, pair)
    except ValueError as error:
        raise CliError(f"cannot parse the MD to check: {error}") from None
    if args.explain:
        from repro.core.explain import explain

        explanation = explain(pair, sigma, phi)
        print(explanation.render())
        return 0 if explanation.deduced else 1
    verdict = deduces(pair, sigma, phi)
    print(f"Sigma |=m phi: {verdict}")
    return 0 if verdict else 1


def cmd_match(args) -> int:
    pair, target = load_schema_spec(Path(args.schema))
    sigma = load_md_file(Path(args.mds), pair)
    left = _load_csv_relation(pair.left, Path(args.left))
    right = _load_csv_relation(pair.right, Path(args.right))
    matcher = RCKMatcher.from_mds(
        sigma, target, top_k=args.top_k, window=args.window
    )
    result = matcher.match(left, right)
    output = Path(args.output) if args.output else None
    rows = [
        (left_tid, right_tid) for left_tid, right_tid in result.matches
    ]
    if output is None:
        for left_tid, right_tid in rows:
            print(f"{left_tid},{right_tid}")
    else:
        with output.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["left_tid", "right_tid"])
            writer.writerows(rows)
    print(
        f"# {len(rows)} match(es) from {len(result.candidates)} candidate "
        f"pair(s); keys used: {len(matcher.rcks)}",
        file=sys.stderr,
    )
    return 0


def cmd_plan_explain(args) -> int:
    from repro.plan import (
        HashBlockingBackend,
        SortedNeighborhoodBackend,
        compile_plan,
    )

    pair, target = load_schema_spec(Path(args.schema))
    sigma = load_md_file(Path(args.mds), pair)
    rcks = find_rcks(sigma, target, m=args.top_k)
    if not rcks:
        raise CliError("no RCKs deducible from the given MDs")
    if args.backend == "hash":
        blocking = HashBlockingBackend.per_rck(rcks)
    else:
        blocking = SortedNeighborhoodBackend.from_rcks(rcks, window=args.window)
    try:
        plan = compile_plan(sigma, target, rcks=rcks, blocking=blocking)
    except (KeyError, ValueError) as error:
        raise CliError(f"cannot compile the plan: {error}") from None
    if args.json:
        print(json.dumps(plan.to_dict(), sort_keys=True))
    else:
        print(plan.explain())
    return 0


def _load_engine_store(path: Path):
    from repro.engine import load_store

    if not path.exists():
        raise CliError(f"store snapshot not found: {path}")
    try:
        return load_store(path)
    except (ValueError, KeyError, TypeError) as error:
        raise CliError(f"cannot read store {path}: {error}") from None


def cmd_engine_ingest(args) -> int:
    from repro.core.schema import LEFT, RIGHT
    from repro.engine import IncrementalMatcher, save_store

    pair, target = load_schema_spec(Path(args.schema))
    sigma = load_md_file(Path(args.mds), pair)
    store_path = Path(args.store)
    store = None
    if store_path.exists():
        store = _load_engine_store(store_path)
    try:
        matcher = IncrementalMatcher(sigma, target, top_k=args.top_k, store=store)
    except ValueError as error:
        # Covers e.g. a store snapshot built for a different schema/target.
        raise CliError(f"{store_path}: {error}") from None
    merges_before = matcher.store.merges
    ingested = 0
    for side, schema, data_path in (
        (LEFT, pair.left, args.left),
        (RIGHT, pair.right, args.right),
    ):
        if data_path is None:
            continue
        relation = _load_csv_relation(schema, Path(data_path))
        for row in relation:
            matcher.ingest(side, row.values())
            ingested += 1
    save_store(matcher.store, store_path)
    stats = matcher.store.stats()
    stats["ingested"] = ingested
    stats["new_merges"] = matcher.store.merges - merges_before
    # Work counters of this run's compiled plan (cache state is
    # per-process; it is not persisted in the snapshot).
    stats["plan"] = matcher.plan.stats.as_dict()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
    else:
        print(
            f"# ingested {ingested} record(s) into {store_path} "
            f"({stats['new_merges']} new merge(s))"
        )
        print(
            f"# store: {stats['left_rows']}+{stats['right_rows']} rows, "
            f"{stats['matched_clusters']} matched cluster(s), "
            f"{stats['comparisons']} comparison(s) so far"
        )
    return 0


def cmd_engine_stats(args) -> int:
    store = _load_engine_store(Path(args.store))
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
        return 0
    print(f"# store {args.store}")
    for key in (
        "left_rows", "right_rows", "matched_clusters",
        "largest_cluster", "comparisons", "merges",
    ):
        print(f"{key}: {stats[key]}")
    for name, index_stats in stats["indexes"].items():
        print(
            f"index {name}: {index_stats['buckets']} bucket(s), "
            f"largest {index_stats['largest_bucket']}"
        )
    return 0


def cmd_engine_query(args) -> int:
    from repro.core.schema import LEFT, RIGHT

    store = _load_engine_store(Path(args.store))
    side = LEFT if args.side == "left" else RIGHT
    relation = store.relation(side)
    if args.tid not in relation:
        raise CliError(
            f"no {args.side} record with tid {args.tid} in {args.store}"
        )
    cluster = store.cluster_of(side, args.tid)
    if args.json:
        print(json.dumps({
            "side": args.side,
            "tid": args.tid,
            "left_tids": sorted(cluster.left_tids),
            "right_tids": sorted(cluster.right_tids),
        }, sort_keys=True))
        return 0
    print(
        f"# cluster of {args.side} tid {args.tid}: "
        f"{cluster.size} record(s)"
    )
    for member_side, name, tids in (
        (LEFT, store.pair.left.name, sorted(cluster.left_tids)),
        (RIGHT, store.pair.right.name, sorted(cluster.right_tids)),
    ):
        member_relation = store.relation(member_side)
        for tid in tids:
            values = member_relation[tid].values()
            rendered = ", ".join(
                f"{key}={value}" for key, value in values.items()
                if value is not None
            )
            print(f"{name}[{tid}]: {rendered}")
    return 0


def cmd_demo(args) -> int:
    from repro.datagen.generator import figure1_instances
    from repro.datagen.schemas import paper_mds, paper_target

    pair, credit, billing = figure1_instances()
    sigma = paper_mds(pair)
    target = paper_target(pair)
    keys = find_rcks(sigma, target, m=6)
    print("Deduced RCKs from the paper's MDs:")
    for key in keys:
        print(f"  {key}")
    matcher = RCKMatcher(keys)
    result = matcher.match(
        credit, billing, candidates=[(l, r) for l in range(2) for r in range(4)]
    )
    print("Matches on the Fig. 1 instances (credit tid, billing tid):")
    for pair_ in result.matches:
        print(f"  {pair_}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matching dependencies and relative candidate keys "
        "(Fan et al., VLDB 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    deduce = sub.add_parser("deduce", help="deduce quality RCKs from MDs")
    deduce.add_argument("--schema", required=True, help="schema spec JSON")
    deduce.add_argument("--mds", required=True, help="MD file (one per line)")
    deduce.add_argument("-m", type=int, default=10, help="max RCKs (default 10)")
    deduce.set_defaults(func=cmd_deduce)

    check = sub.add_parser("check", help="decide Sigma |=m phi")
    check.add_argument("--schema", required=True)
    check.add_argument("--mds", required=True)
    check.add_argument(
        "--explain", action="store_true",
        help="print the derivation (or failure report)",
    )
    check.add_argument("md", help="the MD phi, in the text syntax")
    check.set_defaults(func=cmd_check)

    match = sub.add_parser("match", help="match two CSV files with RCKs")
    match.add_argument("--schema", required=True)
    match.add_argument("--mds", required=True)
    match.add_argument("--left", required=True, help="left relation CSV")
    match.add_argument("--right", required=True, help="right relation CSV")
    match.add_argument("-o", "--output", help="write pairs CSV here")
    match.add_argument("--top-k", type=int, default=5, help="RCKs to use")
    match.add_argument("--window", type=int, default=10, help="window size")
    match.set_defaults(func=cmd_match)

    plan = sub.add_parser(
        "plan", help="the compiled enforcement kernel (repro.plan)"
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    explain = plan_sub.add_parser(
        "explain",
        help="compile an MD file and print the resulting EnforcementPlan",
    )
    explain.add_argument("--schema", required=True, help="schema spec JSON")
    explain.add_argument("--mds", required=True, help="MD file (one per line)")
    explain.add_argument("--top-k", type=int, default=5, help="RCKs to deduce")
    explain.add_argument(
        "--backend", choices=("sorted-neighborhood", "hash"),
        default="sorted-neighborhood", help="blocking backend to attach",
    )
    explain.add_argument(
        "--window", type=int, default=10,
        help="window size (sorted-neighborhood backend)",
    )
    explain.add_argument(
        "--json", action="store_true", help="print the plan as JSON"
    )
    explain.set_defaults(func=cmd_plan_explain)

    demo = sub.add_parser("demo", help="run the Fig. 1 example")
    demo.set_defaults(func=cmd_demo)

    engine = sub.add_parser(
        "engine", help="incremental streaming entity-resolution engine"
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)

    ingest = engine_sub.add_parser(
        "ingest", help="stream CSV records into a persistent match store"
    )
    ingest.add_argument("--schema", required=True, help="schema spec JSON")
    ingest.add_argument("--mds", required=True, help="MD file (one per line)")
    ingest.add_argument(
        "--store", required=True,
        help="store snapshot path (created when missing, updated in place)",
    )
    ingest.add_argument("--left", help="left relation CSV to ingest")
    ingest.add_argument("--right", help="right relation CSV to ingest")
    ingest.add_argument("--top-k", type=int, default=5, help="RCKs to use")
    ingest.add_argument(
        "--json", action="store_true", help="print stats as JSON"
    )
    ingest.set_defaults(func=cmd_engine_ingest)

    stats = engine_sub.add_parser("stats", help="report store counters")
    stats.add_argument("--store", required=True, help="store snapshot path")
    stats.add_argument(
        "--json", action="store_true", help="print stats as JSON"
    )
    stats.set_defaults(func=cmd_engine_stats)

    query = engine_sub.add_parser(
        "query", help="print the identity cluster of a record"
    )
    query.add_argument("--store", required=True, help="store snapshot path")
    query.add_argument(
        "--side", required=True, choices=("left", "right"),
        help="which relation the record belongs to",
    )
    query.add_argument("--tid", required=True, type=int, help="tuple id")
    query.add_argument(
        "--json", action="store_true", help="print the cluster as JSON"
    )
    query.set_defaults(func=cmd_engine_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Drives the full pipeline from plain files, so the library is usable
without writing Python.  Every pipeline command is **spec-driven**: pass
``--spec spec.json`` (a :class:`repro.api.ResolutionSpec` document) and
the command builds a :class:`repro.api.Workspace` from it.  The legacy
``--schema``/``--mds`` flag form still works — it is lowered into a spec
internally — but emits a ``DeprecationWarning``.

* ``spec``    — the spec itself: ``spec validate`` checks a document and
  reports **all** problems at once (exit 2 when invalid);
* ``deduce``  — print the spec's quality RCKs;
* ``check``   — decide Σ ⊨m φ for an MD given on the command line;
* ``match``   — match two CSV files (``--json`` prints the full
  :class:`~repro.api.workspace.MatchReport`; ``--workers N`` shards the
  enforcement chase across a process pool on large inputs);
* ``plan``    — ``plan explain`` prints the compiled ``EnforcementPlan``;
* ``demo``    — run the paper's Fig. 1 example end to end;
* ``engine``  — the incremental streaming engine: ``engine ingest``
  streams CSV records into a persistent match store — a JSON snapshot or
  a durable SQLite database (``.db``/``.sqlite`` paths or a spec
  ``persistence`` section select SQLite; stores embed the spec
  fingerprint and resuming under a different spec is rejected),
  ``engine stats`` reports counters, ``engine query`` prints a cluster,
  ``engine migrate`` converts between the two store formats;
* ``trace``   — inspect trace files written with ``--trace`` on ``match``
  or ``engine ingest``: ``trace summarize`` aggregates per-span timings,
  ``trace validate`` schema-checks a file (what CI smoke runs).

The legacy schema spec is JSON::

    {
      "left":   {"name": "credit",  "attributes": ["c#", "FN", ...]},
      "right":  {"name": "billing", "attributes": ["c#", "FN", ...]},
      "target": {"left": ["FN", "LN", ...], "right": ["FN", "LN", ...]}
    }

MD files contain one MD per line in the :mod:`repro.core.parser` syntax;
blank lines and ``#`` comments are ignored.

Exit codes: 0 on success, 1 for a negative ``check`` verdict, 2 for any
user-facing error (bad input, missing file, invalid spec) — every such
error is printed to stderr, never raised as a traceback.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sqlite3
import sys
import warnings
from pathlib import Path
from typing import List, Optional, Tuple

from repro.api import ResolutionSpec, SpecBuilder, SpecError, Workspace
from repro.obs import TRACE_FORMATS, read_trace, summarize_trace, validate_trace
from repro.core.closure import deduces
from repro.core.parser import parse_md, parse_mds
from repro.core.schema import ComparableLists, RelationSchema, SchemaPair
from repro.relations.csvio import load_relation
from repro.relations.relation import Relation


class CliError(Exception):
    """A user-facing CLI failure (bad input, missing file, ...)."""


def load_schema_spec(path: Path) -> Tuple[SchemaPair, ComparableLists]:
    """Parse the legacy JSON schema spec into a pair and target lists."""
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CliError(f"schema spec not found: {path}") from None
    except json.JSONDecodeError as error:
        raise CliError(f"invalid JSON in {path}: {error}") from None
    for key in ("left", "right", "target"):
        if key not in spec:
            raise CliError(f"schema spec is missing the {key!r} section")
    try:
        pair = SchemaPair(
            RelationSchema(spec["left"]["name"], spec["left"]["attributes"]),
            RelationSchema(spec["right"]["name"], spec["right"]["attributes"]),
        )
        target = ComparableLists(
            pair, spec["target"]["left"], spec["target"]["right"]
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CliError(f"invalid schema spec: {error}") from None
    return pair, target


def load_md_file(path: Path, pair: SchemaPair):
    """Parse the MD file against the schema pair."""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise CliError(f"MD file not found: {path}") from None
    try:
        return parse_mds(text, pair)
    except ValueError as error:
        raise CliError(f"cannot parse {path}: {error}") from None


def _load_csv_relation(schema, path: Path) -> Relation:
    """Load a CSV with or without the __tid__ column."""
    try:
        with path.open("r", newline="", encoding="utf-8") as handle:
            header = next(csv.reader(handle), None)
    except FileNotFoundError:
        raise CliError(f"data file not found: {path}") from None
    if header and header[0] == "__tid__":
        return load_relation(schema, path)
    # Plain CSV: columns must cover a subset of the schema.
    relation = Relation(schema)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        unknown = set(reader.fieldnames or ()) - set(schema.attribute_names)
        if unknown:
            raise CliError(
                f"{path}: columns {sorted(unknown)} not in schema "
                f"{schema.name!r}"
            )
        for record in reader:
            relation.insert(
                {key: (value if value != "" else None) for key, value in record.items()}
            )
    return relation


# ----------------------------------------------------------------------
# Spec resolution: --spec, or legacy flags lowered into a spec
# ----------------------------------------------------------------------


def _spec_from_file(path: Path) -> ResolutionSpec:
    """Read a ResolutionSpec, folding all its errors into one CliError."""
    try:
        return ResolutionSpec.from_file(path)
    except SpecError as error:
        raise CliError("\n".join(error.errors)) from None


def _legacy_spec(
    args,
    mode: str,
    top_k: int,
    window: int = 10,
    backend: str = "sorted-neighborhood",
) -> ResolutionSpec:
    """Lower the deprecated --schema/--mds flag form into a spec."""
    pair, target = load_schema_spec(Path(args.schema))
    sigma = load_md_file(Path(args.mds), pair)
    warnings.warn(
        "the --schema/--mds flag form is deprecated; write a "
        "ResolutionSpec document and pass --spec spec.json "
        "(see `repro spec validate`)",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        return (
            SpecBuilder()
            .pair(pair)
            .target(target)
            .mds(sigma)
            .blocking(backend, window=window)
            .execution(mode=mode, top_k=top_k)
            .build()
        )
    except SpecError as error:
        raise CliError(
            "cannot lower the given flags into a spec:\n"
            + "\n".join(error.errors)
        ) from None


def _override_spec(spec: ResolutionSpec, **overrides) -> ResolutionSpec:
    """Rebuild a spec with explicitly passed tuning flags applied.

    ``overrides`` maps dotted document paths (e.g. ``"rules.top_k"``) to
    values; ``None`` values (flag not given) are skipped, so a plain
    ``--spec`` run uses the file verbatim.
    """
    effective = {
        path: value for path, value in overrides.items() if value is not None
    }
    if not effective:
        return spec
    document = spec.to_dict()
    for path, value in effective.items():
        section, _, key = path.partition(".")
        document[section][key] = value
    return ResolutionSpec.from_dict(document)


def _resolve_spec(
    args,
    mode: str,
    top_k: Optional[int] = None,
    window: Optional[int] = None,
    backend: Optional[str] = None,
    default_top_k: int = 5,
) -> ResolutionSpec:
    """The command's spec: --spec when given, lowered flags otherwise.

    With ``--spec``, explicitly passed tuning flags (``--top-k``,
    ``--window``, ``--backend``, ``-m``) override the corresponding spec
    fields — a flag the user typed is never silently ignored — and
    combining ``--spec`` with ``--schema``/``--mds`` is an error.
    """
    spec_path = getattr(args, "spec", None)
    if spec_path:
        if getattr(args, "schema", None) or getattr(args, "mds", None):
            raise CliError(
                "--spec conflicts with --schema/--mds; pass one form only"
            )
        spec = _spec_from_file(Path(spec_path))
        try:
            return _override_spec(
                spec,
                **{
                    "rules.top_k": top_k,
                    "blocking.window": window,
                    "blocking.backend": backend,
                },
            )
        except SpecError as error:
            raise CliError("\n".join(error.errors)) from None
    if not getattr(args, "schema", None) or not getattr(args, "mds", None):
        raise CliError(
            "pass --spec spec.json, or both --schema and --mds"
        )
    return _legacy_spec(
        args,
        mode,
        top_k if top_k is not None else default_top_k,
        window if window is not None else 10,
        backend if backend is not None else "sorted-neighborhood",
    )


def _trace_spec(spec: ResolutionSpec, args) -> ResolutionSpec:
    """Lower --trace/--trace-format into the spec's observability section."""
    if getattr(args, "trace", None) is None and (
        getattr(args, "trace_format", None) is None
    ):
        return spec
    try:
        return _override_spec(
            spec,
            **{
                "observability.trace": getattr(args, "trace", None),
                "observability.trace_format": getattr(args, "trace_format", None),
            },
        )
    except SpecError as error:
        raise CliError("\n".join(error.errors)) from None


def _write_cli_trace(workspace: Workspace, args, **manifest_fields) -> None:
    """Write the run's trace to the spec's observability.trace path."""
    if workspace.spec.trace_path is None:
        return
    try:
        workspace.write_trace(
            argv=getattr(args, "argv", sys.argv[1:]), **manifest_fields
        )
    except OSError as error:
        raise CliError(f"cannot write trace: {error}") from None


def _workspace(spec: ResolutionSpec) -> Workspace:
    """A workspace whose compile errors surface as CLI errors."""
    workspace = Workspace(spec)
    try:
        workspace.plan
    except (KeyError, ValueError) as error:
        raise CliError(f"cannot compile the spec: {error}") from None
    return workspace


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_spec_validate(args) -> int:
    path = Path(args.file)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CliError(f"spec file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise CliError(f"invalid JSON in {path}: {error}") from None
    errors = ResolutionSpec.validate_document(document)
    if errors:
        for message in errors:
            print(f"error: {message}", file=sys.stderr)
        print(f"# {len(errors)} error(s) in {path}", file=sys.stderr)
        return 2
    spec = ResolutionSpec.from_dict(document)
    print(
        f"OK: {path} is a valid v{spec.version} ResolutionSpec "
        f"(fingerprint {spec.fingerprint()})"
    )
    return 0


def cmd_deduce(args) -> int:
    spec = _resolve_spec(args, mode="direct", top_k=args.m, default_top_k=10)
    workspace = _workspace(spec)
    keys = workspace.deduce()
    print(f"# {len(keys)} RCK(s) relative to {workspace.plan.target}")
    for key in keys:
        print(key)
    return 0


def cmd_check(args) -> int:
    spec = _resolve_spec(args, mode="enforce")
    pair = spec.schema_pair()
    try:
        sigma = spec.parsed_mds(pair)
    except ValueError as error:
        raise CliError(f"cannot parse the spec's MDs: {error}") from None
    try:
        phi = parse_md(args.md, pair)
    except ValueError as error:
        raise CliError(f"cannot parse the MD to check: {error}") from None
    if args.explain:
        from repro.core.explain import explain

        explanation = explain(pair, sigma, phi)
        print(explanation.render())
        return 0 if explanation.deduced else 1
    verdict = deduces(pair, sigma, phi)
    print(f"Sigma |=m phi: {verdict}")
    return 0 if verdict else 1


def cmd_match(args) -> int:
    spec = _resolve_spec(
        args, mode="direct", top_k=args.top_k, window=args.window
    )
    if args.workers is not None:
        # Never silently ignore a typed flag: direct-mode matching has
        # no chase to parallelize, so combining the two is an error.
        if spec.mode != "enforce":
            raise CliError(
                "--workers applies to the 'enforce' execution mode, but "
                f"this run uses {spec.mode!r}; set execution.mode to "
                "\"enforce\" in the spec to chase in parallel"
            )
        try:
            spec = _override_spec(spec, **{"execution.workers": args.workers})
        except SpecError as error:
            raise CliError("\n".join(error.errors)) from None
    spec = _trace_spec(spec, args)
    workspace = _workspace(spec)
    plan = workspace.plan
    if not plan.keys:
        raise CliError("no RCKs deducible from the given MDs")
    left = _load_csv_relation(plan.pair.left, Path(args.left))
    right = _load_csv_relation(plan.pair.right, Path(args.right))
    try:
        report = workspace.match(left, right)
    except (KeyError, ValueError) as error:
        raise CliError(f"matching failed: {error}") from None
    _write_cli_trace(
        workspace, args,
        command="match", left=str(args.left), right=str(args.right),
    )
    exhausted = report.stats.get("rounds_exhausted", 0)
    if exhausted:
        print(
            f"warning: the chase hit its round budget "
            f"(execution.max_rounds={spec.max_rounds}) before reaching a "
            f"stable instance in {exhausted} enforcement(s); matches may be "
            f"incomplete — raise execution.max_rounds "
            f"(rules in play: {', '.join(r.name for r in plan.rules)})",
            file=sys.stderr,
        )
    rows = list(report.matches)
    if args.output:
        with Path(args.output).open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["left_tid", "right_tid"])
            writer.writerows(rows)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
        return 0
    if not args.output:
        for left_tid, right_tid in rows:
            print(f"{left_tid},{right_tid}")
    print(
        f"# {len(rows)} match(es) from {len(report.candidates)} candidate "
        f"pair(s); keys used: {len(plan.keys)}",
        file=sys.stderr,
    )
    return 0


def _factorisation_stats(plan, left_path: Path, right_path: Path):
    """Factorise the blocking output of two CSVs: the dedup the kernel gets.

    ``blocks`` counts the connected components of the candidate pairs
    (the units the parallel executor shards); ``value_pair_groups`` the
    distinct LHS value-pair signatures (the units the factorised chase
    evaluates); ``dedup_ratio`` is pairs per group.
    """
    from repro.core.semantics import InstancePair
    from repro.plan.factorise import PairGroupIndex
    from repro.plan.shard import shard_pairs

    left = _load_csv_relation(plan.pair.left, left_path)
    right = _load_csv_relation(plan.pair.right, right_path)
    pairs = plan.candidates(left, right)
    index = PairGroupIndex(plan, InstancePair(plan.pair, left, right), pairs)
    return {
        "candidate_pairs": len(pairs),
        "blocks": len(shard_pairs(pairs)),
        "value_pair_groups": index.group_count,
        "dedup_ratio": round(index.ratio, 4),
    }


def cmd_plan_explain(args) -> int:
    spec = _resolve_spec(
        args,
        mode="enforce",
        top_k=args.top_k,
        window=args.window,
        backend=args.backend,
    )
    workspace = _workspace(spec)
    if not workspace.plan.keys:
        raise CliError("no RCKs deducible from the given MDs")
    if bool(args.left) != bool(args.right):
        raise CliError(
            "plan explain takes --left and --right together (or neither)"
        )
    factorisation = None
    if args.left and args.right:
        factorisation = _factorisation_stats(
            workspace.plan, Path(args.left), Path(args.right)
        )
    if args.json:
        document = workspace.plan.to_dict()
        document["spec_fingerprint"] = workspace.fingerprint
        if factorisation is not None:
            document["factorisation"] = factorisation
        print(json.dumps(document, sort_keys=True))
    else:
        print(workspace.explain())
        if factorisation is not None:
            print(
                f"factorisation: {factorisation['candidate_pairs']} "
                f"candidate pair(s) in {factorisation['blocks']} block(s) "
                f"-> {factorisation['value_pair_groups']} distinct-value "
                f"group(s) (dedup ratio {factorisation['dedup_ratio']}x)"
            )
    return 0


#: Path suffixes that select the SQLite backend for a *new* store file.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def _load_engine_store(path: Path):
    """Open an existing store of either backend, sniffing the format.

    SQLite files are recognized by their magic bytes, so a store keeps
    working however it is named; everything else is read as a JSON
    snapshot.  All failure modes (missing file, unreadable or corrupt
    content, wrong version) surface as actionable :class:`CliError`.
    """
    from repro.engine import SQLiteMatchStore, is_sqlite_file, load_store

    if not path.exists():
        raise CliError(f"store not found: {path}")
    if is_sqlite_file(path):
        try:
            return SQLiteMatchStore(path)
        except (ValueError, KeyError, TypeError, sqlite3.Error) as error:
            raise CliError(f"cannot open store {path}: {error}") from None
    try:
        return load_store(path)
    except (ValueError, KeyError, TypeError) as error:
        raise CliError(f"cannot read store {path}: {error}") from None


def _wants_sqlite(spec, store_path: Path) -> bool:
    """Whether a *new* store at ``store_path`` should be SQLite-backed.

    Either the spec asks for it (``persistence.backend``) or the path's
    suffix does (``.db``/``.sqlite``/``.sqlite3``).
    """
    return (
        spec.persistence_backend == "sqlite"
        or store_path.suffix.lower() in _SQLITE_SUFFIXES
    )


def cmd_engine_ingest(args) -> int:
    from repro.core.schema import LEFT, RIGHT
    from repro.engine import save_store

    spec = _resolve_spec(args, mode="enforce", top_k=args.top_k)
    spec = _trace_spec(spec, args)
    workspace = _workspace(spec)
    pair = workspace.plan.pair
    store_path = Path(args.store)
    store = None
    if store_path.exists():
        store = _load_engine_store(store_path)
    elif _wants_sqlite(spec, store_path):
        store = workspace.open_store(store_path)
    try:
        matcher = workspace.stream(store=store)
    except SpecError as error:
        raise CliError(f"{store_path}: {'; '.join(error.errors)}") from None
    except ValueError as error:
        # Covers e.g. a store snapshot built for a different schema/target.
        raise CliError(f"{store_path}: {error}") from None
    merges_before = matcher.store.merges
    ingested = 0
    for side, schema, data_path in (
        (LEFT, pair.left, args.left),
        (RIGHT, pair.right, args.right),
    ):
        if data_path is None:
            continue
        relation = _load_csv_relation(schema, Path(data_path))
        for row in relation:
            matcher.ingest(side, row.values())
            ingested += 1
    if matcher.store.backend_name == "sqlite":
        # Every ingest already committed durably; just flush the tail.
        matcher.store.commit()
    else:
        save_store(matcher.store, store_path)
    _write_cli_trace(
        workspace,
        args,
        command="engine ingest",
        store=str(store_path),
        ingested=ingested,
    )
    stats = matcher.store.stats()
    stats["ingested"] = ingested
    stats["new_merges"] = matcher.store.merges - merges_before
    stats["spec_fingerprint"] = matcher.store.spec_fingerprint
    # Work counters of this run's compiled plan (cache state is
    # per-process; it is not persisted in the snapshot).
    stats["plan"] = matcher.plan.stats.as_dict()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
    else:
        print(
            f"# ingested {ingested} record(s) into {store_path} "
            f"({stats['new_merges']} new merge(s))"
        )
        print(
            f"# store: {stats['left_rows']}+{stats['right_rows']} rows, "
            f"{stats['matched_clusters']} matched cluster(s), "
            f"{stats['comparisons']} comparison(s) so far"
        )
    return 0


def cmd_engine_stats(args) -> int:
    store = _load_engine_store(Path(args.store))
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
        return 0
    print(f"# store {args.store}")
    print(f"backend: {stats['backend']}")
    if "disk_bytes" in stats:
        print(f"disk_bytes: {stats['disk_bytes']}")
    for key in (
        "left_rows", "right_rows", "matched_clusters",
        "largest_cluster", "comparisons", "merges",
    ):
        print(f"{key}: {stats[key]}")
    for name, index_stats in stats["indexes"].items():
        print(
            f"index {name}: {index_stats['buckets']} bucket(s), "
            f"largest {index_stats['largest_bucket']}"
        )
    return 0


def cmd_engine_query(args) -> int:
    from repro.core.schema import LEFT, RIGHT

    store = _load_engine_store(Path(args.store))
    side = LEFT if args.side == "left" else RIGHT
    relation = store.relation(side)
    if args.tid not in relation:
        raise CliError(
            f"no {args.side} record with tid {args.tid} in {args.store}"
        )
    cluster = store.cluster_of(side, args.tid)
    if args.json:
        print(json.dumps({
            "side": args.side,
            "tid": args.tid,
            "left_tids": sorted(cluster.left_tids),
            "right_tids": sorted(cluster.right_tids),
        }, sort_keys=True))
        return 0
    print(
        f"# cluster of {args.side} tid {args.tid}: "
        f"{cluster.size} record(s)"
    )
    for member_side, name, tids in (
        (LEFT, store.pair.left.name, sorted(cluster.left_tids)),
        (RIGHT, store.pair.right.name, sorted(cluster.right_tids)),
    ):
        member_relation = store.relation(member_side)
        for tid in tids:
            values = member_relation[tid].values()
            rendered = ", ".join(
                f"{key}={value}" for key, value in values.items()
                if value is not None
            )
            print(f"{name}[{tid}]: {rendered}")
    return 0


def cmd_engine_migrate(args) -> int:
    """Convert a store file between the JSON snapshot and SQLite formats.

    The direction is inferred from the source's format: a SQLite store
    exports to a JSON snapshot, a JSON snapshot imports to a SQLite
    store.  The destination must not already exist.
    """
    from repro.engine import (
        is_sqlite_file,
        snapshot_to_sqlite,
        sqlite_to_snapshot,
    )

    source, destination = Path(args.source), Path(args.dest)
    if not source.exists():
        raise CliError(f"store not found: {source}")
    if destination.exists():
        raise CliError(
            f"refusing to overwrite existing file: {destination}"
        )
    to_sqlite = not is_sqlite_file(source)
    try:
        if to_sqlite:
            store = snapshot_to_sqlite(source, destination)
            stats = store.stats()
            store.close(commit=False)
        else:
            sqlite_to_snapshot(source, destination)
            stats = _load_engine_store(destination).stats()
    except (ValueError, KeyError, TypeError, sqlite3.Error) as error:
        raise CliError(f"cannot migrate {source}: {error}") from None
    direction = "snapshot -> sqlite" if to_sqlite else "sqlite -> snapshot"
    if args.json:
        print(json.dumps({
            "source": str(source),
            "dest": str(destination),
            "direction": direction,
            "stats": stats,
        }, sort_keys=True))
        return 0
    print(f"# migrated {source} -> {destination} ({direction})")
    print(
        f"# {stats['left_rows']}+{stats['right_rows']} rows, "
        f"{stats['matched_clusters']} matched cluster(s), "
        f"{stats['merges']} merge(s) carried over"
    )
    return 0


def _read_trace_file(path: str):
    try:
        return read_trace(path)
    except FileNotFoundError:
        raise CliError(f"trace file not found: {path}") from None
    except ValueError as error:
        raise CliError(str(error)) from None


def cmd_serve(args) -> int:
    """Run the asyncio resolution service until SIGINT/SIGTERM."""
    from repro.serve import ResolutionServer, serve_forever

    spec = _resolve_spec(args, mode="enforce")
    server = ResolutionServer(
        spec,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        queue_limit=args.queue_limit,
    )
    serve_forever(server)
    return 0


def cmd_trace_summarize(args) -> int:
    document = _read_trace_file(args.file)
    problems = validate_trace(document)
    if problems:
        raise CliError(
            f"{args.file} is not a valid trace:\n"
            + "\n".join(f"  {problem}" for problem in problems)
        )
    print(summarize_trace(document))
    return 0


def cmd_trace_validate(args) -> int:
    document = _read_trace_file(args.file)
    problems = validate_trace(document)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        print(f"# {len(problems)} problem(s) in {args.file}", file=sys.stderr)
        return 2
    spans = sum(
        1
        for event in document.get("traceEvents", [])
        if isinstance(event, dict) and event.get("ph") == "X"
    )
    print(f"OK: {args.file} is a valid trace ({spans} span event(s))")
    return 0


def cmd_demo(args) -> int:
    from repro.datagen.generator import figure1_instances
    from repro.datagen.schemas import paper_mds, paper_target

    pair, credit, billing = figure1_instances()
    workspace = (
        Workspace.builder()
        .pair(pair)
        .target(paper_target(pair))
        .mds(paper_mds(pair))
        .execution(mode="direct", top_k=6)
        .workspace()
    )
    print("Deduced RCKs from the paper's MDs:")
    for key in workspace.deduce():
        print(f"  {key}")
    report = workspace.match(
        credit, billing,
        candidates=[(l, r) for l in range(2) for r in range(4)],
    )
    print("Matches on the Fig. 1 instances (credit tid, billing tid):")
    for pair_ in report.matches:
        print(f"  {pair_}")
    return 0


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        help="write a span trace of this run to FILE (Chrome trace_event "
        "JSON by default: load it in about:tracing or ui.perfetto.dev; "
        "inspect with `repro trace summarize FILE`)",
        metavar="FILE",
    )
    parser.add_argument(
        "--trace-format", choices=TRACE_FORMATS,
        help="trace file format (default chrome; jsonl = one event per line)",
    )


def _add_spec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec",
        help="ResolutionSpec JSON (the declarative form of every other flag)",
    )
    parser.add_argument(
        "--schema", help="legacy schema spec JSON (deprecated; use --spec)"
    )
    parser.add_argument(
        "--mds", help="legacy MD file, one per line (deprecated; use --spec)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matching dependencies and relative candidate keys "
        "(Fan et al., VLDB 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    spec = sub.add_parser(
        "spec", help="work with ResolutionSpec documents (repro.api)"
    )
    spec_sub = spec.add_subparsers(dest="spec_command", required=True)
    validate = spec_sub.add_parser(
        "validate",
        help="validate a spec document, reporting every error at once",
    )
    validate.add_argument("file", help="ResolutionSpec JSON file")
    validate.set_defaults(func=cmd_spec_validate)

    deduce = sub.add_parser("deduce", help="deduce quality RCKs from MDs")
    _add_spec_options(deduce)
    deduce.add_argument("-m", type=int, help="max RCKs (default 10)")
    deduce.set_defaults(func=cmd_deduce)

    check = sub.add_parser("check", help="decide Sigma |=m phi")
    _add_spec_options(check)
    check.add_argument(
        "--explain", action="store_true",
        help="print the derivation (or failure report)",
    )
    check.add_argument("md", help="the MD phi, in the text syntax")
    check.set_defaults(func=cmd_check)

    match = sub.add_parser("match", help="match two CSV files with RCKs")
    _add_spec_options(match)
    match.add_argument("--left", required=True, help="left relation CSV")
    match.add_argument("--right", required=True, help="right relation CSV")
    match.add_argument("-o", "--output", help="write pairs CSV here")
    match.add_argument("--top-k", type=int, help="RCKs to use (default 5)")
    match.add_argument("--window", type=int, help="window size (default 10)")
    match.add_argument(
        "--workers", type=int,
        help="chase worker processes for the 'enforce' execution mode "
        "(default: the spec's execution.workers, i.e. 1 = serial; "
        "large instances shard into connected components)",
    )
    match.add_argument(
        "--json", action="store_true",
        help="print the full MatchReport as JSON (pairs, clusters, "
        "provenance, plan stats, spec fingerprint)",
    )
    _add_trace_options(match)
    match.set_defaults(func=cmd_match)

    plan = sub.add_parser(
        "plan", help="the compiled enforcement kernel (repro.plan)"
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    explain = plan_sub.add_parser(
        "explain",
        help="compile a spec (or MD file) and print the EnforcementPlan",
    )
    _add_spec_options(explain)
    explain.add_argument(
        "--left",
        help="left relation CSV: block and factorise it for dedup stats",
    )
    explain.add_argument(
        "--right", help="right relation CSV (required with --left)"
    )
    explain.add_argument("--top-k", type=int, help="RCKs to deduce (default 5)")
    explain.add_argument(
        "--backend", choices=("sorted-neighborhood", "hash"),
        help="blocking backend to attach (default sorted-neighborhood)",
    )
    explain.add_argument(
        "--window", type=int,
        help="window size (sorted-neighborhood backend; default 10)",
    )
    explain.add_argument(
        "--json", action="store_true", help="print the plan as JSON"
    )
    explain.set_defaults(func=cmd_plan_explain)

    demo = sub.add_parser("demo", help="run the Fig. 1 example")
    demo.set_defaults(func=cmd_demo)

    engine = sub.add_parser(
        "engine", help="incremental streaming entity-resolution engine"
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)

    ingest = engine_sub.add_parser(
        "ingest", help="stream CSV records into a persistent match store"
    )
    _add_spec_options(ingest)
    ingest.add_argument(
        "--store", required=True,
        help="store snapshot path (created when missing, updated in place)",
    )
    ingest.add_argument("--left", help="left relation CSV to ingest")
    ingest.add_argument("--right", help="right relation CSV to ingest")
    ingest.add_argument("--top-k", type=int, help="RCKs to use (default 5)")
    ingest.add_argument(
        "--json", action="store_true", help="print stats as JSON"
    )
    _add_trace_options(ingest)
    ingest.set_defaults(func=cmd_engine_ingest)

    stats = engine_sub.add_parser("stats", help="report store counters")
    stats.add_argument("--store", required=True, help="store snapshot path")
    stats.add_argument(
        "--json", action="store_true", help="print stats as JSON"
    )
    stats.set_defaults(func=cmd_engine_stats)

    query = engine_sub.add_parser(
        "query", help="print the identity cluster of a record"
    )
    query.add_argument("--store", required=True, help="store snapshot path")
    query.add_argument(
        "--side", required=True, choices=("left", "right"),
        help="which relation the record belongs to",
    )
    query.add_argument("--tid", required=True, type=int, help="tuple id")
    query.add_argument(
        "--json", action="store_true", help="print the cluster as JSON"
    )
    query.set_defaults(func=cmd_engine_query)

    migrate = engine_sub.add_parser(
        "migrate",
        help="convert a store between JSON snapshot and SQLite formats",
    )
    migrate.add_argument(
        "source", help="existing store file (snapshot or SQLite)"
    )
    migrate.add_argument(
        "dest", help="destination store file (must not exist; the "
        "opposite format of the source)",
    )
    migrate.add_argument(
        "--json", action="store_true", help="print a migration report as JSON"
    )
    migrate.set_defaults(func=cmd_engine_migrate)

    serve = sub.add_parser(
        "serve",
        help="run the asyncio HTTP resolution service (repro.serve)",
    )
    _add_spec_options(serve)
    serve.add_argument(
        "--host", help="bind address (default: the spec's serve.host)"
    )
    serve.add_argument(
        "--port", type=int,
        help="bind port, 0 for ephemeral (default: the spec's serve.port)",
    )
    serve.add_argument(
        "--max-batch", type=int,
        help="ingest micro-batch size cap (default: serve.max_batch)",
    )
    serve.add_argument(
        "--max-delay-ms", type=int,
        help="micro-batch linger in milliseconds (default: serve.max_delay_ms)",
    )
    serve.add_argument(
        "--queue-limit", type=int,
        help="per-tenant ingest queue bound before 429 backpressure "
        "(default: serve.queue_limit)",
    )
    serve.set_defaults(func=cmd_serve)

    trace = sub.add_parser(
        "trace", help="inspect trace files written with --trace (repro.obs)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="aggregate a trace into a per-span table"
    )
    summarize.add_argument("file", help="trace file (chrome or jsonl format)")
    summarize.set_defaults(func=cmd_trace_summarize)
    trace_validate = trace_sub.add_parser(
        "validate", help="schema-check a trace file (exit 2 on problems)"
    )
    trace_validate.add_argument(
        "file", help="trace file (chrome or jsonl format)"
    )
    trace_validate.set_defaults(func=cmd_trace_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    args = parser.parse_args(argv)
    # The command line as invoked, for trace manifests (sys.argv is the
    # test runner's when main() is called programmatically).
    args.argv = list(argv)
    try:
        return args.func(args)
    except SpecError as error:
        for message in error.errors:
            print(f"error: {message}", file=sys.stderr)
        return 2
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed our stdout (e.g. `repro trace summarize | head`);
        # exit quietly instead of tracebacking.  Redirect stdout to devnull
        # so the interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

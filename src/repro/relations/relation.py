"""In-memory relation instances with stable tuple identities.

The dynamic semantics of MDs (Section 2.1) tracks tuples *across updates*:
"to keep track of tuples during a matching process, we assume a temporary
unique tuple id for each tuple", and an instance ``I'`` extends ``I``
(``I ⊑ I'``) when every tuple of ``I`` has a same-id counterpart in ``I'``
(possibly with different attribute values).

:class:`Relation` implements exactly that: a schema-bound multiset of rows,
each carrying an integer tuple id assigned at insertion and preserved by
:meth:`copy`.  No third-party dataframe library is used (none is available
offline); the matching workloads only need iteration, id lookup, and cell
updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.schema import RelationSchema


class Row:
    """A single tuple: an id plus attribute values.

    Access values with ``row[attr]``; missing attributes raise ``KeyError``
    at construction, so every row always covers the full schema (``None``
    stands for null).
    """

    __slots__ = ("tid", "_values")

    def __init__(self, tid: int, values: Dict[str, object]) -> None:
        self.tid = tid
        self._values = values

    def __getitem__(self, attribute: str) -> object:
        return self._values[attribute]

    def get(self, attribute: str, default: object = None) -> object:
        """Value of ``attribute`` or ``default`` when absent."""
        return self._values.get(attribute, default)

    def values(self) -> Dict[str, object]:
        """A copy of the attribute → value mapping."""
        return dict(self._values)

    def project(self, attributes: Iterable[str]) -> Tuple[object, ...]:
        """The tuple of values for the listed attributes, in order."""
        return tuple(self._values[attr] for attr in attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.tid == other.tid and self._values == other._values

    def __hash__(self) -> int:
        return hash(self.tid)

    def __repr__(self) -> str:
        return f"Row(tid={self.tid}, {self._values!r})"


class Relation:
    """A schema-bound instance: rows with stable tuple ids.

    >>> from repro.core.schema import RelationSchema
    >>> schema = RelationSchema("R", ["A", "B"])
    >>> instance = Relation(schema)
    >>> tid = instance.insert({"A": 1, "B": "x"})
    >>> instance[tid]["A"]
    1
    >>> len(instance)
    1
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Optional[Iterable[Dict[str, object]]] = None,
    ) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_tid = 0
        if rows is not None:
            for values in rows:
                self.insert(values)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self, values: Dict[str, object], tid: Optional[int] = None
    ) -> int:
        """Insert a row; missing schema attributes are filled with ``None``.

        Unknown attribute names are rejected.  An explicit ``tid`` may be
        supplied (used by :meth:`copy`); it must be fresh.
        """
        unknown = set(values) - set(self.schema.attribute_names)
        if unknown:
            raise KeyError(
                f"attributes {sorted(unknown)} not in schema {self.schema.name!r}"
            )
        if tid is None:
            tid = self._next_tid
        if tid in self._rows:
            raise ValueError(f"tuple id {tid} already present")
        complete = {
            name: values.get(name) for name in self.schema.attribute_names
        }
        self._rows[tid] = Row(tid, complete)
        self._next_tid = max(self._next_tid, tid + 1)
        return tid

    def set_value(self, tid: int, attribute: str, value: object) -> None:
        """Update one cell of the row with id ``tid``."""
        if attribute not in self.schema:
            raise KeyError(
                f"{attribute!r} is not an attribute of {self.schema.name!r}"
            )
        self._rows[tid]._values[attribute] = value

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __getitem__(self, tid: int) -> Row:
        try:
            return self._rows[tid]
        except KeyError:
            raise KeyError(
                f"no tuple with id {tid} in {self.schema.name!r}"
            ) from None

    def __contains__(self, tid: object) -> bool:
        return tid in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __len__(self) -> int:
        return len(self._rows)

    def tids(self) -> List[int]:
        """All tuple ids, in insertion order."""
        return list(self._rows)

    def rows(self) -> List[Row]:
        """All rows, in insertion order."""
        return list(self._rows.values())

    # ------------------------------------------------------------------
    # Extension semantics
    # ------------------------------------------------------------------

    def copy(self) -> "Relation":
        """A deep-enough copy preserving tuple ids (an extension of self)."""
        duplicate = Relation(self.schema)
        for tid, row in self._rows.items():
            duplicate.insert(row.values(), tid=tid)
        return duplicate

    def extends(self, original: "Relation") -> bool:
        """``original ⊑ self``: every original tuple id is present here.

        Values may differ — that is the point of the dynamic semantics.
        """
        if self.schema != original.schema:
            return False
        return all(tid in self._rows for tid in original._rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, {len(self)} rows)"

"""Secondary indexes over relations.

Blocking needs equality lookups on a derived key (hash index); windowing
needs a total order on a derived key (sorted index).  Both index *derived*
keys — a function of the row — because the paper's keys are built from
(encoded parts of) RCK attributes, e.g. Soundex(name) + zip prefix.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Tuple

from .relation import Relation, Row

#: A function deriving an indexable key from a row.
KeyFunction = Callable[[Row], Hashable]


class HashIndex:
    """Equality index: derived key → list of tuple ids.

    >>> from repro.core.schema import RelationSchema
    >>> relation = Relation(RelationSchema("R", ["A"]))
    >>> _ = relation.insert({"A": "x"}); _ = relation.insert({"A": "x"})
    >>> index = HashIndex(relation, lambda row: row["A"])
    >>> sorted(index.lookup("x"))
    [0, 1]
    """

    def __init__(self, relation: Relation, key: KeyFunction) -> None:
        self._buckets: Dict[Hashable, List[int]] = {}
        for row in relation:
            self._buckets.setdefault(key(row), []).append(row.tid)

    def lookup(self, key_value: Hashable) -> List[int]:
        """Tuple ids whose derived key equals ``key_value``."""
        return list(self._buckets.get(key_value, ()))

    def buckets(self) -> Dict[Hashable, List[int]]:
        """All buckets: derived key → tuple ids (copies)."""
        return {key: list(tids) for key, tids in self._buckets.items()}

    def __len__(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """Order index: tuple ids sorted by derived key.

    The derived key must be totally ordered (strings/tuples of strings).
    Ties keep insertion order (Python's sort is stable), which makes
    windowing runs reproducible.
    """

    def __init__(self, relation: Relation, key: KeyFunction) -> None:
        keyed: List[Tuple[Hashable, int]] = [
            (key(row), row.tid) for row in relation
        ]
        keyed.sort(key=lambda pair: pair[0])
        self._order: List[int] = [tid for _, tid in keyed]
        self._keys: List[Hashable] = [key_value for key_value, _ in keyed]

    def ordered_tids(self) -> List[int]:
        """Tuple ids in derived-key order."""
        return list(self._order)

    def key_at(self, position: int) -> Hashable:
        """The derived key of the tuple at ``position`` in the order."""
        return self._keys[position]

    def __len__(self) -> int:
        return len(self._order)

"""In-memory relational substrate: instances, indexes, CSV I/O."""

from .csvio import load_relation, save_relation
from .index import HashIndex, KeyFunction, SortedIndex
from .relation import Relation, Row

__all__ = [
    "HashIndex",
    "KeyFunction",
    "Relation",
    "Row",
    "SortedIndex",
    "load_relation",
    "save_relation",
]

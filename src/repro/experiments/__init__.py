"""Experiment drivers — one module per figure of Section 6.

* :mod:`repro.experiments.exp_scalability` — Fig. 8(a–c)
* :mod:`repro.experiments.exp_fs` — Fig. 9(a–c)
* :mod:`repro.experiments.exp_sn` — Fig. 10(a–c)
* :mod:`repro.experiments.exp_blocking` — Figs. 9(d), 10(d) and the
  windowing variant of Exp-4

Each module exposes ``run(...)`` returning plain records and ``render``
producing the text table recorded in EXPERIMENTS.md.
"""

from . import exp_blocking, exp_fs, exp_scalability, exp_sn
from .harness import Table, Timer, records_to_table, timed

__all__ = [
    "Table",
    "Timer",
    "exp_blocking",
    "exp_fs",
    "exp_scalability",
    "exp_sn",
    "records_to_table",
    "timed",
]

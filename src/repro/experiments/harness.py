"""Shared experiment infrastructure: timed runs and table rendering.

Each ``exp_*`` module computes one figure of Section 6 and returns plain
record lists; this harness renders them as the aligned text tables that
EXPERIMENTS.md records and the benchmark suite prints.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence


@dataclass
class Timer:
    """Wall-clock stopwatch usable as a context manager."""

    seconds: float = 0.0

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.seconds += time.perf_counter() - start


def timed(callable_, *args, **kwargs):
    """Run ``callable_`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class Table:
    """An aligned text table with a caption (one per paper artefact)."""

    caption: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        """The table as aligned text."""
        cells = [list(self.columns)] + [
            [_format(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[index]) for row in cells)
            for index in range(len(self.columns))
        ]
        lines = [self.caption]
        header = "  ".join(
            name.ljust(width) for name, width in zip(cells[0], widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def records_to_table(
    caption: str, records: Sequence[Dict[str, object]]
) -> Table:
    """Build a table from homogeneous dict records (keys become columns)."""
    if not records:
        return Table(caption, [])
    columns = list(records[0])
    table = Table(caption, columns)
    for record in records:
        table.add(*(record[column] for column in columns))
    return table

"""Shared experiment infrastructure: timed runs, specs, table rendering.

Each ``exp_*`` module computes one figure of Section 6 and returns plain
record lists; this harness renders them as the aligned text tables that
EXPERIMENTS.md records and the benchmark suite prints.  It also builds
the :class:`repro.api.ResolutionSpec` documents the experiments execute
through (:func:`resolution_spec_document`), so an experiment
configuration is the same kind of artifact a user would pass to
``repro match --spec``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.parser import format_md


def resolution_spec_document(
    pair,
    target,
    sigma,
    rcks=None,
    blocking: Optional[Dict[str, object]] = None,
    execution: Optional[Dict[str, object]] = None,
    top_k: int = 5,
) -> Dict[str, object]:
    """An experiment configuration as a raw ResolutionSpec document.

    ``sigma`` is a sequence of parsed MDs (serialized back to text) and
    ``rcks`` an optional sequence of :class:`~repro.core.rck.RelativeKey`
    to pin explicitly — experiments deduce keys with dataset-specific
    cost models, which the spec then records verbatim.  The result is a
    plain dict; validate/realize it with
    :meth:`repro.api.ResolutionSpec.from_dict`.
    """
    document: Dict[str, object] = {
        "version": 1,
        "schema": {
            "left": {
                "name": pair.left.name,
                "attributes": list(pair.left.attribute_names),
            },
            "right": {
                "name": pair.right.name,
                "attributes": list(pair.right.attribute_names),
            },
        },
        "target": {
            "left": list(target.left_list),
            "right": list(target.right_list),
        },
        "rules": {
            "mds": [format_md(dependency) for dependency in sigma],
            "top_k": top_k,
        },
    }
    if rcks is not None:
        document["rules"]["rcks"] = [
            [[atom.left, atom.right, atom.operator.name] for atom in key.atoms]
            for key in rcks
        ]
    if blocking is not None:
        document["blocking"] = dict(blocking)
    if execution is not None:
        document["execution"] = dict(execution)
    return document


@dataclass
class Timer:
    """Wall-clock stopwatch usable as a context manager."""

    seconds: float = 0.0

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.seconds += time.perf_counter() - start


def timed(callable_, *args, **kwargs):
    """Run ``callable_`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class Table:
    """An aligned text table with a caption (one per paper artefact)."""

    caption: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        """The table as aligned text."""
        cells = [list(self.columns)] + [
            [_format(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[index]) for row in cells)
            for index in range(len(self.columns))
        ]
        lines = [self.caption]
        header = "  ".join(
            name.ljust(width) for name, width in zip(cells[0], widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def records_to_table(
    caption: str, records: Sequence[Dict[str, object]]
) -> Table:
    """Build a table from homogeneous dict records (keys become columns)."""
    if not records:
        return Table(caption, [])
    columns = list(records[0])
    table = Table(caption, columns)
    for record in records:
        table.add(*(record[column] for column in columns))
    return table

"""Experiment 2 — Fellegi–Sunter with and without RCKs (Fig. 9(a–c)).

Protocol (Section 6.2):

* datasets of K credit/billing tuples with 80 % duplicates and noisy
  identity attributes, generated with ground truth;
* candidate pairs from windowing with a fixed window of 10, using the
  same sort keys for both configurations ("the same set of windowing keys
  were used in these experiments to make the evaluation fair");
* **FSrck**: comparison vector = union of the top five RCKs deduced from
  the 7 domain MDs by ``findRCKs``;
* **FS**: comparison vector = naive equality comparison of all target
  attribute pairs, with EM estimating the weights (the EM-picked
  configuration);
* both classified by posterior-odds threshold from their EM fits;
* report precision, recall and wall-clock time per K (Figs. 9(a), 9(b),
  9(c)).

The paper's K ranges over 10k–80k on a Java/Xeon stack; the default sizes
here are scaled (1k–8k) to keep pure-Python benchmark runs in minutes —
the *series shape* (who wins, trend with K) is the reproduction target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.findrcks import find_rcks
from repro.datagen.generator import MatchingDataset, generate_dataset
from repro.datagen.noise import NoiseModel
from repro.datagen.schemas import extended_mds
from repro.matching.comparison import equality_spec, union_of_rcks
from repro.matching.evaluate import evaluate_matches
from repro.matching.fellegi_sunter import FellegiSunter
from repro.matching.windowing import multi_pass_window_pairs, rck_sort_keys

from .harness import Table, timed

#: Scaled default K values (paper: 10k..80k).
DEFAULT_SIZES = (1000, 2000, 4000, 8000)

#: Number of RCKs whose union forms the FSrck comparison vector.
TOP_K_RCKS = 5


def prepare(
    size: int,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    window: int = 10,
):
    """Dataset + shared candidate pairs + deduced RCKs for one K.

    Returns ``(dataset, candidates, rcks)``.  Candidates come from one
    windowing pass sorted on RCK attributes — the same candidate set is
    fed to both matcher configurations.
    """
    dataset = generate_dataset(size, noise=noise, seed=seed)
    sigma = extended_mds(dataset.pair)
    rcks = deduce_rcks(dataset, sigma, m=TOP_K_RCKS)
    # Multi-pass windowing: one sort key per top RCK ("this process is
    # often repeated multiple times ..., each using a different key").
    keys = [rck_sort_keys([key]) for key in rcks[:3]]
    candidates = multi_pass_window_pairs(
        dataset.credit, dataset.billing, keys, window
    )
    return dataset, candidates, rcks


def deduce_rcks(dataset: MatchingDataset, sigma, m: int = TOP_K_RCKS):
    """findRCKs with the paper's full quality model.

    The ``lt`` (average value length) statistic is estimated from a small
    sample of the instance data, so the cost model can steer the deduced
    keys away from long, error-prone attributes (Section 5's stated
    rationale).  Accuracies default to 1, weights to (1, 1, 1) —
    Section 6.1's parameters — except that ``lt`` is normalized to [0, 1]
    so the three cost terms stay commensurate.
    """
    from repro.core.findrcks import pairing
    from repro.core.quality import CostModel, length_statistics_from_rows

    target = dataset.target
    pairs = pairing(list(sigma), target)
    sample_left = [row.values() for row in dataset.credit.rows()[:200]]
    sample_right = [row.values() for row in dataset.billing.rows()[:200]]
    lengths = length_statistics_from_rows(pairs, sample_left, sample_right)
    longest = max(lengths.values()) if lengths else 1.0
    normalized = {
        pair_: (value / longest if longest else 0.0)
        for pair_, value in lengths.items()
    }
    model = CostModel(lengths=normalized)
    return find_rcks(sigma, target, m=m, cost_model=model)


def run_point(
    size: int,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    window: int = 10,
) -> Dict[str, object]:
    """One K: run FS and FSrck, return the Fig. 9 record."""
    dataset, candidates, rcks = prepare(size, seed, noise, window)

    # FSrck: the union of the top five RCKs as the comparison vector.
    rck_spec = union_of_rcks(rcks)
    fs_rck = FellegiSunter(rck_spec)

    def run_rck():
        fs_rck.fit(dataset.credit, dataset.billing, candidates, seed=seed)
        return fs_rck.classify(dataset.credit, dataset.billing, candidates)

    rck_matches, rck_seconds = timed(run_rck)
    rck_quality = evaluate_matches(rck_matches, dataset.true_matches)

    # Baseline FS: naive equality vector over all target attribute pairs.
    base_spec = equality_spec(dataset.target.attribute_pairs())
    fs_base = FellegiSunter(base_spec)

    def run_base():
        fs_base.fit(dataset.credit, dataset.billing, candidates, seed=seed)
        return fs_base.classify(dataset.credit, dataset.billing, candidates)

    base_matches, base_seconds = timed(run_base)
    base_quality = evaluate_matches(base_matches, dataset.true_matches)

    return {
        "K": size,
        "FSrck precision": rck_quality.precision,
        "FS precision": base_quality.precision,
        "FSrck recall": rck_quality.recall,
        "FS recall": base_quality.recall,
        "FSrck seconds": rck_seconds,
        "FS seconds": base_seconds,
        "candidates": len(candidates),
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    window: int = 10,
) -> List[Dict[str, object]]:
    """Figs. 9(a–c): one record per K."""
    return [run_point(size, seed, noise, window) for size in sizes]


def render(records: Sequence[Dict[str, object]]) -> str:
    """The Fig. 9(a–c) series as a text table."""
    columns = [
        "K", "FSrck precision", "FS precision", "FSrck recall", "FS recall",
        "FSrck seconds", "FS seconds", "candidates",
    ]
    table = Table("Fig 9(a-c): Fellegi-Sunter with vs without RCKs", columns)
    for record in records:
        table.add(*(record[column] for column in columns))
    return table.render()

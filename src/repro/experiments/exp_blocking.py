"""Experiment 4 — blocking and windowing key quality (Figs. 9(d), 10(d)).

Protocol (Section 6.2, Exp-4):

* the same datasets as Exps 2–3;
* **RCK key**: three attributes from the top two deduced RCKs, with the
  name attribute Soundex-encoded before blocking;
* **manual key**: three manually chosen attributes (name — also
  Soundex-encoded — plus two plausible hand picks);
* report *pairs completeness* PC = sM/nM (Fig. 9(d)) and *reduction
  ratio* RR (Fig. 10(d)), both computed directly against the generator
  truth, "without relying on any particular matching method";
* the windowing variant (reported in the text as "comparable") repeats
  the comparison with sorted-window candidate generation.

Candidate generation runs through the enforcement kernel's pluggable
:class:`~repro.plan.blocking.BlockingBackend` implementations — the same
backends the batch matchers and the streaming engine execute.
:func:`run_kernel_point` additionally measures what compiling the rules
buys: direct RCK matching over the blocking candidates through a compiled
:class:`~repro.plan.compile.EnforcementPlan` (predicates deduplicated
across keys + similarity memo cache) versus the pre-refactor baseline
that re-evaluates every rule atom per pair
(``benchmarks/test_plan_kernel.py`` asserts the reduction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datagen.generator import generate_dataset
from repro.datagen.noise import NoiseModel
from repro.datagen.schemas import extended_mds
from repro.matching.evaluate import evaluate_reduction
from repro.plan.blocking import (
    BlockingBackend,
    HashBlockingBackend,
    RCKIndex,
    SortedNeighborhoodBackend,
    attribute_key,
    leading_attribute_pairs,
)
from repro.metrics.soundex import soundex

from .exp_fs import DEFAULT_SIZES, TOP_K_RCKS, deduce_rcks
from .harness import Table, resolution_spec_document, timed

#: The manual blocking key of the baseline: last name (Soundex-encoded),
#: street and zip — the name-plus-address key a practitioner would pick
#: first, which underuses the rule knowledge RCKs encode (street is long
#: and error-prone; the cost model steers RCKs to shorter attributes).
MANUAL_ATTRIBUTES = ("LN", "street", "zip")


def exp4_key_pairs(rcks):
    """The Exp-4 derived key: three attribute pairs from the top two RCKs.

    The one selection rule shared by every Exp-4 configuration (hash,
    windowing, and the spec-driven kernel benchmark).
    """
    pairs = leading_attribute_pairs(rcks[:2], attribute_count=3)
    if len(pairs) < 3:
        raise ValueError(
            f"the top RCKs only provide {len(pairs)} distinct attribute "
            "pairs, Exp-4 needs 3"
        )
    return pairs


def rck_backend(rcks, mode: str = "blocking", window: int = 10) -> BlockingBackend:
    """The RCK-derived candidate backend for one Exp-4 configuration.

    Blocking uses one hash pass over three attributes from the top two
    RCKs (names Soundex-encoded, per the paper); windowing slides the
    standard window over the same derived key.
    """
    pairs = exp4_key_pairs(rcks)
    index = RCKIndex("exp4-rck", pairs, encode_attributes=("FN", "LN"))
    if mode == "blocking":
        return HashBlockingBackend([index])
    return SortedNeighborhoodBackend(
        [(index.left_key, index.right_key)],
        window,
        "+".join(left for left, _ in pairs),
    )


def manual_backend(mode: str = "blocking", window: int = 10) -> BlockingBackend:
    """The baseline backend over the manually chosen key."""
    index = RCKIndex(
        "manual",
        [(attribute, attribute) for attribute in MANUAL_ATTRIBUTES],
        encode_attributes=("LN",),
    )
    if mode == "blocking":
        return HashBlockingBackend([index])
    return SortedNeighborhoodBackend(
        [(index.left_key, index.right_key)], window, "+".join(MANUAL_ATTRIBUTES)
    )


def manual_keys():
    """The baseline's manually chosen blocking/sorting key functions."""
    encoders = [soundex, None, None]
    return (
        attribute_key(list(MANUAL_ATTRIBUTES), encoders),
        attribute_key(list(MANUAL_ATTRIBUTES), encoders),
    )


def run_point(
    size: int,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    mode: str = "blocking",
    window: int = 10,
) -> Dict[str, object]:
    """One K: PC and RR for the RCK-derived key vs the manual key."""
    if mode not in ("blocking", "windowing"):
        raise ValueError(f"mode must be 'blocking' or 'windowing', got {mode}")
    dataset = generate_dataset(size, noise=noise, seed=seed)
    sigma = extended_mds(dataset.pair)
    rcks = deduce_rcks(dataset, sigma, m=TOP_K_RCKS)

    rck_candidates = rck_backend(rcks, mode, window).candidates(
        dataset.credit, dataset.billing
    )
    manual_candidates = manual_backend(mode, window).candidates(
        dataset.credit, dataset.billing
    )

    rck_reduction = evaluate_reduction(
        rck_candidates, dataset.true_matches, dataset.total_pairs
    )
    manual_reduction = evaluate_reduction(
        manual_candidates, dataset.true_matches, dataset.total_pairs
    )
    return {
        "K": size,
        "mode": mode,
        "RCK PC": rck_reduction.pairs_completeness,
        "manual PC": manual_reduction.pairs_completeness,
        "RCK RR": rck_reduction.reduction_ratio,
        "manual RR": manual_reduction.reduction_ratio,
        "RCK candidates": rck_reduction.candidate_count,
        "manual candidates": manual_reduction.candidate_count,
    }


def run_kernel_point(
    size: int,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    window: int = 10,
) -> Dict[str, object]:
    """Metric evaluations with and without the compiled kernel, one K.

    Runs the full enforcement chase over the Exp-4 RCK-blocking
    candidates twice: once through a cached plan (deduplicated predicates
    + similarity memo, re-used across chase rounds) and once uncached —
    the per-(pair, rule, atom, round) evaluation count of the
    pre-refactor path.  Both executions are driven through the
    declarative front door: one :func:`~repro.experiments.harness.resolution_spec_document`
    per configuration (explicit RCKs, the Exp-4 blocking key, cache
    on/off), realized as a :class:`repro.api.Workspace`.  Both must
    decide identical matches; the cached plan must charge strictly fewer
    metric evaluations (``benchmarks/test_plan_kernel.py`` pins this).
    """
    from repro.api import Workspace

    dataset = generate_dataset(size, noise=noise, seed=seed)
    sigma = extended_mds(dataset.pair)
    rcks = deduce_rcks(dataset, sigma, m=TOP_K_RCKS)
    key_pairs = exp4_key_pairs(rcks)
    base = resolution_spec_document(
        dataset.pair,
        dataset.target,
        sigma,
        rcks=rcks,
        blocking={
            "backend": "hash",
            "key_pairs": [list(pair) for pair in key_pairs],
            "encode": ["FN", "LN"],
            "window": window,
        },
        execution={"mode": "enforce", "cache": True},
    )
    naive_document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        sigma,
        rcks=rcks,
        blocking=base["blocking"],
        execution={"mode": "enforce", "cache": False},
    )
    kernel_workspace = Workspace.from_dict(base)
    naive_workspace = Workspace.from_dict(naive_document)
    candidates = kernel_workspace.candidates(dataset.credit, dataset.billing)

    def decide(workspace):
        report = workspace.enforce(
            dataset.credit,
            dataset.billing,
            candidates=candidates,
            provenance=False,
        )
        return list(report.matches)

    kernel_matches, kernel_seconds = timed(decide, kernel_workspace)
    naive_matches, naive_seconds = timed(decide, naive_workspace)
    if kernel_matches != naive_matches:  # pragma: no cover - sanity guard
        raise AssertionError("kernel and naive paths disagree on matches")
    kernel = kernel_workspace.plan
    naive = naive_workspace.plan
    return {
        "K": size,
        "candidates": len(candidates),
        "matches": len(kernel_matches),
        "plan evaluations": kernel.stats.metric_evaluations,
        "plan cache hits": kernel.stats.cache_hits,
        "naive evaluations": naive.stats.metric_evaluations,
        "evaluation saving": (
            1.0 - kernel.stats.metric_evaluations / naive.stats.metric_evaluations
            if naive.stats.metric_evaluations
            else 0.0
        ),
        "plan seconds": kernel_seconds,
        "naive seconds": naive_seconds,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    mode: str = "blocking",
    window: int = 10,
) -> List[Dict[str, object]]:
    """Figs. 9(d)/10(d) (mode='blocking') or the windowing variant."""
    return [run_point(size, seed, noise, mode, window) for size in sizes]


def render(records: Sequence[Dict[str, object]]) -> str:
    """The PC/RR series as a text table."""
    columns = [
        "K", "mode", "RCK PC", "manual PC", "RCK RR", "manual RR",
        "RCK candidates", "manual candidates",
    ]
    table = Table(
        "Fig 9(d)/10(d): pairs completeness and reduction ratio", columns
    )
    for record in records:
        table.add(*(record[column] for column in columns))
    return table.render()

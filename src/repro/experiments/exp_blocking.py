"""Experiment 4 — blocking and windowing key quality (Figs. 9(d), 10(d)).

Protocol (Section 6.2, Exp-4):

* the same datasets as Exps 2–3;
* **RCK key**: three attributes from the top two deduced RCKs, with the
  name attribute Soundex-encoded before blocking;
* **manual key**: three manually chosen attributes (name — also
  Soundex-encoded — plus two plausible hand picks);
* report *pairs completeness* PC = sM/nM (Fig. 9(d)) and *reduction
  ratio* RR (Fig. 10(d)), both computed directly against the generator
  truth, "without relying on any particular matching method";
* the windowing variant (reported in the text as "comparable") repeats
  the comparison with sorted-window candidate generation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datagen.generator import generate_dataset
from repro.datagen.noise import NoiseModel
from repro.datagen.schemas import extended_mds
from repro.matching.blocking import (
    attribute_key,
    block_pairs,
    rck_blocking_keys,
)
from repro.matching.evaluate import evaluate_reduction
from repro.matching.windowing import window_pairs
from repro.metrics.soundex import soundex

from .exp_fs import DEFAULT_SIZES, TOP_K_RCKS, deduce_rcks
from .harness import Table

#: The manual blocking key of the baseline: last name (Soundex-encoded),
#: street and zip — the name-plus-address key a practitioner would pick
#: first, which underuses the rule knowledge RCKs encode (street is long
#: and error-prone; the cost model steers RCKs to shorter attributes).
MANUAL_ATTRIBUTES = ("LN", "street", "zip")


def manual_keys():
    """The baseline's manually chosen blocking/sorting key functions."""
    encoders = [soundex, None, None]
    return (
        attribute_key(list(MANUAL_ATTRIBUTES), encoders),
        attribute_key(list(MANUAL_ATTRIBUTES), encoders),
    )


def run_point(
    size: int,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    mode: str = "blocking",
    window: int = 10,
) -> Dict[str, object]:
    """One K: PC and RR for the RCK-derived key vs the manual key."""
    if mode not in ("blocking", "windowing"):
        raise ValueError(f"mode must be 'blocking' or 'windowing', got {mode}")
    dataset = generate_dataset(size, noise=noise, seed=seed)
    sigma = extended_mds(dataset.pair)
    rcks = deduce_rcks(dataset, sigma, m=TOP_K_RCKS)

    rck_left, rck_right = rck_blocking_keys(rcks[:2], attribute_count=3)
    man_left, man_right = manual_keys()

    if mode == "blocking":
        rck_candidates = block_pairs(
            dataset.credit, dataset.billing, rck_left, rck_right
        )
        manual_candidates = block_pairs(
            dataset.credit, dataset.billing, man_left, man_right
        )
    else:
        rck_candidates = window_pairs(
            dataset.credit, dataset.billing, rck_left, rck_right, window
        )
        manual_candidates = window_pairs(
            dataset.credit, dataset.billing, man_left, man_right, window
        )

    rck_reduction = evaluate_reduction(
        rck_candidates, dataset.true_matches, dataset.total_pairs
    )
    manual_reduction = evaluate_reduction(
        manual_candidates, dataset.true_matches, dataset.total_pairs
    )
    return {
        "K": size,
        "mode": mode,
        "RCK PC": rck_reduction.pairs_completeness,
        "manual PC": manual_reduction.pairs_completeness,
        "RCK RR": rck_reduction.reduction_ratio,
        "manual RR": manual_reduction.reduction_ratio,
        "RCK candidates": rck_reduction.candidate_count,
        "manual candidates": manual_reduction.candidate_count,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    mode: str = "blocking",
    window: int = 10,
) -> List[Dict[str, object]]:
    """Figs. 9(d)/10(d) (mode='blocking') or the windowing variant."""
    return [run_point(size, seed, noise, mode, window) for size in sizes]


def render(records: Sequence[Dict[str, object]]) -> str:
    """The PC/RR series as a text table."""
    columns = [
        "K", "mode", "RCK PC", "manual PC", "RCK RR", "manual RR",
        "RCK candidates", "manual candidates",
    ]
    table = Table(
        "Fig 9(d)/10(d): pairs completeness and reduction ratio", columns
    )
    for record in records:
        table.add(*(record[column] for column in columns))
    return table.render()

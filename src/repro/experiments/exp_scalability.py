"""Experiment 1 — scalability of ``findRCKs``/``MDClosure`` (Fig. 8).

Three series, exactly as in Section 6.1:

* Fig. 8(a): runtime of ``findRCKs`` vs the number of MDs (card(Σ) from
  200 to 2000, step 200) at m = 20, for |Y1| ∈ {6, 8, 10, 12};
* Fig. 8(b): runtime vs the number m of requested RCKs (5..50, step 5) at
  card(Σ) = 2000;
* Fig. 8(c): the *total* number of RCKs deducible from small Σ
  (card(Σ) = 10..40, step 10).

MD sets come from the random workload generator
(:mod:`repro.datagen.mdgen`), as in the paper.  Sizes are parameters so the
benchmark suite can run scaled-down versions quickly; the defaults match
the paper's axes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.findrcks import find_rcks
from repro.datagen.mdgen import generate_workload

from .harness import Table, timed

#: The paper's |Y1| series.
DEFAULT_Y_LENGTHS = (6, 8, 10, 12)


def fig8a(
    card_values: Sequence[int] = tuple(range(200, 2001, 200)),
    y_lengths: Sequence[int] = DEFAULT_Y_LENGTHS,
    m: int = 20,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Fig. 8(a): findRCKs runtime vs card(Σ), one record per point."""
    records: List[Dict[str, object]] = []
    for y_length in y_lengths:
        for card in card_values:
            workload = generate_workload(
                md_count=card, target_length=y_length, seed=seed
            )
            _, seconds = timed(
                find_rcks, workload.sigma, workload.target, m
            )
            records.append(
                {
                    "card(Sigma)": card,
                    "|Y1|": y_length,
                    "m": m,
                    "seconds": seconds,
                }
            )
    return records


def fig8b(
    m_values: Sequence[int] = tuple(range(5, 51, 5)),
    card: int = 2000,
    y_lengths: Sequence[int] = DEFAULT_Y_LENGTHS,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Fig. 8(b): findRCKs runtime vs m at fixed card(Σ)."""
    records: List[Dict[str, object]] = []
    for y_length in y_lengths:
        workload = generate_workload(
            md_count=card, target_length=y_length, seed=seed
        )
        for m in m_values:
            _, seconds = timed(
                find_rcks, workload.sigma, workload.target, m
            )
            records.append(
                {
                    "m": m,
                    "|Y1|": y_length,
                    "card(Sigma)": card,
                    "seconds": seconds,
                }
            )
    return records


def fig8c(
    card_values: Sequence[int] = (10, 20, 30, 40),
    y_lengths: Sequence[int] = DEFAULT_Y_LENGTHS,
    seed: int = 0,
    limit: int = 500,
) -> List[Dict[str, object]]:
    """Fig. 8(c): total number of RCKs deducible from small MD sets.

    The workloads use a *sparser* generator configuration (wide schemas,
    short LHSs, single-pair RHSs, low target bias) than Figs. 8(a,b): the
    paper's Fig. 8(c) reports 5–50 total RCKs, which implies loosely
    interacting rule sets; dense random MDs have combinatorially many
    minimal keys (the exponential worst case of Section 5).  Counts are
    capped at ``limit`` — a capped cell reports ``limit``.
    """
    records: List[Dict[str, object]] = []
    for y_length in y_lengths:
        for card in card_values:
            workload = generate_workload(
                md_count=card,
                target_length=y_length,
                arity=4 * y_length,
                max_lhs=2,
                max_rhs=1,
                rhs_target_bias=0.2,
                seed=seed,
            )
            keys = find_rcks(workload.sigma, workload.target, m=limit)
            records.append(
                {
                    "card(Sigma)": card,
                    "|Y1|": y_length,
                    "total RCKs": len(keys),
                }
            )
    return records


def render_fig8(records_a, records_b, records_c) -> str:
    """Render all three panels as text tables."""
    tables = []
    for caption, columns, records in (
        ("Fig 8(a): findRCKs runtime vs card(Sigma)",
         ["card(Sigma)", "|Y1|", "m", "seconds"], records_a),
        ("Fig 8(b): findRCKs runtime vs m",
         ["m", "|Y1|", "card(Sigma)", "seconds"], records_b),
        ("Fig 8(c): total number of RCKs",
         ["card(Sigma)", "|Y1|", "total RCKs"], records_c),
    ):
        table = Table(caption, columns)
        for record in records:
            table.add(*(record[column] for column in columns))
        tables.append(table.render())
    return "\n\n".join(tables)

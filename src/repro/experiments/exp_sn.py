"""Experiment 3 — Sorted Neighborhood with and without RCKs (Fig. 10(a–c)).

Protocol (Section 6.2):

* the same datasets and windowing keys as Exp-2;
* **SN**: the 25 hand-written equational-theory rules (the [20]-style
  baseline of :func:`repro.matching.rules.default_person_rules`);
* **SNrck**: rules derived from the union of the top five RCKs;
* window size 10; report precision, recall and wall-clock time per K.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datagen.noise import NoiseModel
from repro.matching.evaluate import evaluate_matches
from repro.matching.rules import default_person_rules, rules_from_rcks
from repro.matching.sorted_neighborhood import SortedNeighborhood

from .exp_fs import DEFAULT_SIZES, prepare
from .harness import Table, timed


def run_point(
    size: int,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    window: int = 10,
) -> Dict[str, object]:
    """One K: run SN (25 hand rules) and SNrck (top-5 RCK rules)."""
    dataset, candidates, rcks = prepare(size, seed, noise, window)

    sn_rck = SortedNeighborhood(rules_from_rcks(rcks), window=window)
    rck_result, rck_seconds = timed(
        sn_rck.run_on_candidates, dataset.credit, dataset.billing, candidates
    )
    rck_quality = evaluate_matches(rck_result.matches, dataset.true_matches)

    sn_base = SortedNeighborhood(default_person_rules(), window=window)
    base_result, base_seconds = timed(
        sn_base.run_on_candidates, dataset.credit, dataset.billing, candidates
    )
    base_quality = evaluate_matches(base_result.matches, dataset.true_matches)

    return {
        "K": size,
        "SNrck precision": rck_quality.precision,
        "SN precision": base_quality.precision,
        "SNrck recall": rck_quality.recall,
        "SN recall": base_quality.recall,
        "SNrck seconds": rck_seconds,
        "SN seconds": base_seconds,
        "candidates": len(candidates),
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
    window: int = 10,
) -> List[Dict[str, object]]:
    """Figs. 10(a–c): one record per K."""
    return [run_point(size, seed, noise, window) for size in sizes]


def render(records: Sequence[Dict[str, object]]) -> str:
    """The Fig. 10(a–c) series as a text table."""
    columns = [
        "K", "SNrck precision", "SN precision", "SNrck recall", "SN recall",
        "SNrck seconds", "SN seconds", "candidates",
    ]
    table = Table(
        "Fig 10(a-c): Sorted Neighborhood with vs without RCKs", columns
    )
    for record in records:
        table.add(*(record[column] for column in columns))
    return table.render()

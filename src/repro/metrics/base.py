"""Foundations for string similarity metrics.

The paper (Section 2.1) assumes a fixed set Θ of *similarity operators*,
each of which is a binary relation over a domain satisfying three generic
axioms:

* reflexivity:      ``x ≈ x``
* symmetry:         ``x ≈ y  implies  y ≈ x``
* subsumption of equality: ``x = y  implies  x ≈ y``

and, except for equality itself, *not* assumed transitive.

A :class:`StringMetric` is a numeric scorer (similarity in ``[0, 1]`` where
``1`` means identical).  A thresholded metric gives a similarity *operator*
in the sense of the paper: ``x ≈ y  iff  sim(x, y) >= θ``.  Because every
metric defined here returns ``1.0`` on equal inputs and is symmetric in its
arguments, thresholded operators automatically satisfy the generic axioms.

The concrete metrics live in sibling modules (:mod:`repro.metrics.levenshtein`,
:mod:`repro.metrics.jaro`, ...).  They are registered with
:mod:`repro.metrics.registry` so that similarity *operator names* used inside
matching dependencies (e.g. ``"dl(0.8)"``) can be resolved to executable
predicates at match time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable


class StringMetric(abc.ABC):
    """A symmetric similarity scorer mapping a pair of strings to [0, 1].

    Subclasses implement :meth:`similarity`.  A score of ``1.0`` means the
    two values are considered identical by the metric; ``0.0`` means
    maximally dissimilar.
    """

    #: Short machine name used in operator identifiers, e.g. ``"lev"``.
    name: str = "metric"

    @abc.abstractmethod
    def similarity(self, left: str, right: str) -> float:
        """Return the normalized similarity of ``left`` and ``right``."""

    def distance(self, left: str, right: str) -> float:
        """Return ``1 - similarity`` (a normalized dissimilarity)."""
        return 1.0 - self.similarity(left, right)

    def similar(self, left: str, right: str, theta: float) -> bool:
        """Decide ``sim(left, right) >= theta``.

        Subclasses may override with a cheaper decision procedure (edit
        metrics use a banded dynamic program with early abort); the default
        computes the full similarity.
        """
        return self.similarity(left, right) >= theta

    def thresholded(self, theta: float) -> "ThresholdOperator":
        """Build a similarity *operator* ``x ≈ y iff sim(x,y) >= theta``."""
        return ThresholdOperator(self, theta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass(frozen=True)
class ThresholdOperator:
    """A similarity operator obtained by thresholding a metric.

    This is the executable counterpart of the paper's ``≈`` operators: a
    reflexive, symmetric relation that subsumes equality (both properties
    are inherited from the metric being symmetric and returning 1.0 on equal
    inputs, provided ``theta <= 1``).

    Parameters
    ----------
    metric:
        The underlying scorer.
    theta:
        Similarity threshold in ``[0, 1]``.  ``x ≈ y`` iff
        ``metric.similarity(x, y) >= theta``.
    """

    metric: StringMetric
    theta: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError(f"theta must be in [0, 1], got {self.theta}")

    @property
    def name(self) -> str:
        """Canonical operator identifier, e.g. ``"lev(0.8)"``."""
        return f"{self.metric.name}({self.theta:g})"

    def __call__(self, left: object, right: object) -> bool:
        if left is None or right is None:
            # Nulls are similar to nothing, not even themselves: a missing
            # value carries no evidence of identity.
            return False
        left_s, right_s = str(left), str(right)
        if left_s == right_s:
            # Subsumption of equality holds regardless of the metric.
            return True
        return self.metric.similar(left_s, right_s, self.theta)


def exact_equality(left: object, right: object) -> bool:
    """The equality operator ``=`` of the paper.

    Unlike similarity operators, equality on nulls is still false: two
    missing values give no evidence that the records match.
    """
    if left is None or right is None:
        return False
    return left == right


#: Type alias for anything usable as an executable similarity predicate.
SimilarityPredicate = Callable[[object, object], bool]

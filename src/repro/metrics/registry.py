"""Resolution of similarity-operator *names* to executable predicates.

Matching dependencies refer to similarity operators symbolically — the
closure algorithms of the paper never evaluate a metric, they only reason
about operator identity (Section 3.1: the reasoning mechanism is *generic*,
assuming only the axioms).  At match time, however, the matcher must turn an
operator name like ``"dl(0.8)"`` into a predicate over attribute values.

This module is the bridge: a registry mapping metric names to
:class:`~repro.metrics.base.StringMetric` factories, plus a parser for the
``name(theta)`` operator syntax.  The special name ``"="`` resolves to exact
equality.
"""

from __future__ import annotations

import re
from typing import Callable, Dict

from .base import SimilarityPredicate, StringMetric, exact_equality
from .damerau_levenshtein import DamerauLevenshtein
from .jaccard import Jaccard
from .jaro import Jaro, JaroWinkler
from .levenshtein import Levenshtein
from .qgrams import QGram
from .soundex import SoundexMetric

#: Operator name for plain equality, as used in comparison vectors.
EQ = "="

_OPERATOR_RE = re.compile(r"^([A-Za-z][A-Za-z0-9_]*)\((0(?:\.\d+)?|1(?:\.0+)?)\)$")


class MetricRegistry:
    """A name → metric-factory table with operator-name resolution."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], StringMetric]] = {}
        self._cache: Dict[str, SimilarityPredicate] = {}

    def register(self, name: str, factory: Callable[[], StringMetric]) -> None:
        """Register a metric factory under ``name``.

        Re-registering a name replaces the previous factory and invalidates
        cached predicates built from it.
        """
        self._factories[name] = factory
        stale = [op for op in self._cache if op.split("(")[0] == name]
        for op in stale:
            del self._cache[op]

    def alias(self, name: str, existing: str) -> None:
        """Bind ``name`` to the factory already registered as ``existing``.

        This is how a :class:`repro.api.ResolutionSpec` metric binding is
        realized: MD text may then use ``name(theta)`` operators that
        resolve to the ``existing`` metric.
        """
        try:
            factory = self._factories[existing]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise KeyError(
                f"unknown metric {existing!r}; registered metrics: {known}"
            ) from None
        self.register(name, factory)

    def metric(self, name: str) -> StringMetric:
        """Instantiate the metric registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise KeyError(
                f"unknown metric {name!r}; registered metrics: {known}"
            ) from None
        return factory()

    def known_metrics(self) -> list:
        """Return the sorted list of registered metric names."""
        return sorted(self._factories)

    def resolve(self, operator_name: str) -> SimilarityPredicate:
        """Resolve an operator name to an executable predicate.

        ``"="`` resolves to exact equality; ``"metric(theta)"`` resolves to
        the thresholded metric.  Results are cached per operator name.

        >>> registry = default_registry()
        >>> op = registry.resolve("dl(0.8)")
        >>> op("Mark", "Marx")
        True
        >>> registry.resolve("=")("a", "a")
        True
        """
        if operator_name == EQ:
            return exact_equality
        cached = self._cache.get(operator_name)
        if cached is not None:
            return cached
        match = _OPERATOR_RE.match(operator_name)
        if match is None:
            raise ValueError(
                f"malformed operator name {operator_name!r}; expected '=' or "
                "'metric(theta)' with theta in [0, 1]"
            )
        metric_name, theta_text = match.groups()
        predicate = self.metric(metric_name).thresholded(float(theta_text))
        self._cache[operator_name] = predicate
        return predicate


def default_registry() -> MetricRegistry:
    """Return a registry pre-populated with every metric in this package."""
    registry = MetricRegistry()
    registry.register("lev", Levenshtein)
    registry.register("dl", DamerauLevenshtein)
    registry.register("jaro", Jaro)
    registry.register("jw", JaroWinkler)
    registry.register("qgram2", lambda: QGram(2))
    registry.register("qgram3", lambda: QGram(3))
    registry.register("jaccard", Jaccard)
    registry.register("soundex", SoundexMetric)
    return registry


#: Module-level registry used by the matching layer unless overridden.
DEFAULT_REGISTRY = default_registry()

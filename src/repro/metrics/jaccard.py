"""Token-level Jaccard similarity.

Useful for multi-word fields (addresses, item descriptions) where word
order and small word-level differences matter more than character edits.
"""

from __future__ import annotations

import re

from .base import StringMetric

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)


def tokenize(value: str) -> frozenset:
    """Split ``value`` into a set of lower-cased alphanumeric tokens.

    >>> sorted(tokenize("10 Oak Street, MH"))
    ['10', 'mh', 'oak', 'street']
    """
    return frozenset(match.group(0).lower() for match in _TOKEN_RE.finditer(value))


def jaccard_similarity(left: str, right: str) -> float:
    """Jaccard coefficient of the token sets, in ``[0, 1]``.

    >>> jaccard_similarity("10 Oak Street", "10 Oak St")
    0.5
    """
    if left == right:
        return 1.0
    tokens_left = tokenize(left)
    tokens_right = tokenize(right)
    if not tokens_left and not tokens_right:
        return 1.0
    union = tokens_left | tokens_right
    if not union:
        return 1.0
    return len(tokens_left & tokens_right) / len(union)


class Jaccard(StringMetric):
    """Token Jaccard similarity as a :class:`StringMetric`."""

    name = "jaccard"

    def similarity(self, left: str, right: str) -> float:
        return jaccard_similarity(left, right)

"""String similarity metrics and phonetic encodings.

This subpackage is the similarity substrate of the reproduction: every
metric named in Section 2.1 of the paper (edit distance, Jaro, q-grams) and
the Damerau–Levenshtein metric used in Section 6, plus the Soundex encoder
used for blocking keys.

Typical use::

    from repro.metrics import DamerauLevenshtein, DEFAULT_REGISTRY

    dl08 = DamerauLevenshtein().thresholded(0.8)
    assert dl08("Mark", "Marx")

    # or by operator name, as stored inside matching dependencies:
    assert DEFAULT_REGISTRY.resolve("dl(0.8)")("Mark", "Marx")
"""

from .base import (
    SimilarityPredicate,
    StringMetric,
    ThresholdOperator,
    exact_equality,
)
from .damerau_levenshtein import (
    PAPER_THETA,
    DamerauLevenshtein,
    damerau_levenshtein_distance,
    paper_dl_operator,
)
from .jaccard import Jaccard, jaccard_similarity, tokenize
from .jaro import Jaro, JaroWinkler, jaro_similarity, jaro_winkler_similarity
from .levenshtein import Levenshtein, levenshtein_distance
from .qgrams import QGram, qgram_profile, qgram_similarity
from .registry import DEFAULT_REGISTRY, EQ, MetricRegistry, default_registry
from .soundex import SoundexMetric, soundex

__all__ = [
    "DEFAULT_REGISTRY",
    "EQ",
    "DamerauLevenshtein",
    "Jaccard",
    "Jaro",
    "JaroWinkler",
    "Levenshtein",
    "MetricRegistry",
    "PAPER_THETA",
    "QGram",
    "SimilarityPredicate",
    "SoundexMetric",
    "StringMetric",
    "ThresholdOperator",
    "damerau_levenshtein_distance",
    "default_registry",
    "exact_equality",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "paper_dl_operator",
    "qgram_profile",
    "qgram_similarity",
    "soundex",
    "tokenize",
]

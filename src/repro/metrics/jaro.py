"""Jaro and Jaro–Winkler similarity.

The Jaro distance is one of the similarity metrics the paper lists as usable
inside matching dependencies (Section 2.1).  It was designed for short
person-name strings at the US Census Bureau (Jaro 1989, one of the paper's
baselines [21]) and rewards common characters and low transposition counts.
Jaro–Winkler boosts the score of strings sharing a common prefix, which
works well for names.
"""

from __future__ import annotations

from .base import StringMetric


def jaro_similarity(left: str, right: str) -> float:
    """Return the Jaro similarity of two strings in ``[0, 1]``.

    >>> round(jaro_similarity("MARTHA", "MARHTA"), 4)
    0.9444
    >>> jaro_similarity("abc", "abc")
    1.0
    >>> jaro_similarity("", "abc")
    0.0
    """
    if left == right:
        return 1.0
    n, m = len(left), len(right)
    if n == 0 or m == 0:
        return 0.0

    # Characters match when equal and within half the longer length.
    window = max(n, m) // 2 - 1
    if window < 0:
        window = 0

    left_taken = [False] * n
    right_taken = [False] * m
    matches = 0
    for i, ch in enumerate(left):
        lo = max(0, i - window)
        hi = min(m, i + window + 1)
        for j in range(lo, hi):
            if not right_taken[j] and right[j] == ch:
                left_taken[i] = True
                right_taken[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions among the matched characters, in order.
    transpositions = 0
    j = 0
    for i in range(n):
        if left_taken[i]:
            while not right_taken[j]:
                j += 1
            if left[i] != right[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    return (
        matches / n + matches / m + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str, right: str, prefix_scale: float = 0.1, max_prefix: int = 4
) -> float:
    """Return the Jaro–Winkler similarity (prefix-boosted Jaro).

    >>> jaro_winkler_similarity("MARTHA", "MARHTA") > jaro_similarity("MARTHA", "MARHTA")
    True
    """
    jaro = jaro_similarity(left, right)
    prefix = 0
    for ch_left, ch_right in zip(left, right):
        if ch_left != ch_right or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


class Jaro(StringMetric):
    """Jaro similarity as a :class:`StringMetric`."""

    name = "jaro"

    def similarity(self, left: str, right: str) -> float:
        return jaro_similarity(left, right)


class JaroWinkler(StringMetric):
    """Jaro–Winkler similarity as a :class:`StringMetric`."""

    name = "jw"

    def __init__(self, prefix_scale: float = 0.1, max_prefix: int = 4):
        if not 0.0 <= prefix_scale <= 0.25:
            raise ValueError(
                "prefix_scale must be in [0, 0.25] to keep scores in [0, 1]"
            )
        self.prefix_scale = prefix_scale
        self.max_prefix = max_prefix

    def similarity(self, left: str, right: str) -> float:
        return jaro_winkler_similarity(
            left, right, self.prefix_scale, self.max_prefix
        )

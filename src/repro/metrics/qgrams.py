"""q-gram based similarity.

q-grams (character n-grams) are another metric family the paper names in
Section 2.1.  A string is represented by its multiset of overlapping
length-q substrings (padded at the boundaries so every character appears in
q grams), and two strings are compared by multiset overlap (Dice
coefficient by default).  q-grams are robust to small local edits and are
popular for longer fields such as street addresses.
"""

from __future__ import annotations

from collections import Counter

from .base import StringMetric

#: Padding character used at string boundaries; chosen outside the usual
#: data alphabet so padded grams never collide with real content.
PAD = "\x00"


def qgram_profile(value: str, q: int = 2, pad: bool = True) -> Counter:
    """Return the multiset of q-grams of ``value`` as a Counter.

    With ``pad=True`` the string is framed with ``q - 1`` pad characters on
    each side, so a string of length L yields ``L + q - 1`` grams and
    single-character differences at the boundary are penalized like interior
    ones.

    >>> sorted(qgram_profile("ab", q=2, pad=False))
    ['ab']
    >>> len(qgram_profile("ab", q=2, pad=True))
    3
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if pad and q > 1:
        value = PAD * (q - 1) + value + PAD * (q - 1)
    if len(value) < q:
        return Counter()
    return Counter(value[i : i + q] for i in range(len(value) - q + 1))


def qgram_similarity(left: str, right: str, q: int = 2) -> float:
    """Dice similarity over padded q-gram multisets, in ``[0, 1]``.

    ``2 * |P(left) ∩ P(right)| / (|P(left)| + |P(right)|)`` where the
    intersection is multiset-valued.
    """
    if left == right:
        return 1.0
    profile_left = qgram_profile(left, q)
    profile_right = qgram_profile(right, q)
    total = sum(profile_left.values()) + sum(profile_right.values())
    if total == 0:
        return 1.0
    shared = sum((profile_left & profile_right).values())
    return 2.0 * shared / total


class QGram(StringMetric):
    """Dice-coefficient q-gram similarity as a :class:`StringMetric`."""

    def __init__(self, q: int = 2):
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"qgram{self.q}"

    def similarity(self, left: str, right: str) -> float:
        return qgram_similarity(left, right, self.q)

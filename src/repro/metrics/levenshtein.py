"""Levenshtein (edit) distance and its normalized similarity.

The classic dynamic-programming edit distance: the minimum number of
single-character insertions, deletions and substitutions needed to turn one
string into another.  The normalized similarity follows the convention used
by SimMetrics (the library the paper uses for its DL metric):

    ``sim(v, v') = 1 - dist(v, v') / max(|v|, |v'|)``

so that ``v ≈_θ v'`` iff ``dist(v, v') <= (1 - θ) * max(|v|, |v'|)``,
exactly the thresholding rule of Section 6.2.
"""

from __future__ import annotations

from .base import StringMetric


def levenshtein_distance(left: str, right: str) -> int:
    """Return the Levenshtein edit distance between two strings.

    Uses the two-row dynamic program: ``O(|left| * |right|)`` time and
    ``O(min(|left|, |right|))`` space.

    >>> levenshtein_distance("kitten", "sitting")
    3
    >>> levenshtein_distance("", "abc")
    3
    """
    if left == right:
        return 0
    # Ensure the inner loop runs over the longer string: the row we keep is
    # proportional to len(right).
    if len(left) < len(right):
        left, right = right, left
    if not right:
        return len(left)

    previous = list(range(len(right) + 1))
    for i, ch_left in enumerate(left, start=1):
        current = [i]
        for j, ch_right in enumerate(right, start=1):
            cost = 0 if ch_left == ch_right else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


class Levenshtein(StringMetric):
    """Normalized Levenshtein similarity in ``[0, 1]``."""

    name = "lev"

    def similarity(self, left: str, right: str) -> float:
        if left == right:
            return 1.0
        longest = max(len(left), len(right))
        if longest == 0:
            return 1.0
        return 1.0 - levenshtein_distance(left, right) / longest

    def similar(self, left: str, right: str, theta: float) -> bool:
        """Threshold check with a length-difference early exit.

        The length gap is a lower bound on the edit distance, so pairs
        whose lengths differ by more than the allowed budget are rejected
        without running the dynamic program.
        """
        longest = max(len(left), len(right))
        if longest == 0:
            return True
        budget = (1.0 - theta) * longest
        if abs(len(left) - len(right)) > budget:
            return False
        return levenshtein_distance(left, right) <= budget

"""Constant transformations / synonym rules — Section 8's second extension.

"One can augment similarity relations with constants, to capture
domain-specific synonym rules along the same lines as [3, 5, 23]" — e.g.
``"United States" → "USA"``, ``"Street" → "St"``, ``"Bill" → "William"``.

:class:`SynonymTable` normalizes values by replacing whole tokens (and
optionally whole values) with canonical forms; :class:`SynonymizedMetric`
wraps any base metric so similarity is computed on normalized values.  The
wrapped metric still satisfies the generic axioms of Section 2.1
(normalization is a function, so reflexivity/symmetry/equality-subsumption
are preserved), which makes the resulting thresholded operators legal
members of Θ — they can appear inside MDs like any other operator.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Mapping, Tuple

from .base import StringMetric

_TOKEN_RE = re.compile(r"[^\W_]+|\S", re.UNICODE)


class SynonymTable:
    """Canonical-form lookup for tokens and whole values.

    Mappings are case-insensitive; the canonical form is kept as given.
    Chains are resolved at construction ("Wm" → "Bill" → "William"
    becomes "Wm" → "William"); cycles are rejected.
    """

    def __init__(
        self,
        token_synonyms: Mapping[str, str] | None = None,
        value_synonyms: Mapping[str, str] | None = None,
    ) -> None:
        self._tokens = self._resolve(token_synonyms or {})
        self._values = self._resolve(value_synonyms or {})

    @staticmethod
    def _resolve(mapping: Mapping[str, str]) -> Dict[str, str]:
        lowered = {key.lower(): value for key, value in mapping.items()}
        resolved: Dict[str, str] = {}
        for key in lowered:
            seen = {key}
            current = lowered[key]
            while current.lower() in lowered:
                nxt = lowered[current.lower()]
                if nxt.lower() in seen or nxt.lower() == current.lower():
                    raise ValueError(
                        f"synonym cycle involving {current!r}"
                    )
                seen.add(current.lower())
                current = nxt
            resolved[key] = current
        return resolved

    def canonical_token(self, token: str) -> str:
        """The canonical form of one token (itself when unmapped)."""
        return self._tokens.get(token.lower(), token)

    def normalize(self, value: str) -> str:
        """Normalize a whole value: value-level mapping, then per token.

        >>> table = SynonymTable({"St": "Street"}, {"USA": "United States"})
        >>> table.normalize("10 Oak St")
        '10 Oak Street'
        >>> table.normalize("usa")
        'United States'
        """
        whole = self._values.get(value.lower())
        if whole is not None:
            return whole
        tokens = _TOKEN_RE.findall(value)
        if not tokens:
            return value
        normalized = [self.canonical_token(token) for token in tokens]
        return " ".join(
            token for token in normalized if token.strip()
        ) if normalized != tokens else value

    def __len__(self) -> int:
        return len(self._tokens) + len(self._values)


def us_address_synonyms() -> SynonymTable:
    """A starter table for US postal data (the [3, 5] flavour)."""
    return SynonymTable(
        token_synonyms={
            "St": "Street", "Ave": "Avenue", "Rd": "Road", "Dr": "Drive",
            "Ln": "Lane", "Ct": "Court", "Pl": "Place", "Blvd": "Boulevard",
            "Apt": "Apartment", "N": "North", "S": "South", "E": "East",
            "W": "West",
        },
        value_synonyms={
            "USA": "United States",
            "U.S.": "United States",
            "U.S.A.": "United States",
        },
    )


def common_nickname_synonyms() -> SynonymTable:
    """First-name nicknames → formal names."""
    return SynonymTable(
        token_synonyms={
            "Bill": "William", "Wm": "William", "Bob": "Robert",
            "Rob": "Robert", "Dick": "Richard", "Rick": "Richard",
            "Jim": "James", "Jimmy": "James", "Mike": "Michael",
            "Tom": "Thomas", "Tony": "Anthony", "Liz": "Elizabeth",
            "Beth": "Elizabeth", "Kate": "Katherine", "Kathy": "Katherine",
            "Peggy": "Margaret", "Maggie": "Margaret", "Jack": "John",
            "Ted": "Edward", "Ed": "Edward", "Chuck": "Charles",
            "Chris": "Christopher", "Dan": "Daniel", "Dave": "David",
            "Steve": "Steven", "Joe": "Joseph", "Jen": "Jennifer",
            "Sue": "Susan", "Pat": "Patricia",
        }
    )


class SynonymizedMetric(StringMetric):
    """A base metric evaluated on synonym-normalized values.

    ``name`` is derived from the base metric (``"syn_dl"`` for DL) so the
    operator registry can expose it alongside the raw metric.
    """

    def __init__(self, base: StringMetric, table: SynonymTable) -> None:
        self.base = base
        self.table = table

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"syn_{self.base.name}"

    def similarity(self, left: str, right: str) -> float:
        normalized_left = self.table.normalize(left)
        normalized_right = self.table.normalize(right)
        if normalized_left == normalized_right:
            return 1.0
        return self.base.similarity(normalized_left, normalized_right)

    def similar(self, left: str, right: str, theta: float) -> bool:
        normalized_left = self.table.normalize(left)
        normalized_right = self.table.normalize(right)
        if normalized_left == normalized_right:
            return True
        return self.base.similar(normalized_left, normalized_right, theta)


def merged_tables(tables: Iterable[SynonymTable]) -> SynonymTable:
    """Combine several tables; later tables win on conflicts."""
    token_map: Dict[str, str] = {}
    value_map: Dict[str, str] = {}
    for table in tables:
        token_map.update(table._tokens)
        value_map.update(table._values)
    return SynonymTable(token_map, value_map)


def register_synonym_metrics(registry, table: SynonymTable) -> Tuple[str, ...]:
    """Register synonymized variants of the standard metrics.

    Adds ``syn_dl``, ``syn_lev`` and ``syn_jw`` to ``registry`` so MDs may
    use operators like ``syn_dl(0.8)``.  Returns the registered names.
    """
    from .damerau_levenshtein import DamerauLevenshtein
    from .jaro import JaroWinkler
    from .levenshtein import Levenshtein

    factories = {
        "syn_dl": lambda: SynonymizedMetric(DamerauLevenshtein(), table),
        "syn_lev": lambda: SynonymizedMetric(Levenshtein(), table),
        "syn_jw": lambda: SynonymizedMetric(JaroWinkler(), table),
    }
    for name, factory in factories.items():
        registry.register(name, factory)
    return tuple(factories)

"""Soundex phonetic encoding.

Section 6.2 (Exp-4) encodes the name attribute with Soundex before using it
inside a blocking key, so that phonetically close spellings ("Clifford" /
"Clivord") land in the same block.  This is the classic American Soundex:
a letter followed by three digits, consonants grouped by place of
articulation, adjacent duplicates collapsed, vowels (and H/W) acting as
separators.
"""

from __future__ import annotations

from .base import StringMetric

_CODES = {
    "B": "1", "F": "1", "P": "1", "V": "1",
    "C": "2", "G": "2", "J": "2", "K": "2",
    "Q": "2", "S": "2", "X": "2", "Z": "2",
    "D": "3", "T": "3",
    "L": "4",
    "M": "5", "N": "5",
    "R": "6",
}
# H and W are skipped entirely (they do not separate duplicate codes);
# vowels and Y are skipped but *do* separate duplicates.
_SKIP_TRANSPARENT = {"H", "W"}
_SKIP_SEPARATOR = {"A", "E", "I", "O", "U", "Y"}


def soundex(value: str) -> str:
    """Return the 4-character Soundex code of ``value``.

    Non-alphabetic characters are ignored; an empty or fully non-alphabetic
    input encodes to ``"0000"`` so blocking on the code never raises.

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    >>> soundex("Clifford") == soundex("Clivord")
    True
    >>> soundex("")
    '0000'
    """
    letters = [ch for ch in value.upper() if ch.isalpha()]
    if not letters:
        return "0000"

    first = letters[0]
    digits = []
    previous_code = _CODES.get(first, "")
    for ch in letters[1:]:
        if ch in _SKIP_TRANSPARENT:
            continue
        if ch in _SKIP_SEPARATOR:
            previous_code = ""
            continue
        code = _CODES.get(ch)
        if code is None:
            previous_code = ""
            continue
        if code != previous_code:
            digits.append(code)
            previous_code = code
        if len(digits) == 3:
            break
    return (first + "".join(digits)).ljust(4, "0")


class SoundexMetric(StringMetric):
    """Binary similarity: 1.0 when Soundex codes agree, else 0.0.

    Thresholding at any θ in (0, 1] yields the "phonetically equal"
    operator.
    """

    name = "soundex"

    def similarity(self, left: str, right: str) -> float:
        return 1.0 if soundex(left) == soundex(right) else 0.0

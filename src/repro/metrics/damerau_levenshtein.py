"""Damerau–Levenshtein distance — the paper's ``DL`` metric (Section 6.2).

The paper defines DL as "the minimum number of single-character insertions,
deletions and substitutions required to transform a value v to another value
v'" and additionally counts adjacent transpositions, following
Damerau's observation that transposed letters account for a large share of
human typos.  We implement the *optimal string alignment* (OSA) variant —
each substring may be edited at most once — which is what SimMetrics and
most record-linkage toolkits ship as "Damerau–Levenshtein".

Thresholding (Section 6.2): for a threshold ``θ``,

    ``v ≈_θ v'   iff   DL(v, v') <= (1 - θ) * max(|v|, |v'|)``

which is exactly ``similarity(v, v') >= θ`` with the normalized similarity
``1 - DL / max(|v|, |v'|)``.  The paper fixes ``θ = 0.8`` in all
experiments; :data:`PAPER_THETA` records that constant.
"""

from __future__ import annotations

import math

from .base import StringMetric

#: The similarity threshold used throughout the paper's experiments.
PAPER_THETA = 0.8


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Return the optimal-string-alignment Damerau–Levenshtein distance.

    Insertions, deletions, substitutions and adjacent transpositions each
    cost 1.

    >>> damerau_levenshtein_distance("Mark", "Marx")
    1
    >>> damerau_levenshtein_distance("abcd", "acbd")  # one transposition
    1
    >>> damerau_levenshtein_distance("ca", "abc")
    3
    """
    if left == right:
        return 0
    n, m = len(left), len(right)
    if n == 0:
        return m
    if m == 0:
        return n

    # Three rolling rows: two-back (for transpositions), previous, current.
    two_back = [0] * (m + 1)
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        current = [i] + [0] * m
        for j in range(1, m + 1):
            cost = 0 if left[i - 1] == right[j - 1] else 1
            best = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            ):
                best = min(best, two_back[j - 2] + 1)  # transposition
            current[j] = best
        two_back, previous = previous, current
    return previous[m]


def damerau_levenshtein_within(left: str, right: str, bound: int) -> bool:
    """Decide ``DL(left, right) <= bound`` with a banded dynamic program.

    Only the diagonal band of width ``2·bound + 1`` is computed and the
    scan aborts as soon as a full row exceeds the bound, making threshold
    checks ``O(bound · min(|left|, |right|))`` instead of quadratic —
    matchers evaluate millions of these.

    >>> damerau_levenshtein_within("Mark", "Marx", 1)
    True
    >>> damerau_levenshtein_within("Mark", "David", 1)
    False
    """
    if bound < 0:
        return False
    if left == right:
        return True
    n, m = len(left), len(right)
    if abs(n - m) > bound:
        return False
    big = bound + 1  # any cell value > bound behaves as "infinity"

    two_back = [0] * (m + 1)
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        lo = max(1, i - bound)
        hi = min(m, i + bound)
        current = [i if i <= bound + 0 else big] + [big] * m
        row_min = current[0] if lo > 1 else big
        for j in range(lo, hi + 1):
            cost = 0 if left[i - 1] == right[j - 1] else 1
            best = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            ):
                best = min(best, two_back[j - 2] + 1)
            current[j] = min(best, big)
            if current[j] < row_min:
                row_min = current[j]
        if min(row_min, current[0]) > bound:
            return False
        two_back, previous = previous, current
    return previous[m] <= bound


class DamerauLevenshtein(StringMetric):
    """Normalized Damerau–Levenshtein similarity — the paper's DL metric."""

    name = "dl"

    def similarity(self, left: str, right: str) -> float:
        if left == right:
            return 1.0
        longest = max(len(left), len(right))
        if longest == 0:
            return 1.0
        return 1.0 - damerau_levenshtein_distance(left, right) / longest

    def similar(self, left: str, right: str, theta: float) -> bool:
        """Threshold check via the banded bound (Section 6.2's rule).

        ``v ≈θ v'`` iff ``DL(v, v') <= ⌈(1 − θ)·max(|v|, |v'|)⌉``.

        The edit budget is rounded *up*: Example 1.1 asserts that
        ``Mark ≈d Marx`` at the paper's θ = 0.8, which requires a budget
        of 1 on 4-character strings ((1 − 0.8)·4 = 0.8).  Rounding down
        would contradict the paper's own worked example.
        """
        longest = max(len(left), len(right))
        if longest == 0:
            return True
        bound = math.ceil((1.0 - theta) * longest - 1e-9)
        return damerau_levenshtein_within(left, right, bound)


def paper_dl_operator(theta: float = PAPER_THETA):
    """Return the ``≈θ`` operator of Section 6.2 (DL with threshold θ)."""
    return DamerauLevenshtein().thresholded(theta)

"""MD discovery from sample data (Section 8, future work).

"An important topic is to develop algorithms for discovering MDs from
sample data, along the same lines as discovery of FDs."  This module
implements a levelwise miner in the spirit of FD-discovery algorithms:

* the search space is conjunctions of *predicates* — (attribute pair,
  operator) atoms over the schema pair, operators drawn from a
  configurable pool (equality plus thresholded metrics);
* a labelled sample of tuple pairs (matches and non-matches — e.g. from a
  reviewed batch, or from the generator truth in experiments) provides
  *support* (how many sampled matches satisfy the LHS) and *confidence*
  (the fraction of satisfying pairs that are true matches);
* a candidate LHS is emitted as a key-style MD ``LHS → (Y1, Y2)`` when its
  confidence and support clear the thresholds; supersets of emitted LHSs
  are pruned (minimality, as in levelwise FD discovery), as are predicates
  with no discriminative power.

Mined MDs feed straight into :func:`repro.core.findrcks.find_rcks` — the
pipeline the paper sketches: "one can first discover a small set of MDs
via sampling and learning, and then leverage the reasoning techniques to
deduce RCKs" (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.md import MatchingDependency
from repro.core.schema import ComparableLists
from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from repro.relations.relation import Relation

#: A labelled tuple pair: (left tid, right tid, is_match).
LabelledPair = Tuple[int, int, bool]

#: A predicate: ((left attribute, right attribute), operator name).
Predicate = Tuple[Tuple[str, str], str]


@dataclass(frozen=True)
class MinedMD:
    """A discovered MD with its sample statistics."""

    dependency: MatchingDependency
    support: int
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.dependency}  "
            f"[support={self.support}, confidence={self.confidence:.3f}]"
        )


@dataclass(frozen=True)
class DiscoveryConfig:
    """Knobs of the miner.

    ``min_confidence``: minimum fraction of LHS-satisfying sampled pairs
    that are true matches (rule precision on the sample).
    ``min_support``: minimum number of true-match pairs satisfying the LHS
    (rules that fire never are useless).
    ``max_lhs``: largest LHS size explored (levelwise depth).
    ``operators``: operator names tried per attribute pair; equality is
    always sensible, thresholded metrics add fuzz tolerance.
    """

    min_confidence: float = 0.95
    min_support: int = 5
    max_lhs: int = 3
    operators: Tuple[str, ...] = ("=", "dl(0.8)")

    def __post_init__(self) -> None:
        if not 0.0 < self.min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in (0, 1], got {self.min_confidence}"
            )
        if self.min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {self.min_support}")
        if self.max_lhs < 1:
            raise ValueError(f"max_lhs must be >= 1, got {self.max_lhs}")
        if not self.operators:
            raise ValueError("need at least one operator")


def _evaluate_predicates(
    left: Relation,
    right: Relation,
    sample: Sequence[LabelledPair],
    target: ComparableLists,
    config: DiscoveryConfig,
    registry: MetricRegistry,
) -> Dict[Predicate, List[bool]]:
    """Truth table: predicate → per-sample-pair satisfaction vector."""
    attribute_pairs = list(dict.fromkeys(target.attribute_pairs()))
    table: Dict[Predicate, List[bool]] = {}
    for attribute_pair in attribute_pairs:
        left_attr, right_attr = attribute_pair
        for operator_name in config.operators:
            predicate_fn = registry.resolve(operator_name)
            column = [
                bool(
                    predicate_fn(
                        left[l_tid][left_attr], right[r_tid][right_attr]
                    )
                )
                for l_tid, r_tid, _ in sample
            ]
            table[(attribute_pair, operator_name)] = column
    return table


def _prune_useless(
    table: Dict[Predicate, List[bool]],
    labels: Sequence[bool],
    min_support: int,
) -> Dict[Predicate, List[bool]]:
    """Drop predicates that cannot contribute to any confident rule.

    A predicate that no true match satisfies (support 0) can never reach
    min_support in any conjunction containing it; a predicate satisfied by
    *every* sampled pair carries no information but is harmless — we keep
    it out to shrink the lattice.
    """
    kept = {}
    total = len(labels)
    for predicate, column in table.items():
        match_hits = sum(
            1 for satisfied, is_match in zip(column, labels) if satisfied and is_match
        )
        if match_hits < min_support:
            continue
        if sum(column) == total:
            continue  # tautological on this sample
        kept[predicate] = column
    return kept


def discover_mds(
    left: Relation,
    right: Relation,
    sample: Sequence[LabelledPair],
    target: ComparableLists,
    config: DiscoveryConfig = DiscoveryConfig(),
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> List[MinedMD]:
    """Mine key-style MDs ``LHS → (Y1, Y2)`` from a labelled pair sample.

    Returns minimal (no mined LHS contains another) rules sorted by
    descending confidence, then support.

    >>> # see tests/discovery for end-to-end usage on generated data
    """
    if not sample:
        raise ValueError("cannot mine from an empty sample")
    labels = [is_match for _, _, is_match in sample]
    if not any(labels):
        raise ValueError("sample contains no positive (match) pairs")

    table = _evaluate_predicates(left, right, sample, target, config, registry)
    table = _prune_useless(table, labels, config.min_support)
    predicates = sorted(table)

    total_matches = sum(labels)
    emitted: List[MinedMD] = []
    emitted_sets: List[FrozenSet[Predicate]] = []

    def statistics(chosen: Tuple[Predicate, ...]) -> Tuple[int, int]:
        """(pairs satisfying the conjunction, true matches among them)."""
        columns = [table[predicate] for predicate in chosen]
        satisfied = 0
        match_hits = 0
        for index, is_match in enumerate(labels):
            if all(column[index] for column in columns):
                satisfied += 1
                if is_match:
                    match_hits += 1
        return satisfied, match_hits

    # Levelwise search, smallest LHS first; prune supersets of emitted.
    for level in range(1, config.max_lhs + 1):
        for chosen in combinations(predicates, level):
            attribute_pairs = [predicate[0] for predicate in chosen]
            if len(set(attribute_pairs)) != level:
                continue  # one operator per attribute pair in an LHS
            chosen_set = frozenset(chosen)
            if any(prior <= chosen_set for prior in emitted_sets):
                continue  # a subset already makes a confident rule
            satisfied, match_hits = statistics(chosen)
            if match_hits < config.min_support or satisfied == 0:
                continue
            confidence = match_hits / satisfied
            if confidence < config.min_confidence:
                continue
            lhs = [
                (pair_[0], pair_[1], operator_name)
                for (pair_, operator_name) in chosen
            ]
            dependency = MatchingDependency(
                target.pair, lhs, list(target.attribute_pairs())
            )
            emitted.append(
                MinedMD(dependency, support=match_hits, confidence=confidence)
            )
            emitted_sets.append(chosen_set)

    emitted.sort(key=lambda mined: (-mined.confidence, -mined.support))
    # A coverage note for callers: rules covering few of the total matches
    # are still valid keys; the caller unions several (cf. Section 6.2).
    del total_matches
    return emitted


def sample_labelled_pairs(
    candidates: Sequence[Tuple[int, int]],
    truth: FrozenSet[Tuple[int, int]],
    limit: int = 10_000,
    seed: int = 0,
) -> List[LabelledPair]:
    """Label candidate pairs against a truth set, subsampling to ``limit``.

    In experiments the generator truth plays the role of the reviewed
    sample; in production the labels come from clerical review.

    Candidate pairs usually come from blocking/windowing, which *biases*
    the negatives (they already share the blocking key).  Mix in uniform
    random pairs via :func:`random_labelled_pairs` so mined rules must
    discriminate globally, not just within blocks.
    """
    import random

    pairs = list(candidates)
    rng = random.Random(seed)
    if len(pairs) > limit:
        pairs = rng.sample(pairs, limit)
    return [
        (l_tid, r_tid, (l_tid, r_tid) in truth) for l_tid, r_tid in pairs
    ]


def random_labelled_pairs(
    left: Relation,
    right: Relation,
    truth: FrozenSet[Tuple[int, int]],
    count: int,
    seed: int = 0,
) -> List[LabelledPair]:
    """Uniformly random tuple pairs, labelled against the truth.

    Overwhelmingly negatives on realistic data — the unbiased background
    a miner needs to reject rules that only look like keys inside blocks
    (e.g. "same first name" within a same-surname window).
    """
    import random

    rng = random.Random(seed)
    left_tids = left.tids()
    right_tids = right.tids()
    pairs = [
        (rng.choice(left_tids), rng.choice(right_tids)) for _ in range(count)
    ]
    return [
        (l_tid, r_tid, (l_tid, r_tid) in truth) for l_tid, r_tid in pairs
    ]

"""MD discovery from sample data (the Section 8 extension)."""

from .miner import (
    DiscoveryConfig,
    LabelledPair,
    MinedMD,
    discover_mds,
    random_labelled_pairs,
    sample_labelled_pairs,
)

__all__ = [
    "DiscoveryConfig",
    "LabelledPair",
    "MinedMD",
    "discover_mds",
    "random_labelled_pairs",
    "sample_labelled_pairs",
]

"""Streaming workloads: datasets replayed as ordered arrival sequences.

The batch generator (:mod:`repro.datagen.generator`) produces instance
pairs; a streaming engine additionally cares about *arrival order* — when
a record's duplicates show up relative to it decides how much cluster
state an incremental matcher must revise.  This module turns a
:class:`~repro.datagen.generator.MatchingDataset` into a
:class:`StreamWorkload`: the same rows (same tuple ids, so results stay
comparable with batch runs on the dataset) emitted as a sequence of
:class:`StreamEvent`, in one of three scenarios:

* :func:`arrival_stream` — uniform random interleaving of both relations,
  the steady-state traffic shape;
* :func:`duplicate_burst_stream` — each entity's records arrive
  back-to-back (the credit record, then all its billing duplicates), as
  when an upstream system flushes per-account batches;
* :func:`late_duplicate_stream` — every entity is seen once first, and all
  remaining duplicates arrive at the end — the adversarial case for
  engines that finalize clusters too early.

All scenarios are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.schema import LEFT, RIGHT, ComparableLists, SchemaPair

from .generator import MatchingDataset


@dataclass(frozen=True)
class StreamEvent:
    """One arriving record.

    ``tid`` is the record's tuple id in the source dataset, so replaying
    the stream with preserved ids yields clusters directly comparable to a
    batch run; ``entity`` is the generator-held ground truth.
    """

    side: int
    tid: int
    values: Dict[str, object]
    entity: int


@dataclass(frozen=True)
class StreamWorkload:
    """An ordered arrival sequence over a generated dataset."""

    pair: SchemaPair
    target: ComparableLists
    scenario: str
    events: Tuple[StreamEvent, ...]
    true_matches: FrozenSet[Tuple[int, int]]

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> Tuple[int, int]:
        """(left events, right events)."""
        left = sum(1 for event in self.events if event.side == LEFT)
        return left, len(self.events) - left


def _credit_events(dataset: MatchingDataset) -> List[StreamEvent]:
    return [
        StreamEvent(LEFT, row.tid, row.values(), dataset.credit_entity[row.tid])
        for row in dataset.credit
    ]


def _billing_events(dataset: MatchingDataset) -> List[StreamEvent]:
    return [
        StreamEvent(RIGHT, row.tid, row.values(), dataset.billing_entity[row.tid])
        for row in dataset.billing
    ]


def _workload(
    dataset: MatchingDataset, scenario: str, events: List[StreamEvent]
) -> StreamWorkload:
    return StreamWorkload(
        pair=dataset.pair,
        target=dataset.target,
        scenario=scenario,
        events=tuple(events),
        true_matches=dataset.true_matches,
    )


def arrival_stream(dataset: MatchingDataset, seed: int = 0) -> StreamWorkload:
    """Uniform random interleaving of credit and billing records."""
    events = _credit_events(dataset) + _billing_events(dataset)
    random.Random(seed).shuffle(events)
    return _workload(dataset, "arrival", events)


def duplicate_burst_stream(dataset: MatchingDataset, seed: int = 0) -> StreamWorkload:
    """Per-entity bursts: a credit record, then all its billing duplicates.

    Entity order is shuffled; within a burst the billing duplicates keep
    insertion order, so every burst replays one account's history.
    """
    by_entity: Dict[int, List[StreamEvent]] = {}
    for event in _credit_events(dataset):
        by_entity.setdefault(event.entity, []).append(event)
    for event in _billing_events(dataset):
        by_entity.setdefault(event.entity, []).append(event)
    entities = sorted(by_entity)
    random.Random(seed).shuffle(entities)
    events = [event for entity in entities for event in by_entity[entity]]
    return _workload(dataset, "duplicate-burst", events)


def late_duplicate_stream(dataset: MatchingDataset, seed: int = 0) -> StreamWorkload:
    """Each entity once up front; every remaining duplicate at the end.

    The head contains all credit records and the first billing record of
    each entity (shuffled); the tail holds the other billing duplicates
    (shuffled separately).  Clusters formed on the head must absorb the
    late arrivals without any re-scan.
    """
    rng = random.Random(seed)
    head = _credit_events(dataset)
    seen: set = set()
    tail: List[StreamEvent] = []
    for event in _billing_events(dataset):
        if event.entity in seen:
            tail.append(event)
        else:
            seen.add(event.entity)
            head.append(event)
    rng.shuffle(head)
    rng.shuffle(tail)
    return _workload(dataset, "late-duplicate", head + tail)

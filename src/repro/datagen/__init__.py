"""Synthetic data: schemas, corpora, noise, datasets, random MD workloads."""

from .generator import (
    MatchingDataset,
    figure1_instances,
    generate_dataset,
    high_duplication_dataset,
)
from .mdgen import (
    DEFAULT_OPERATORS,
    GeneratedWorkload,
    generate_workload,
    synthetic_pair,
)
from .noise import DEFAULT_MIX, NoiseModel, light_noise
from .schemas import (
    credit_billing_pair,
    extended_mds,
    extended_pair,
    extended_target,
    paper_mds,
    paper_target,
)
from .streams import (
    StreamEvent,
    StreamWorkload,
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)

__all__ = [
    "DEFAULT_MIX",
    "DEFAULT_OPERATORS",
    "GeneratedWorkload",
    "MatchingDataset",
    "NoiseModel",
    "StreamEvent",
    "StreamWorkload",
    "arrival_stream",
    "credit_billing_pair",
    "duplicate_burst_stream",
    "late_duplicate_stream",
    "extended_mds",
    "extended_pair",
    "extended_target",
    "figure1_instances",
    "generate_dataset",
    "generate_workload",
    "high_duplication_dataset",
    "light_noise",
    "paper_mds",
    "paper_target",
    "synthetic_pair",
]

"""Noise injection for duplicate records.

Section 6.2: "more errors were introduced to each attribute in the
duplicates, with probability 80%, ranging from small typographical changes
to complete change of the attribute."  This module implements that
spectrum as a weighted mixture of perturbation operators:

* single-character typos (insert / delete / substitute / transpose) —
  the errors the DL metric is designed to absorb;
* token-level damage: abbreviation ("Street" → "St", first name →
  initial), token drops ("10 Oak Street, MH, NJ 07974" → "NJ 07974"),
  case/format changes (phone separators);
* nulling the value ("gender: null" in Fig. 1);
* complete replacement with an unrelated value.

The operator mixture is configurable; :data:`DEFAULT_MIX` weights small
typos most heavily, matching Fig. 1's flavour (Marx/Mark, Clivord/Clifford,
truncated addresses, missing gender).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

_ALPHABET = string.ascii_lowercase

#: A perturbation operator: (rng, value) -> perturbed value (may be None).
Perturbation = Callable[[random.Random, str], Optional[str]]


def typo(rng: random.Random, value: str) -> str:
    """Apply one random character edit: insert, delete, substitute, swap."""
    if not value:
        return rng.choice(_ALPHABET)
    kind = rng.randrange(4)
    position = rng.randrange(len(value))
    if kind == 0:  # insert
        ch = rng.choice(_ALPHABET)
        return value[:position] + ch + value[position:]
    if kind == 1 and len(value) > 1:  # delete
        return value[:position] + value[position + 1 :]
    if kind == 2:  # substitute
        ch = rng.choice([c for c in _ALPHABET if c != value[position].lower()])
        return value[:position] + ch + value[position + 1 :]
    # transpose (also the fallback for delete on 1-char strings)
    if len(value) > 1:
        position = min(position, len(value) - 2)
        swapped = (
            value[:position]
            + value[position + 1]
            + value[position]
            + value[position + 2 :]
        )
        if swapped != value:
            return swapped
        # Adjacent characters were identical: substitute instead so the
        # operator always produces a changed value.
        ch = rng.choice([c for c in _ALPHABET if c != value[position].lower()])
        return value[:position] + ch + value[position + 1 :]
    # Single character: substitute with a definitely different one.
    return rng.choice([c for c in _ALPHABET if c != value.lower()])


def double_typo(rng: random.Random, value: str) -> str:
    """Two independent character edits."""
    return typo(rng, typo(rng, value))


_ABBREVIATIONS = (
    ("Street", "St"),
    ("Avenue", "Ave"),
    ("Road", "Rd"),
    ("Drive", "Dr"),
    ("Lane", "Ln"),
    ("Court", "Ct"),
    ("Place", "Pl"),
)


def abbreviate(rng: random.Random, value: str) -> str:
    """Abbreviate: street suffixes shorten; single words become initials.

    "M. Clivord"-style first-name initials come from this operator.
    """
    for full, short in _ABBREVIATIONS:
        if full in value:
            return value.replace(full, short)
    if value and " " not in value and len(value) > 1:
        return value[0] + "."
    return typo(rng, value)


def drop_tokens(rng: random.Random, value: str) -> str:
    """Drop a leading span of comma/space tokens ("... , NJ 07974" → "NJ 07974").

    Mirrors Fig. 1's ``post = "NJ"`` truncations.  Single-token values get
    a typo instead.
    """
    tokens = value.replace(",", " ").split()
    if len(tokens) <= 1:
        return typo(rng, value)
    keep = rng.randrange(1, len(tokens))
    return " ".join(tokens[-keep:])


def null_out(rng: random.Random, value: str) -> None:
    """Replace the value with null (missing)."""
    return None


def scramble(rng: random.Random, value: str) -> str:
    """Complete change of the attribute: an unrelated random string."""
    length = max(3, len(value)) if value else 6
    return "".join(rng.choice(_ALPHABET) for _ in range(min(length, 12)))


@dataclass(frozen=True)
class NoiseModel:
    """A weighted mixture of perturbation operators.

    ``tuple_rate`` is the probability that a duplicate tuple receives
    errors at all (the paper's "errors were introduced ... with probability
    80%").  A noisy duplicate then has a *number* of damaged attributes
    drawn from ``damage_counts`` (a (count, weight) distribution; default:
    mostly one or two attributes), and each damaged attribute gets an
    operator from ``mixture``.

    Calibration note: the paper's reported quality levels (RCK-guided
    recall 75–97 %, blocking PC above 50 % with a three-attribute key) are
    only achievable when most duplicates keep most key attributes clean —
    i.e. when errors hit *some* attributes of 80 % of duplicates, not 80 %
    of all attribute values.  :func:`harsh_noise` keeps the literal
    per-attribute-80 % reading available for ablations.  See
    EXPERIMENTS.md.
    """

    tuple_rate: float = 0.8
    damage_counts: Tuple[Tuple[int, float], ...] = (
        (1, 0.45), (2, 0.30), (3, 0.15), (4, 0.10),
    )
    mixture: Tuple[Tuple[Perturbation, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.tuple_rate <= 1.0:
            raise ValueError(
                f"tuple_rate must be in [0, 1], got {self.tuple_rate}"
            )
        if not self.damage_counts:
            raise ValueError("damage_counts must be non-empty")
        for count, weight in self.damage_counts:
            if count < 0 or weight < 0:
                raise ValueError(
                    f"invalid damage_counts entry ({count}, {weight})"
                )
        if not self.mixture:
            object.__setattr__(self, "mixture", DEFAULT_MIX)
        total = sum(weight for _, weight in self.mixture)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")

    def is_noisy_tuple(self, rng: random.Random) -> bool:
        """Draw whether a duplicate tuple receives errors at all."""
        return rng.random() < self.tuple_rate

    def draw_damage_count(self, rng: random.Random, attribute_count: int) -> int:
        """How many attributes of a noisy duplicate get damaged."""
        total = sum(weight for _, weight in self.damage_counts)
        draw = rng.random() * total
        cumulative = 0.0
        for count, weight in self.damage_counts:
            cumulative += weight
            if draw < cumulative:
                return min(count, attribute_count)
        return min(self.damage_counts[-1][0], attribute_count)

    def apply_operator(
        self, rng: random.Random, value: str
    ) -> Optional[str]:
        """Draw an operator from the mixture and apply it unconditionally."""
        total = sum(weight for _, weight in self.mixture)
        draw = rng.random() * total
        cumulative = 0.0
        for operator, weight in self.mixture:
            cumulative += weight
            if draw < cumulative:
                return operator(rng, value)
        return self.mixture[-1][0](rng, value)


#: Default operator mixture: mostly small typographical changes, a tail of
#: structural damage and complete replacement (Section 6.2's "ranging from
#: small typographical changes to complete change of the attribute").
DEFAULT_MIX: Tuple[Tuple[Perturbation, float], ...] = (
    (typo, 0.45),
    (double_typo, 0.15),
    (abbreviate, 0.15),
    (drop_tokens, 0.10),
    (null_out, 0.07),
    (scramble, 0.08),
)


def light_noise() -> NoiseModel:
    """A gentler model (typos only) for tests that need mostly-matchable data."""
    return NoiseModel(
        tuple_rate=0.8,
        damage_counts=((1, 0.8), (2, 0.2)),
        mixture=((typo, 0.8), (abbreviate, 0.2)),
    )


def harsh_noise() -> NoiseModel:
    """The literal per-attribute-80 % reading of Section 6.2, for ablations.

    Every duplicate is noisy and roughly 80 % of its identity attributes
    (9 of 11) are damaged — under which *no* matcher retains useful recall;
    the ablation benchmark documents this.
    """
    return NoiseModel(tuple_rate=1.0, damage_counts=((9, 1.0),))

"""Synthetic credit/billing dataset generator with ground truth.

Follows the protocol of Section 6.2:

* populate instances of the (extended) credit/billing schemas with
  realistic person + purchase data;
* add ``duplicate_fraction`` (the paper: 80 %) of duplicates by copying
  existing billing tuples — a duplicate keeps the holder's identity but
  represents e.g. another purchase (like t3–t6 in Fig. 1);
* introduce errors into the duplicates with probability
  ``noise.tuple_rate`` (the paper: 80 %), each identity attribute damaged
  with probability ``noise.attribute_rate``, "ranging from small
  typographical changes to complete change of the attribute";
* keep the truth (which tuples refer to which card holder) so precision,
  recall, pairs completeness and reduction ratio are computable exactly.

The generator is fully deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.schema import ComparableLists, SchemaPair
from repro.relations.relation import Relation

from . import corpora
from .noise import NoiseModel, typo
from .schemas import extended_pair, extended_target


@dataclass(frozen=True)
class MatchingDataset:
    """A generated instance pair plus the generator-held truth.

    Attributes
    ----------
    pair, target:
        The schema pair and the identification lists ``(Y1, Y2)``.
    credit, billing:
        The generated relations.
    true_matches:
        All (credit tid, billing tid) pairs that refer to the same card
        holder — the ground truth for precision/recall.
    credit_entity, billing_entity:
        Tuple id → holder id maps (useful for debugging and for block
        analyses).
    """

    pair: SchemaPair
    target: ComparableLists
    credit: Relation
    billing: Relation
    true_matches: FrozenSet[Tuple[int, int]]
    credit_entity: Dict[int, int] = field(hash=False)
    billing_entity: Dict[int, int] = field(hash=False)

    @property
    def total_pairs(self) -> int:
        """Size of the full comparison space |credit| × |billing|."""
        return len(self.credit) * len(self.billing)

    def is_true_match(self, credit_tid: int, billing_tid: int) -> bool:
        """Whether the given pair refers to one holder, per the truth."""
        return (credit_tid, billing_tid) in self.true_matches


class _HolderFactory:
    """Draws distinct card holders from the corpora.

    Besides independent holders, the factory can derive *household
    co-members* (same surname, address and home phone — different first
    name, email, card) and *namesakes* (same full name, everything else
    different).  These are distinct real-world entities that overlap on
    exactly the attributes careless matching rules rely on — the classic
    false-positive sources of merge/purge workloads.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used_phones: set = set()
        self._serial = 0

    def _fresh_identifiers(self, first: str, last: str) -> Dict[str, object]:
        rng = self._rng
        self._serial += 1
        email = (
            f"{first[0].lower()}{last.lower()}{self._serial}"
            f"@{rng.choice(corpora.EMAIL_DOMAINS)}"
        )
        return {
            "c#": f"{1000000 + self._serial}",
            "SSN": f"{rng.randrange(10 ** 9):09d}",
            "email": email,
        }

    def _fresh_phone(self) -> str:
        rng = self._rng
        while True:
            tel = f"{rng.randrange(200, 999)}-{rng.randrange(10 ** 7):07d}"
            if tel not in self._used_phones:
                self._used_phones.add(tel)
                return tel

    def make(self) -> Dict[str, object]:
        """An independent card holder."""
        rng = self._rng
        first = rng.choice(corpora.FIRST_NAMES)
        last = rng.choice(corpora.LAST_NAMES)
        city, county, state, zip_prefix = rng.choice(corpora.CITIES)
        street = (
            f"{rng.randrange(1, 999)} "
            f"{rng.choice(corpora.STREET_NAMES)} "
            f"{rng.choice(corpora.STREET_SUFFIXES)}"
        )
        holder = {
            "FN": first,
            "MI": f"{rng.choice('ABCDEFGHJKLMNPRSTW')}.",
            "LN": last,
            "street": street,
            "city": city,
            "county": county,
            "state": state,
            "zip": f"{zip_prefix}{rng.randrange(100):02d}",
            "tel": self._fresh_phone(),
            "gender": rng.choice(("M", "F")),
        }
        holder.update(self._fresh_identifiers(first, last))
        return holder

    def make_household_member(
        self, other: Dict[str, object], share_phone_probability: float = 0.25
    ) -> Dict[str, object]:
        """A different person in the same household as ``other``.

        Shares surname and postal address; shares the phone only with
        ``share_phone_probability`` (landline vs personal line).  Email,
        SSN, card number and gender are their own.
        """
        rng = self._rng
        first = rng.choice(
            [name for name in corpora.FIRST_NAMES if name != other["FN"]]
        )
        member = dict(other)
        member["FN"] = first
        member["MI"] = f"{rng.choice('ABCDEFGHJKLMNPRSTW')}."
        member["gender"] = rng.choice(("M", "F"))
        if rng.random() >= share_phone_probability:
            member["tel"] = self._fresh_phone()
        member.update(self._fresh_identifiers(first, str(other["LN"])))
        return member

    def make_namesake(self, other: Dict[str, object]) -> Dict[str, object]:
        """A different person with the same full name as ``other``.

        Half the namesakes live in the same city (sharing city, county and
        state) — the hard case for name+locality rules.
        """
        rng = self._rng
        namesake = self.make()
        namesake["FN"] = other["FN"]
        namesake["LN"] = other["LN"]
        if rng.random() < 0.5:
            namesake["city"] = other["city"]
            namesake["county"] = other["county"]
            namesake["state"] = other["state"]
        email = (
            f"{str(other['FN'])[0].lower()}{str(other['LN']).lower()}"
            f"{self._serial}@{rng.choice(corpora.EMAIL_DOMAINS)}"
        )
        namesake["email"] = email
        return namesake


def _purchase(rng: random.Random) -> Dict[str, object]:
    item, category, price = rng.choice(corpora.ITEMS)
    return {
        "item": item,
        "category": category,
        "price": f"{price:.2f}",
        "quantity": str(rng.randrange(1, 4)),
        "order_date": (
            f"2008-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}"
        ),
        "store": rng.choice(corpora.STORES),
        "payment_status": rng.choice(corpora.PAYMENT_STATUSES),
    }


def _weighted_attribute_sample(
    rng: random.Random,
    values: Dict[str, object],
    attributes: List[str],
    count: int,
) -> List[str]:
    """Sample ``count`` distinct attributes, weighted by value length."""
    chosen: List[str] = []
    pool = [attr for attr in attributes if values.get(attr) is not None]
    for _ in range(min(count, len(pool))):
        weights = [len(str(values[attr])) for attr in pool]
        total = sum(weights)
        draw = rng.random() * total
        cumulative = 0.0
        picked = pool[-1]
        for attr, weight in zip(pool, weights):
            cumulative += weight
            if draw < cumulative:
                picked = attr
                break
        chosen.append(picked)
        pool.remove(picked)
    return chosen


def _billing_values(holder: Dict[str, object], purchase: Dict[str, object]) -> Dict[str, object]:
    return {
        "c#": holder["c#"],
        "FN": holder["FN"],
        "MI": holder["MI"],
        "LN": holder["LN"],
        "street": holder["street"],
        "city": holder["city"],
        "county": holder["county"],
        "state": holder["state"],
        "zip": holder["zip"],
        "phn": holder["tel"],
        "email": holder["email"],
        "gender": holder["gender"],
        "ship_state": holder["state"],
        "ship_zip": holder["zip"],
        **purchase,
    }


def generate_dataset(
    size: int,
    duplicate_fraction: float = 0.8,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    household_fraction: float = 0.15,
    namesake_fraction: float = 0.05,
    shared_card_probability: float = 0.3,
) -> MatchingDataset:
    """Generate a credit/billing dataset of ``size`` billing tuples.

    Parameters
    ----------
    size:
        The paper's ``K``: the number of billing tuples (and the scale of
        the credit relation — one credit tuple per distinct holder).
    duplicate_fraction:
        Fraction of billing tuples that are noisy duplicates of existing
        ones (the paper: 0.8, i.e. 80 % duplicates were *added*; here the
        fraction is of the final size so K stays exact).
    noise:
        The error model applied to duplicates; defaults to the 80 %
        tuple-rate mixture of :mod:`repro.datagen.noise`.
    seed:
        RNG seed; identical seeds yield identical datasets.
    household_fraction:
        Fraction of holders that are household co-members of another
        holder (same surname/address, different person) — real
        non-matches that stress loose rules.
    namesake_fraction:
        Fraction of holders sharing a full name with another holder.
    shared_card_probability:
        Probability that a purchase by a household member is paid with
        the partner's card (so equal ``c#`` does not imply one person).

    >>> dataset = generate_dataset(200, seed=7)
    >>> len(dataset.billing)
    200
    >>> all(pair in dataset.true_matches
    ...     for pair in list(dataset.true_matches)[:5])
    True
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size}")
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ValueError(
            f"duplicate_fraction must be in [0, 1), got {duplicate_fraction}"
        )
    if household_fraction + namesake_fraction >= 1.0:
        raise ValueError("household + namesake fractions must be < 1")
    if noise is None:
        noise = NoiseModel()
    rng = random.Random(seed)
    pair = extended_pair()
    target = extended_target(pair)

    base_count = max(1, round(size * (1.0 - duplicate_fraction)))
    duplicate_count = size - base_count

    factory = _HolderFactory(rng)
    holders: List[Dict[str, object]] = []
    partner_of: Dict[int, int] = {}
    for index in range(base_count):
        if holders and rng.random() < household_fraction:
            partner_index = rng.randrange(len(holders))
            holders.append(
                factory.make_household_member(holders[partner_index])
            )
            partner_of[index] = partner_index
            partner_of.setdefault(partner_index, index)
        elif holders and rng.random() < namesake_fraction:
            holders.append(factory.make_namesake(rng.choice(holders)))
        else:
            holders.append(factory.make())

    credit = Relation(pair.left)
    billing = Relation(pair.right)
    credit_entity: Dict[int, int] = {}
    billing_entity: Dict[int, int] = {}

    for entity, holder in enumerate(holders):
        credit_tid = credit.insert(holder)
        credit_entity[credit_tid] = entity
        billing_tid = billing.insert(_billing_values(holder, _purchase(rng)))
        billing_entity[billing_tid] = entity

    # Noise targets: the identity attributes (Y2) plus the card number —
    # "more errors were introduced to each attribute in the duplicates".
    identity_attributes = list(target.right_list) + ["c#"]
    for _ in range(duplicate_count):
        entity = rng.randrange(base_count)
        holder = holders[entity]
        # A duplicate is the same holder with a fresh purchase (non-Y
        # attributes change freely) ...
        values = _billing_values(holder, _purchase(rng))
        # Household members sometimes pay with the partner's card: the
        # billing tuple then carries the *partner's* c# but this person's
        # identity — the fraud-check scenario where equal card numbers do
        # not imply one holder.
        partner = partner_of.get(entity)
        if partner is not None and rng.random() < shared_card_probability:
            values["c#"] = holders[partner]["c#"]
        # ... and, for noisy duplicates (tuple_rate of them), a drawn
        # number of identity attributes get damaged.  Longer values are
        # proportionally more likely to be hit — the exact rationale the
        # paper gives for the lt statistic of its quality model ("the
        # longer lt is, the more likely errors occur in the attributes").
        if noise.is_noisy_tuple(rng):
            count = noise.draw_damage_count(rng, len(identity_attributes))
            damaged = _weighted_attribute_sample(
                rng, values, identity_attributes, count
            )
            for attribute in damaged:
                current = values.get(attribute)
                if current is None:
                    continue
                values[attribute] = noise.apply_operator(rng, str(current))
        billing_tid = billing.insert(values)
        billing_entity[billing_tid] = entity

    by_entity: Dict[int, List[int]] = {}
    for billing_tid, entity in billing_entity.items():
        by_entity.setdefault(entity, []).append(billing_tid)
    true_matches = frozenset(
        (credit_tid, billing_tid)
        for credit_tid, entity in credit_entity.items()
        for billing_tid in by_entity.get(entity, ())
    )
    return MatchingDataset(
        pair=pair,
        target=target,
        credit=credit,
        billing=billing,
        true_matches=true_matches,
        credit_entity=credit_entity,
        billing_entity=billing_entity,
    )


def high_duplication_dataset(
    size: int,
    entities: Optional[int] = None,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
) -> MatchingDataset:
    """Generate a dataset with few distinct holders and many records each.

    The merge/purge regime of Section 6.2 pushed to its duplication
    extreme: ``entities`` distinct card holders (default ``size // 50``,
    at least 2) account for all ``size`` billing tuples, and duplicates
    copy the holder's identity attributes verbatim except for a light
    typo rate.  Candidate pairs therefore collapse onto a small number of
    distinct LHS value-pair signatures — the best case for the factorised
    chase kernel (:mod:`repro.plan.factorise`), and the workload used by
    ``benchmarks/test_plan_factorised.py`` to measure the predicate-
    evaluation saving of group-at-a-time enforcement.

    Parameters
    ----------
    size:
        Number of billing tuples.
    entities:
        Number of distinct card holders; each also gets one credit tuple.
    noise:
        Error model for duplicates.  The default is deliberately light
        (10 % of duplicates get one typo) so that most duplicates of a
        holder are value-identical on the comparison attributes.
    seed:
        RNG seed; identical seeds yield identical datasets.

    >>> dataset = high_duplication_dataset(100, entities=4, seed=1)
    >>> len(dataset.billing), len(dataset.credit)
    (100, 4)
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size}")
    if entities is None:
        entities = max(2, size // 50)
    if not 2 <= entities <= size:
        raise ValueError(
            f"entities must be in [2, size], got {entities} for size {size}"
        )
    if noise is None:
        noise = NoiseModel(
            tuple_rate=0.1,
            damage_counts=((1, 1.0),),
            mixture=((typo, 1.0),),
        )
    rng = random.Random(seed)
    pair = extended_pair()
    target = extended_target(pair)

    factory = _HolderFactory(rng)
    holders = [factory.make() for _ in range(entities)]

    credit = Relation(pair.left)
    billing = Relation(pair.right)
    credit_entity: Dict[int, int] = {}
    billing_entity: Dict[int, int] = {}
    for entity, holder in enumerate(holders):
        credit_entity[credit.insert(holder)] = entity

    identity_attributes = list(target.right_list) + ["c#"]
    for index in range(size):
        # Round-robin over holders so every entity gets records even at
        # small sizes, then let noise decide which few records deviate.
        entity = index % entities
        values = _billing_values(holders[entity], _purchase(rng))
        if noise.is_noisy_tuple(rng):
            count = noise.draw_damage_count(rng, len(identity_attributes))
            damaged = _weighted_attribute_sample(
                rng, values, identity_attributes, count
            )
            for attribute in damaged:
                current = values.get(attribute)
                if current is None:
                    continue
                values[attribute] = noise.apply_operator(rng, str(current))
        billing_entity[billing.insert(values)] = entity

    by_entity: Dict[int, List[int]] = {}
    for billing_tid, entity in billing_entity.items():
        by_entity.setdefault(entity, []).append(billing_tid)
    true_matches = frozenset(
        (credit_tid, billing_tid)
        for credit_tid, entity in credit_entity.items()
        for billing_tid in by_entity.get(entity, ())
    )
    return MatchingDataset(
        pair=pair,
        target=target,
        credit=credit,
        billing=billing,
        true_matches=true_matches,
        credit_entity=credit_entity,
        billing_entity=billing_entity,
    )


def figure1_instances() -> Tuple[SchemaPair, Relation, Relation]:
    """The exact instances of Fig. 1 (Example 1.1), for tests and examples.

    Returns ``(pair, credit, billing)`` over the *example* 9/9-attribute
    schemas; tuple ids follow the paper (t1, t2 → 0, 1 in credit;
    t3–t6 → 0–3 in billing).
    """
    from .schemas import credit_billing_pair

    pair = credit_billing_pair()
    credit = Relation(pair.left)
    credit.insert({
        "c#": "111", "SSN": "079172485", "FN": "Mark", "LN": "Clifford",
        "addr": "10 Oak Street, MH, NJ 07974", "tel": "908-1111111",
        "email": "mc@gm.com", "gender": "M", "type": "master",
    })
    credit.insert({
        "c#": "222", "SSN": "191843658", "FN": "David", "LN": "Smith",
        "addr": "620 Elm Street, MH, NJ 07976", "tel": "908-2222222",
        "email": "dsmith@hm.com", "gender": "M", "type": "visa",
    })
    billing = Relation(pair.right)
    billing.insert({
        "c#": "111", "FN": "Marx", "LN": "Clifford",
        "post": "10 Oak Street, MH, NJ 07974", "phn": "908",
        "email": "mc", "gender": None, "item": "iPod", "price": "169.99",
    })
    billing.insert({
        "c#": "111", "FN": "Marx", "LN": "Clifford", "post": "NJ",
        "phn": "908-1111111", "email": "mc", "gender": None,
        "item": "book", "price": "19.99",
    })
    billing.insert({
        "c#": "111", "FN": "M.", "LN": "Clivord",
        "post": "10 Oak Street, MH, NJ 07974", "phn": "1111111",
        "email": "mc@gm.com", "gender": None, "item": "PSP",
        "price": "269.99",
    })
    billing.insert({
        "c#": "111", "FN": "M.", "LN": "Clivord", "post": "NJ",
        "phn": "908-1111111", "email": "mc@gm.com", "gender": None,
        "item": "CD", "price": "14.99",
    })
    return pair, credit, billing

"""Deterministic corpora for synthetic person / address / purchase data.

The paper populates its schemas with "real-life data scraped from the Web"
(US addresses, books and DVDs from online stores).  Offline, we substitute
fixed corpora of comparable variety: common US given names and surnames,
street names, and cities with their county/state/zip, plus store items.
The matching experiments only depend on the *distributional* properties —
enough distinct values that non-matching tuples rarely collide, realistic
string lengths so typo noise behaves like it does on real data — which
these corpora provide.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

FIRST_NAMES = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
    "Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony",
    "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly",
    "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth",
    "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca",
    "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob",
    "Kathleen", "Gary", "Amy", "Nicholas", "Angela", "Eric", "Shirley",
    "Jonathan", "Anna", "Stephen", "Brenda", "Larry", "Pamela", "Justin",
    "Emma", "Scott", "Nicole", "Brandon", "Helen", "Benjamin", "Samantha",
    "Samuel", "Katherine", "Gregory", "Christine", "Alexander", "Debra",
    "Patrick", "Rachel", "Frank", "Carolyn", "Raymond", "Janet", "Jack",
    "Maria", "Dennis", "Catherine", "Jerry", "Heather", "Tyler", "Diane",
    "Aaron", "Olivia", "Jose", "Julie", "Adam", "Joyce", "Nathan",
    "Victoria", "Henry", "Ruth", "Zachary", "Virginia", "Douglas", "Lauren",
    "Peter", "Kelly", "Kyle", "Christina", "Noah", "Joan", "Ethan",
    "Evelyn", "Jeremy", "Judith", "Walter", "Andrea", "Christian", "Hannah",
    "Keith", "Megan", "Roger", "Cheryl", "Terry", "Jacqueline", "Austin",
    "Martha", "Sean", "Madison", "Gerald", "Teresa", "Carl", "Gloria",
    "Harold", "Sara", "Dylan", "Janice", "Arthur", "Ann", "Lawrence",
    "Kathryn", "Jordan", "Abigail", "Jesse", "Sophia", "Bryan", "Frances",
    "Billy", "Jean", "Bruce", "Alice", "Gabriel", "Judy", "Joe", "Isabella",
    "Logan", "Julia", "Alan", "Grace", "Juan", "Amber", "Albert", "Denise",
    "Willie", "Danielle", "Elijah", "Marilyn", "Wayne", "Beverly", "Randy",
    "Charlotte", "Vincent", "Natalie", "Mason", "Theresa", "Roy", "Diana",
    "Ralph", "Brittany", "Bobby", "Doris", "Russell", "Kayla", "Bradley",
    "Alexis", "Philip", "Lori", "Eugene", "Marie",
)

LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
    "Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes",
    "Gonzales", "Fisher", "Vasquez", "Simmons", "Romero", "Jordan",
    "Patterson", "Alexander", "Hamilton", "Graham", "Reynolds", "Griffin",
    "Wallace", "Moreno", "West", "Cole", "Hayes", "Bryant", "Herrera",
    "Gibson", "Ellis", "Tran", "Medina", "Aguilar", "Stevens", "Murray",
    "Ford", "Castro", "Marshall", "Owens", "Harrison", "Fernandez",
    "McDonald", "Woods", "Washington", "Kennedy", "Wells", "Vargas",
    "Henry", "Chen", "Freeman", "Webb", "Tucker", "Guzman", "Burns",
    "Crawford", "Olson", "Simpson", "Porter", "Hunter", "Gordon", "Mendez",
    "Silva", "Shaw", "Snyder", "Mason", "Dixon", "Munoz", "Hunt", "Hicks",
    "Holmes", "Palmer", "Wagner", "Black", "Robertson", "Boyd", "Rose",
    "Stone", "Salazar", "Fox", "Warren", "Mills", "Meyer", "Rice",
    "Schmidt", "Garza", "Daniels", "Ferguson", "Nichols", "Stephens",
    "Soto", "Weaver", "Ryan", "Gardner", "Payne", "Grant", "Dunn",
)

STREET_NAMES = (
    "Oak", "Elm", "Maple", "Cedar", "Pine", "Walnut", "Chestnut", "Spruce",
    "Willow", "Birch", "Main", "Church", "High", "Park", "Washington",
    "Lake", "Hill", "Ridge", "River", "Spring", "Meadow", "Forest",
    "Sunset", "Highland", "Valley", "Franklin", "Jefferson", "Lincoln",
    "Madison", "Monroe", "Adams", "Jackson", "Dogwood", "Magnolia",
    "Sycamore", "Poplar", "Hickory", "Laurel", "Juniper", "Aspen",
    "Cherry", "Locust", "Mulberry", "Hawthorn", "Cottonwood", "Redwood",
    "Cypress", "Alder", "Beech", "Holly",
)

STREET_SUFFIXES = ("Street", "Avenue", "Road", "Drive", "Lane", "Court", "Place")

#: (city, county, state, zip prefix).  Zip codes are formed as
#: ``prefix + 2 random digits`` so each city spans a small zip range.
CITIES = (
    ("Murray Hill", "Union", "NJ", "079"),
    ("Princeton", "Mercer", "NJ", "085"),
    ("Edison", "Middlesex", "NJ", "088"),
    ("Hoboken", "Hudson", "NJ", "070"),
    ("Trenton", "Mercer", "NJ", "086"),
    ("New York", "New York", "NY", "100"),
    ("Brooklyn", "Kings", "NY", "112"),
    ("Albany", "Albany", "NY", "122"),
    ("Buffalo", "Erie", "NY", "142"),
    ("Yonkers", "Westchester", "NY", "107"),
    ("Philadelphia", "Philadelphia", "PA", "191"),
    ("Pittsburgh", "Allegheny", "PA", "152"),
    ("Allentown", "Lehigh", "PA", "181"),
    ("Boston", "Suffolk", "MA", "021"),
    ("Cambridge", "Middlesex", "MA", "021"),
    ("Worcester", "Worcester", "MA", "016"),
    ("Hartford", "Hartford", "CT", "061"),
    ("Stamford", "Fairfield", "CT", "069"),
    ("Baltimore", "Baltimore", "MD", "212"),
    ("Annapolis", "Anne Arundel", "MD", "214"),
    ("Richmond", "Richmond", "VA", "232"),
    ("Arlington", "Arlington", "VA", "222"),
    ("Chicago", "Cook", "IL", "606"),
    ("Springfield", "Sangamon", "IL", "627"),
    ("Columbus", "Franklin", "OH", "432"),
    ("Cleveland", "Cuyahoga", "OH", "441"),
    ("Detroit", "Wayne", "MI", "482"),
    ("Atlanta", "Fulton", "GA", "303"),
    ("Savannah", "Chatham", "GA", "314"),
    ("Miami", "Miami-Dade", "FL", "331"),
    ("Orlando", "Orange", "FL", "328"),
    ("Tampa", "Hillsborough", "FL", "336"),
    ("Houston", "Harris", "TX", "770"),
    ("Dallas", "Dallas", "TX", "752"),
    ("Austin", "Travis", "TX", "787"),
    ("Denver", "Denver", "CO", "802"),
    ("Phoenix", "Maricopa", "AZ", "850"),
    ("Seattle", "King", "WA", "981"),
    ("Portland", "Multnomah", "OR", "972"),
    ("San Francisco", "San Francisco", "CA", "941"),
    ("Los Angeles", "Los Angeles", "CA", "900"),
    ("San Diego", "San Diego", "CA", "921"),
    ("Sacramento", "Sacramento", "CA", "958"),
    ("Las Vegas", "Clark", "NV", "891"),
    ("Minneapolis", "Hennepin", "MN", "554"),
    ("St. Louis", "St. Louis", "MO", "631"),
    ("Nashville", "Davidson", "TN", "372"),
    ("Charlotte", "Mecklenburg", "NC", "282"),
    ("Raleigh", "Wake", "NC", "276"),
    ("New Orleans", "Orleans", "LA", "701"),
)

EMAIL_DOMAINS = (
    "gm.com", "hm.com", "ym.com", "aol.com", "inbox.net", "mail.org",
    "post.net", "webmail.com",
)

#: (item, category, price) — books, DVDs, electronics, as in the paper's
#: scraped online-store items.
ITEMS = (
    ("iPod", "electronics", 169.99),
    ("PSP", "electronics", 269.99),
    ("DVD Player", "electronics", 89.99),
    ("Headphones", "electronics", 49.99),
    ("Digital Camera", "electronics", 229.99),
    ("MP3 Player", "electronics", 79.99),
    ("USB Drive", "electronics", 19.99),
    ("Laptop Sleeve", "electronics", 29.99),
    ("The Great Gatsby", "book", 12.99),
    ("War and Peace", "book", 24.99),
    ("Moby Dick", "book", 15.99),
    ("Pride and Prejudice", "book", 11.99),
    ("Crime and Punishment", "book", 14.99),
    ("The Odyssey", "book", 13.99),
    ("Don Quixote", "book", 18.99),
    ("Jane Eyre", "book", 10.99),
    ("Casablanca", "dvd", 14.99),
    ("The Godfather", "dvd", 19.99),
    ("Citizen Kane", "dvd", 16.99),
    ("Vertigo", "dvd", 15.99),
    ("Singin' in the Rain", "dvd", 13.99),
    ("Rear Window", "dvd", 14.99),
    ("Some Like It Hot", "dvd", 12.99),
    ("North by Northwest", "dvd", 15.99),
    ("Jazz Classics CD", "cd", 14.99),
    ("Greatest Hits CD", "cd", 16.99),
    ("Symphony No. 9 CD", "cd", 18.99),
    ("Blues Anthology CD", "cd", 17.99),
)

STORES = (
    "Main St Books", "Tech Depot", "Music Corner", "The Media Shop",
    "Corner Electronics", "Downtown DVDs", "Page Turners", "Sound & Vision",
)

CARD_TYPES = ("visa", "master", "amex", "discover")

PAYMENT_STATUSES = ("paid", "pending", "refunded")

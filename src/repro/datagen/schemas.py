"""The paper's schemas, MDs and targets.

Two schema variants are provided:

* the *example* schemas of Example 1.1 — ``credit`` (9 attributes) and
  ``billing`` (9 attributes) — with the MDs ϕ1–ϕ3 of Example 2.1 and the
  target lists ``(Yc, Yb)``; these drive the worked-example tests
  (Examples 3.5, 4.1, 5.1);
* the *extended* schemas of Section 6.2 — 13-attribute ``credit`` and
  21-attribute ``billing`` — with 11-attribute target lists and the 7
  card-holder matching MDs used in the quality/efficiency experiments.
"""

from __future__ import annotations

from typing import List

from repro.core.md import MatchingDependency
from repro.core.schema import ComparableLists, RelationSchema, SchemaPair

# ---------------------------------------------------------------------------
# Example 1.1 schemas
# ---------------------------------------------------------------------------

#: Attributes of the Example 1.1 credit relation.
CREDIT_EXAMPLE_ATTRIBUTES = (
    "c#", "SSN", "FN", "LN", "addr", "tel", "email", "gender", "type",
)

#: Attributes of the Example 1.1 billing relation.
BILLING_EXAMPLE_ATTRIBUTES = (
    "c#", "FN", "LN", "post", "phn", "email", "gender", "item", "price",
)


def credit_billing_pair() -> SchemaPair:
    """The Example 1.1 schema pair ``(credit, billing)``."""
    return SchemaPair(
        RelationSchema("credit", CREDIT_EXAMPLE_ATTRIBUTES),
        RelationSchema("billing", BILLING_EXAMPLE_ATTRIBUTES),
    )


def paper_target(pair: SchemaPair) -> ComparableLists:
    """The card-holder lists ``(Yc, Yb)`` of Example 1.1."""
    return ComparableLists(
        pair,
        ["FN", "LN", "addr", "tel", "gender"],
        ["FN", "LN", "post", "phn", "gender"],
    )


def paper_mds(pair: SchemaPair, dl_operator: str = "dl(0.8)") -> List[MatchingDependency]:
    """The MDs ϕ1, ϕ2, ϕ3 of Example 2.1.

    ``dl_operator`` is the operator name for the first-name similarity test
    (the paper's ``≈d``); the default is the DL metric at θ = 0.8 used in
    Section 6.
    """
    phi1 = MatchingDependency(
        pair,
        [
            ("LN", "LN", "="),
            ("addr", "post", "="),
            ("FN", "FN", dl_operator),
        ],
        [
            ("FN", "FN"),
            ("LN", "LN"),
            ("addr", "post"),
            ("tel", "phn"),
            ("gender", "gender"),
        ],
    )
    phi2 = MatchingDependency(
        pair, [("tel", "phn", "=")], [("addr", "post")]
    )
    phi3 = MatchingDependency(
        pair, [("email", "email", "=")], [("FN", "FN"), ("LN", "LN")]
    )
    return [phi1, phi2, phi3]


# ---------------------------------------------------------------------------
# Section 6.2 extended schemas
# ---------------------------------------------------------------------------

#: 13-attribute extended credit schema (Section 6.2).
CREDIT_EXTENDED_ATTRIBUTES = (
    "c#", "SSN", "FN", "MI", "LN", "street", "city", "county", "state",
    "zip", "tel", "email", "gender",
)

#: 21-attribute extended billing schema (Section 6.2).
BILLING_EXTENDED_ATTRIBUTES = (
    "c#", "FN", "MI", "LN", "street", "city", "county", "state", "zip",
    "phn", "email", "gender", "item", "category", "price", "quantity",
    "order_date", "ship_state", "ship_zip", "payment_status", "store",
)


def extended_pair() -> SchemaPair:
    """The Section 6.2 schema pair: 13-attribute credit, 21-attribute billing."""
    return SchemaPair(
        RelationSchema("credit", CREDIT_EXTENDED_ATTRIBUTES),
        RelationSchema("billing", BILLING_EXTENDED_ATTRIBUTES),
    )


def extended_target(pair: SchemaPair) -> ComparableLists:
    """The 11-attribute card-holder identification lists of Section 6.2.

    "Each of the lists consists of 11 attributes for name, phone, street,
    city, county, zip, etc."  The card number is deliberately *not* part
    of the identity: in the fraud-detection setting two tuples with the
    same ``c#`` may well describe different people (a family member or a
    fraudster using the card) — that is exactly what matching must detect.
    """
    return ComparableLists(
        pair,
        ["FN", "MI", "LN", "street", "city", "county", "state", "zip",
         "tel", "email", "gender"],
        ["FN", "MI", "LN", "street", "city", "county", "state", "zip",
         "phn", "email", "gender"],
    )


def extended_mds(
    pair: SchemaPair, dl_operator: str = "dl(0.8)"
) -> List[MatchingDependency]:
    """The 7 card-holder matching MDs over the extended schemas.

    Reconstructed from the paper's description ("7 simple MDs over credit
    and billing, which specify matching rules for card holders") following
    the style of Example 2.1: one full matching key plus identification
    rules for names, addresses, phones and emails, whose interaction lets
    ``findRCKs`` deduce several shorter keys.
    """
    target = extended_target(pair)
    identify_all = list(target)
    return [
        # ϕ1: same last name + same street/city/zip + similar first name
        #     identifies the card holder (the hand-written matching key).
        MatchingDependency(
            pair,
            [
                ("LN", "LN", "="),
                ("street", "street", "="),
                ("city", "city", "="),
                ("zip", "zip", "="),
                ("FN", "FN", dl_operator),
            ],
            identify_all,
        ),
        # ϕ2: same phone number → same postal address.
        MatchingDependency(
            pair,
            [("tel", "phn", "=")],
            [
                ("street", "street"),
                ("city", "city"),
                ("county", "county"),
                ("state", "state"),
                ("zip", "zip"),
            ],
        ),
        # ϕ3: same email → same name.
        MatchingDependency(
            pair,
            [("email", "email", "=")],
            [("FN", "FN"), ("LN", "LN")],
        ),
        # ϕ4: same zip code → same city, county and state.
        MatchingDependency(
            pair,
            [("zip", "zip", "=")],
            [("city", "city"), ("county", "county"), ("state", "state")],
        ),
        # ϕ5: same card number + similar name identifies the holder.
        MatchingDependency(
            pair,
            [
                ("c#", "c#", "="),
                ("FN", "FN", dl_operator),
                ("LN", "LN", dl_operator),
            ],
            identify_all,
        ),
        # ϕ6: same full name at the same street and zip → same phone.
        MatchingDependency(
            pair,
            [
                ("FN", "FN", "="),
                ("LN", "LN", "="),
                ("street", "street", "="),
                ("zip", "zip", "="),
            ],
            [("tel", "phn")],
        ),
        # ϕ7: same full name with the same phone → same email.
        MatchingDependency(
            pair,
            [
                ("FN", "FN", "="),
                ("LN", "LN", "="),
                ("tel", "phn", "="),
            ],
            [("email", "email")],
        ),
    ]

"""Random MD generator for the scalability experiments (Section 6.1).

"The MDs used in these experiments were produced by a generator.  Given
schemas (R1, R2) and a number l, the generator randomly produces a set Σ of
l MDs over the schemas."

The generator builds a pair of synthetic schemas with configurable arity
and draws MDs with:

* LHS of 1–``max_lhs`` atoms over random comparable positions, each with a
  random operator from a small Θ (equality-biased, as hand-written rules
  tend to be);
* RHS of 1–``max_rhs`` identified pairs, biased towards positions inside
  the target ``(Y1, Y2)`` so that the generated Σ actually yields RCKs
  relative to the target (a uniform RHS almost never touches Y, making
  findRCKs trivially terminate — useless as a benchmark).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.md import MatchingDependency
from repro.core.schema import ComparableLists, RelationSchema, SchemaPair

#: Default operator pool: equality plus two thresholded metrics.
DEFAULT_OPERATORS = ("=", "=", "dl(0.8)", "jw(0.9)")


@dataclass(frozen=True)
class GeneratedWorkload:
    """A synthetic reasoning workload: schema pair, target, MD set."""

    pair: SchemaPair
    target: ComparableLists
    sigma: Tuple[MatchingDependency, ...]


def synthetic_pair(arity: int, name_left: str = "R1", name_right: str = "R2") -> SchemaPair:
    """A schema pair with ``arity`` positionally comparable attributes each."""
    if arity < 2:
        raise ValueError(f"arity must be >= 2, got {arity}")
    left = RelationSchema(name_left, [f"A{i}" for i in range(arity)])
    right = RelationSchema(name_right, [f"B{i}" for i in range(arity)])
    return SchemaPair(left, right)


def generate_workload(
    md_count: int,
    target_length: int,
    arity: int = 0,
    max_lhs: int = 4,
    max_rhs: int = 2,
    operators: Sequence[str] = DEFAULT_OPERATORS,
    seed: int = 0,
    rhs_target_bias: float = 0.7,
) -> GeneratedWorkload:
    """Generate ``md_count`` random MDs and a length-``target_length`` target.

    ``arity`` defaults to ``2 * target_length`` so half the attributes are
    inside the target and half are auxiliary evidence (emails, phones, ...),
    mirroring the structure of real rule sets where LHS attributes need not
    belong to Y (Example 2.1: email is not in Yc/Yb).

    >>> workload = generate_workload(md_count=50, target_length=6, seed=1)
    >>> len(workload.sigma)
    50
    >>> len(workload.target)
    6
    """
    if md_count < 1:
        raise ValueError(f"md_count must be >= 1, got {md_count}")
    if target_length < 1:
        raise ValueError(f"target_length must be >= 1, got {target_length}")
    if arity == 0:
        arity = 2 * target_length
    if arity < target_length:
        raise ValueError(
            f"arity ({arity}) must cover the target length ({target_length})"
        )
    rng = random.Random(seed)
    pair = synthetic_pair(arity)
    target = ComparableLists(
        pair,
        [f"A{i}" for i in range(target_length)],
        [f"B{i}" for i in range(target_length)],
    )

    target_positions = list(range(target_length))
    all_positions = list(range(arity))
    sigma: List[MatchingDependency] = []
    seen = set()
    attempts = 0
    while len(sigma) < md_count and attempts < md_count * 50:
        attempts += 1
        lhs_size = rng.randrange(1, max_lhs + 1)
        lhs_positions = rng.sample(all_positions, min(lhs_size, arity))
        lhs = [
            (f"A{position}", f"B{position}", rng.choice(operators))
            for position in lhs_positions
        ]
        rhs_size = rng.randrange(1, max_rhs + 1)
        # Bias the RHS towards target positions (rhs_target_bias), so
        # deductions can reach the target and findRCKs has work to do.
        # Lower bias yields sparser rule interaction — fewer total RCKs.
        rhs_positions = set()
        for _ in range(rhs_size):
            pool = (
                target_positions
                if rng.random() < rhs_target_bias
                else all_positions
            )
            rhs_positions.add(rng.choice(pool))
        rhs_positions -= set(lhs_positions)
        if not rhs_positions:
            continue
        rhs = [(f"A{position}", f"B{position}") for position in sorted(rhs_positions)]
        dependency = MatchingDependency(pair, lhs, rhs)
        key = (frozenset(dependency.lhs), frozenset(dependency.rhs))
        if key in seen:
            continue
        seen.add(key)
        sigma.append(dependency)
    if len(sigma) < md_count:
        raise RuntimeError(
            f"could not generate {md_count} distinct MDs over arity {arity}; "
            f"got {len(sigma)} — increase arity or max_lhs"
        )
    return GeneratedWorkload(pair, target, tuple(sigma))

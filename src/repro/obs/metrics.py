"""A small metrics registry: counters, gauges, and percentile histograms.

This unifies the ad-hoc counter structs scattered through the stack
(``PlanStats``, the store's ``comparisons``/``merges`` fields) behind
one render path: counters accumulate, gauges record the latest value,
histograms keep raw observations and summarize to count/min/max/mean and
p50/p95/p99.  :meth:`MetricsRegistry.as_dict` is the single JSON shape
every consumer sees — ``MatchReport.stats``, the trace file's
``metrics`` section, and the ``BENCH_*.json`` benchmark documents all
render through it (``benchmarks/check_bench_json.py`` schema-checks that
shape).

Percentiles use linear interpolation between closest ranks (the same
definition as ``numpy.percentile``'s default): for sorted observations
``x[0..n-1]``, the ``q``-th percentile sits at rank ``q/100 * (n-1)``,
interpolating between the neighboring observations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: The percentiles every histogram summary reports.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    >>> percentile(range(101), 95)
    95.0
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[int(rank)])
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class Histogram:
    """Raw observations with a percentile summary.

    Runs here are bounded (one process, one workload), so the histogram
    keeps every observation exactly rather than approximating with
    buckets — percentiles are then exact by construction.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def summary(self) -> Dict[str, float]:
        """count/min/max/mean plus p50/p95/p99, JSON-ready."""
        if not self.values:
            return {"count": 0}
        out: Dict[str, float] = {
            "count": len(self.values),
            "min": min(self.values),
            "max": max(self.values),
            "mean": sum(self.values) / len(self.values),
        }
        for q in SUMMARY_PERCENTILES:
            out[f"p{q:g}"] = percentile(self.values, q)
        return out


class MetricsRegistry:
    """Counters, gauges, and histograms under dotted string names."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add to a monotonically accumulating counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time quantity."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram (created on first use)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or ``None`` when nothing was observed."""
        return self.histograms.get(name)

    # -- composition ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges last-wins,
        histograms pool their observations."""
        for name, amount in other.counters.items():
            self.count(name, amount)
        self.gauges.update(other.gauges)
        for name, histogram in other.histograms.items():
            for value in histogram.values:
                self.observe(name, value)

    def absorb_counters(self, counters: Dict[str, object]) -> None:
        """Adopt a plain counter dict (e.g. ``PlanStats.as_dict()``).

        Non-numeric entries (such as ``serial_fallback_reason``) are
        recorded as gauges so nothing is silently dropped.
        """
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                if value is not None:
                    self.gauges[name] = value
            else:
                self.counters[name] = self.counters.get(name, 0) + int(value)

    # -- rendering -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The canonical JSON shape: counters, gauges, histogram summaries."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }

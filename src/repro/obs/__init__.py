"""``repro.obs`` — zero-dependency observability for the resolution stack.

Three pieces, threaded through every layer (workspace, plan kernel,
parallel executor, streaming engine, CLI, benchmarks):

* :mod:`~repro.obs.trace` — a :class:`Tracer` of nested monotonic-clock
  spans with a no-op :data:`NULL_TRACER` default, so instrumentation
  stays in place and untraced hot paths pay ~nothing;
* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and exact-percentile histograms (p50/p95/p99), the one render
  path behind ``MatchReport.stats``, trace files, and ``BENCH_*.json``;
* :mod:`~repro.obs.export` — run manifests plus exporters: Chrome
  ``trace_event`` JSON (``about:tracing`` / Perfetto), JSONL, and the
  ``repro trace summarize`` text table.
"""

from .export import (
    TRACE_FORMATS,
    read_trace,
    run_manifest,
    summarize_trace,
    trace_document,
    validate_trace,
    write_trace,
)
from .metrics import Histogram, MetricsRegistry, percentile
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TRACE_FORMATS",
    "percentile",
    "read_trace",
    "run_manifest",
    "summarize_trace",
    "trace_document",
    "validate_trace",
    "write_trace",
]

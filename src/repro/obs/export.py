"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, and a text summary.

The on-disk trace is one JSON document in the Chrome trace *object*
format, directly loadable in ``about:tracing`` or https://ui.perfetto.dev
(both ignore unknown top-level keys), carrying three sections:

* ``traceEvents`` — one complete (``"ph": "X"``) event per span, with
  microsecond timestamps re-based to the earliest span.  Spans whose
  attributes carry a ``worker`` tag (merged from pool processes) render
  on their own named thread row, so shard balance is visible at a glance;
* ``manifest`` — the run manifest: spec fingerprint, execution mode,
  workers, command line, platform — everything needed to say *what* run
  this trace observed (see :func:`run_manifest`);
* ``metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry` render
  of the run's counters/gauges/histograms.

:func:`summarize_trace` aggregates a document back into a per-span-name
text table (``repro trace summarize``); :func:`validate_trace` is the
structural schema check CI runs on smoke traces.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .metrics import MetricsRegistry
from .trace import Span, Tracer

#: Trace file formats the writers/CLI understand.
TRACE_FORMATS = ("chrome", "jsonl")


def run_manifest(**fields) -> Dict[str, object]:
    """A run manifest: environment stamp plus caller-supplied fields.

    Callers layer in what identifies the run — the workspace adds the
    spec fingerprint/mode/workers, the CLI adds its argv and data files.
    """
    manifest: Dict[str, object] = {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": sys.platform,
    }
    manifest.update(fields)
    return manifest


def _span_events(
    span: Span, origin: float, tid: int, events: List[Dict[str, object]]
) -> None:
    worker = span.attrs.get("worker")
    if isinstance(worker, int):
        tid = worker + 1
    events.append(
        {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": round((span.start - origin) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": dict(span.attrs),
        }
    )
    for child in span.children:
        _span_events(child, origin, tid, events)


def trace_document(
    tracer: Tracer,
    manifest: Optional[Dict[str, object]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """The Chrome-loadable trace document for a tracer's spans."""
    roots = tracer.spans()
    origin = min((span.start for span in roots), default=0.0)
    events: List[Dict[str, object]] = []
    tids = {0}
    for root in roots:
        _span_events(root, origin, 0, events)
    for event in events:
        tids.add(event["tid"])
    # Named thread rows: the main line plus one per merged worker.
    for tid in sorted(tids):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": "main" if tid == 0 else f"worker-{tid - 1}"},
            }
        )
    return {
        "displayTimeUnit": "ms",
        "manifest": manifest or run_manifest(),
        "metrics": metrics.as_dict() if metrics is not None else None,
        "traceEvents": events,
    }


def write_trace(
    tracer: Tracer,
    path,
    manifest: Optional[Dict[str, object]] = None,
    metrics: Optional[MetricsRegistry] = None,
    format: str = "chrome",
) -> Dict[str, object]:
    """Write the trace to ``path``; returns the chrome document either way.

    ``format="chrome"`` writes the single JSON document;
    ``format="jsonl"`` writes one JSON object per line — a ``manifest``
    line, a ``metrics`` line, then every span event in timestamp order —
    for log shippers and ``grep``.
    """
    if format not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {format!r}; choose one of {list(TRACE_FORMATS)}"
        )
    document = trace_document(tracer, manifest=manifest, metrics=metrics)
    path = Path(path)
    if format == "chrome":
        path.write_text(
            json.dumps(document, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        return document
    lines = [
        json.dumps({"manifest": document["manifest"]}, sort_keys=True, default=str),
        json.dumps({"metrics": document["metrics"]}, sort_keys=True, default=str),
    ]
    spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    for event in sorted(spans, key=lambda e: e["ts"]):
        lines.append(json.dumps({"span": event}, sort_keys=True, default=str))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return document


def read_trace(path) -> Dict[str, object]:
    """Read a trace file in either format back into the chrome document."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict):
        return document
    # JSONL: manifest line, metrics line, span lines.
    rebuilt: Dict[str, object] = {
        "displayTimeUnit": "ms",
        "manifest": {},
        "metrics": None,
        "traceEvents": [],
    }
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{number}: invalid JSON ({error})") from None
        if "manifest" in record:
            rebuilt["manifest"] = record["manifest"]
        elif "metrics" in record:
            rebuilt["metrics"] = record["metrics"]
        elif "span" in record:
            rebuilt["traceEvents"].append(record["span"])
    return rebuilt


def validate_trace(document: object) -> List[str]:
    """Structural problems with a trace document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"expected a JSON object, got {type(document).__name__}"]
    manifest = document.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("missing 'manifest' object")
    elif "spec_fingerprint" not in manifest:
        problems.append("manifest: missing 'spec_fingerprint'")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        problems.append("'traceEvents' must be a non-empty list")
        return problems
    spans = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{index}]: not an object")
            continue
        if event.get("ph") == "M":
            continue
        spans += 1
        for key, kind in (
            ("name", str), ("ph", str), ("ts", (int, float)),
            ("dur", (int, float)), ("pid", int), ("tid", int),
        ):
            if not isinstance(event.get(key), kind):
                problems.append(
                    f"traceEvents[{index}]: missing or mistyped {key!r}"
                )
    if spans == 0:
        problems.append("no span events (only metadata) in 'traceEvents'")
    metrics = document.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            problems.append("'metrics' must be an object or null")
        else:
            for section in ("counters", "gauges", "histograms"):
                if not isinstance(metrics.get(section), dict):
                    problems.append(f"metrics: missing '{section}' object")
    return problems


def summarize_trace(document: Dict[str, object]) -> str:
    """A per-span-name aggregate table of one trace document."""
    events = [
        event
        for event in document.get("traceEvents", [])
        if isinstance(event, dict) and event.get("ph") == "X"
    ]
    manifest = document.get("manifest") or {}
    lines = []
    if manifest:
        rendered = ", ".join(
            f"{key}={manifest[key]}"
            for key in ("spec_fingerprint", "mode", "workers", "created_at")
            if key in manifest
        )
        lines.append(f"# trace manifest: {rendered or manifest}")
    by_name: Dict[str, List[float]] = {}
    for event in events:
        by_name.setdefault(str(event["name"]), []).append(
            float(event["dur"]) / 1e3
        )
    header = f"{'span':<24} {'count':>6} {'total_ms':>10} {'mean_ms':>9} {'max_ms':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, durations in sorted(
        by_name.items(), key=lambda item: -sum(item[1])
    ):
        lines.append(
            f"{name:<24} {len(durations):>6} {sum(durations):>10.3f} "
            f"{sum(durations) / len(durations):>9.3f} {max(durations):>9.3f}"
        )
    metrics = document.get("metrics")
    if isinstance(metrics, dict):
        histograms = metrics.get("histograms") or {}
        if histograms:
            lines.append("")
            lines.append(
                f"{'histogram':<28} {'count':>6} {'p50':>10} {'p95':>10} {'p99':>10}"
            )
            for name, summary in sorted(histograms.items()):
                if not summary.get("count"):
                    continue
                lines.append(
                    f"{name:<28} {summary['count']:>6} "
                    f"{summary.get('p50', 0.0):>10.6f} "
                    f"{summary.get('p95', 0.0):>10.6f} "
                    f"{summary.get('p99', 0.0):>10.6f}"
                )
    return "\n".join(lines)

"""Nested-span tracing with a free-when-off null implementation.

The tracing model is deliberately small: a :class:`Tracer` hands out
:class:`Span` context managers; entering a span pushes it on the
tracer's stack (so spans nest lexically), exiting records its
monotonic-clock duration and attaches it to its parent (or to the
tracer's roots).  Spans carry an ``attrs`` dict of counters and
annotations (:meth:`Span.add` / :meth:`Span.set`), serialize to plain
dicts (:meth:`Span.to_dict`) so worker processes can ship their span
trees back to the parent, and re-attach via :meth:`Tracer.attach`.

**The hot path pays ~nothing when tracing is off**: the module-level
:data:`NULL_TRACER` singleton returns one shared, stateless
:class:`_NullSpan` from every call — no allocation, no clock read, no
stack — so instrumentation can stay unconditionally in place.  The
overhead of those no-op calls is measured (not assumed) by
``benchmarks/test_obs_overhead.py``.

Everything here is pure standard library; exporters (JSONL, Chrome
``trace_event``) live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple


class Span:
    """One timed, attributed node of a trace tree.

    Use as a context manager (the only way the tracer hands spans out):

    >>> tracer = Tracer()
    >>> with tracer.span("compile") as span:
    ...     span.add("rules", 3)
    >>> tracer.roots[0].attrs["rules"]
    3
    """

    __slots__ = ("name", "start", "duration", "attrs", "children", "_tracer")

    def __init__(self, name: str, attrs: Dict[str, object], tracer: "Tracer"):
        self.name = name
        self.start: float = 0.0
        self.duration: float = 0.0
        self.attrs = attrs
        self.children: List["Span"] = []
        self._tracer = tracer

    # -- context management -------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        now = time.perf_counter()
        self.duration = now - self.start
        tracer = self._tracer
        # An exception can unwind past manually-entered child spans
        # without running their ``__exit__``; close the leaked spans on
        # the way out (best-effort durations) so the stack stays sound
        # and the trace keeps what was recorded before the failure.
        while tracer._stack and tracer._stack[-1] is not self:
            leaked = tracer._stack.pop()
            leaked.duration = now - leaked.start
            if tracer._stack:
                tracer._stack[-1].children.append(leaked)
        if tracer._stack:
            tracer._stack.pop()
        if tracer._stack:
            tracer._stack[-1].children.append(self)
        else:
            tracer.roots.append(self)
        return False

    # -- annotations ---------------------------------------------------

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a counter attribute on this span."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def set(self, key: str, value: object) -> None:
        """Set an annotation attribute on this span."""
        self.attrs[key] = value

    # -- (de)serialization for cross-process merging -------------------

    def to_dict(self) -> Dict[str, object]:
        """A picklable/JSON-able rendering of this span subtree."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "Span":
        """Rebuild a span subtree shipped from another process."""
        span = cls(str(document["name"]), dict(document.get("attrs", {})), None)
        span.start = float(document.get("start", 0.0))
        span.duration = float(document.get("duration", 0.0))
        span.children = [
            cls.from_dict(child) for child in document.get("children", ())
        ]
        return span

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` over this subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"{len(self.children)} child(ren))"
        )


class _NullSpan:
    """The shared do-nothing span; every no-op call lands here."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, key: str, amount: int = 1) -> None:
        pass

    def set(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every call is a constant-time no-op.

    One module-level instance (:data:`NULL_TRACER`) serves every
    untraced plan and workspace, so "tracing off" costs one attribute
    load and one call returning a shared object — no allocation.
    """

    enabled = False
    roots: Tuple[Span, ...] = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def attach(self, documents, rebase_to=None, **attrs) -> None:
        pass

    def spans(self) -> Tuple[Span, ...]:
        return ()

    def event_count(self) -> int:
        return 0


#: The shared disabled tracer (what every plan starts with).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects nested spans with monotonic wall times.

    Not thread-safe by design: one tracer belongs to one workspace (and
    one worker process builds its own); the parallel executor merges
    worker trees explicitly via :meth:`attach`.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs) -> Span:
        """A new span to enter; nests under the currently open span."""
        return Span(name, attrs, self)

    def attach(
        self,
        documents: Sequence[Dict[str, object]],
        rebase_to: Optional[float] = None,
        **attrs,
    ) -> None:
        """Attach serialized span trees (e.g. from a worker process).

        The trees become children of the currently open span (or new
        roots).  With ``rebase_to``, the earliest start among the trees
        is shifted to that timestamp — worker clocks need not share an
        epoch with the parent's.  Extra ``attrs`` are set on each
        attached root (the parallel executor tags ``worker=N``).
        """
        spans = [Span.from_dict(document) for document in documents]
        if not spans:
            return
        if rebase_to is not None:
            earliest = min(span.start for span in spans)
            delta = rebase_to - earliest
            for span in spans:
                for node, _ in span.walk():
                    node.start += delta
        for span in spans:
            for key, value in attrs.items():
                span.set(key, value)
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)

    def spans(self) -> Tuple[Span, ...]:
        """The completed root spans, in completion order."""
        return tuple(self.roots)

    def event_count(self) -> int:
        """Total spans recorded (the no-op tracer always reports 0)."""
        return sum(1 for root in self.roots for _ in root.walk())

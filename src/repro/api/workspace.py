"""The :class:`Workspace` façade: one spec, every execution strategy.

A workspace is constructed from a :class:`~repro.api.spec.ResolutionSpec`
(or its document / file) and is the single front door to the system:

* :meth:`Workspace.deduce` — the RCKs the spec's rules yield;
* :meth:`Workspace.match` — batch matching in the spec's execution mode
  (``direct`` RCK agreement or ``enforce`` chase);
* :meth:`Workspace.enforce` — the enforcement chase explicitly;
* :meth:`Workspace.stream` — a spec-configured
  :class:`~repro.engine.matcher.IncrementalMatcher` over the same plan;
* :meth:`Workspace.explain` — the spec header plus the compiled plan.

Everything compiles through the :mod:`repro.plan` kernel **exactly
once** per workspace (observable via ``plan.stats.compiles``), and every
batch entry point returns one result type, :class:`MatchReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.findrcks import find_rcks
from repro.core.rck import RelativeKey
from repro.core.semantics import InstancePair
from repro.matching.clustering import Cluster, cluster_matches
from repro.matching.evaluate import Pair
from repro.plan.blocking import (
    BlockingBackend,
    HashBlockingBackend,
    RCKIndex,
)
from repro.plan.sn_index import WindowedSNIndex
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    run_manifest,
    write_trace,
)
from repro.plan.compile import EnforcementPlan, compile_plan
from repro.relations.relation import Relation

from .spec import ResolutionSpec, SpecError


@dataclass(frozen=True)
class MatchReport:
    """The unified result of any spec-driven batch matching run.

    Attributes
    ----------
    matches, candidates:
        The declared matches and the candidate pairs they were drawn from.
    clusters:
        The matches consolidated into entity clusters (transitive closure).
    provenance:
        For each matched pair, the names of the compiled rules/keys that
        justified it (``rck0``/``md1`` — the names ``plan explain`` prints).
    stats:
        A snapshot of the plan's cumulative :class:`~repro.plan.compile.PlanStats`
        counters taken when the report was built (``compiles`` stays 1 for
        a workspace's whole lifetime), merged with the workspace's
        :class:`~repro.obs.MetricsRegistry` — its counters flat alongside
        the plan counters, plus ``"gauges"`` and ``"histograms"``
        (p50/p95/p99 summaries) sub-mappings.  Every pre-existing
        ``PlanStats`` field keeps its key and meaning.
    fingerprint:
        The spec fingerprint the run executed under.
    mode:
        ``"direct"`` or ``"enforce"``.
    """

    matches: Tuple[Pair, ...]
    candidates: Tuple[Pair, ...]
    clusters: Tuple[Cluster, ...]
    provenance: Mapping[Pair, Tuple[str, ...]]
    stats: Mapping[str, object]
    fingerprint: str
    mode: str

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable rendering of the report."""
        return {
            "mode": self.mode,
            "spec_fingerprint": self.fingerprint,
            "matches": [list(pair) for pair in self.matches],
            "candidate_count": len(self.candidates),
            "clusters": [
                {
                    "left_tids": sorted(cluster.left_tids),
                    "right_tids": sorted(cluster.right_tids),
                }
                for cluster in self.clusters
            ],
            "provenance": [
                {"pair": list(pair), "rules": list(self.provenance[pair])}
                for pair in self.matches
                if pair in self.provenance
            ],
            "stats": dict(self.stats),
        }


class Workspace:
    """A compiled, executable view of one :class:`ResolutionSpec`.

    >>> from repro.api import Workspace
    >>> workspace = (Workspace.builder()
    ...     .schema("R", ["A", "B"], "S", ["A", "B"])
    ...     .target(["A"], ["A"])
    ...     .mds(["R[B] = S[B] -> R[A] <=> S[A]"])
    ...     .workspace())
    >>> len(workspace.deduce())
    1
    """

    def __init__(self, spec) -> None:
        if isinstance(spec, dict):
            spec = ResolutionSpec.from_dict(spec)
        if not isinstance(spec, ResolutionSpec):
            raise TypeError(
                "Workspace takes a ResolutionSpec or its document dict; "
                f"got {type(spec).__name__}"
            )
        self.spec = spec
        self._plan: Optional[EnforcementPlan] = None
        # A live tracer only when the spec asks for one; the null tracer
        # keeps every instrumented path allocation- and clock-free.
        self.tracer = Tracer() if spec.tracing_on else NULL_TRACER
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, document) -> "Workspace":
        """A workspace from a raw spec document."""
        return cls(ResolutionSpec.from_dict(document))

    @classmethod
    def from_json(cls, text: str) -> "Workspace":
        """A workspace from spec JSON text."""
        return cls(ResolutionSpec.from_json(text))

    @classmethod
    def from_file(cls, path) -> "Workspace":
        """A workspace from a spec JSON file."""
        return cls(ResolutionSpec.from_file(path))

    @staticmethod
    def builder():
        """A fluent :class:`~repro.api.spec.SpecBuilder`."""
        from .spec import SpecBuilder

        return SpecBuilder()

    # ------------------------------------------------------------------
    # The one compile
    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """The spec's fingerprint (what snapshots embed)."""
        return self.spec.fingerprint()

    @property
    def plan(self) -> EnforcementPlan:
        """The spec compiled through the kernel — exactly once.

        The first access parses the MDs, deduces (or adopts) the RCKs,
        builds the blocking backend, and calls
        :func:`repro.plan.compile.compile_plan`; every later access and
        every execution mode reuses the same plan object, its predicate
        table, and its similarity cache.
        """
        if self._plan is None:
            spec = self.spec
            with self.tracer.span("compile", fingerprint=self.fingerprint) as span:
                pair = spec.schema_pair()
                target = spec.target_lists(pair)
                registry = spec.build_registry()
                with self.tracer.span("parse-mds", mds=len(spec.mds)):
                    sigma = spec.parsed_mds(pair)
                rcks = spec.explicit_rcks(target)
                if rcks is None:
                    with self.tracer.span("deduce-rcks", top_k=spec.top_k):
                        rcks = find_rcks(sigma, target, m=spec.top_k)
                with self.tracer.span("build-blocking", backend=spec.blocking_backend):
                    blocking = self._blocking_backend(rcks)
                with self.tracer.span("compile-plan"):
                    self._plan = compile_plan(
                        sigma,
                        target,
                        rcks=rcks,
                        registry=registry,
                        blocking=blocking,
                        window=spec.window,
                        cached=spec.cache,
                        cache_limit=spec.cache_limit,
                    )
                span.set("rules", len(self._plan.rules))
                span.set("keys", len(self._plan.keys))
            # Hand the workspace's tracer and registry to the plan: the
            # executors (chase, parallel_chase, the engine) instrument
            # through ``plan.tracer`` / ``plan.metrics``.
            self._plan.tracer = self.tracer
            self._plan.metrics = self.metrics
        return self._plan

    def _blocking_backend(
        self, rcks: Sequence[RelativeKey]
    ) -> Optional[BlockingBackend]:
        """The spec's blocking section realized as a kernel backend.

        ``encode`` applies uniformly: the named attributes are
        Soundex-encoded before keying in every backend, so the setting
        always means something when it appears in the fingerprint.
        ``key_length`` configures the hash backend (per-RCK index keys).
        """
        spec = self.spec
        if spec.key_pairs is not None:
            # An explicit derived key: one pass over the named attribute
            # pairs, Soundex-encoding the attributes the spec asks for.
            if spec.blocking_backend == "hash":
                return HashBlockingBackend(
                    [RCKIndex("spec", spec.key_pairs, spec.encode)]
                )
            return WindowedSNIndex(spec.key_pairs, spec.window, spec.encode)
        if not rcks:
            return None
        if spec.blocking_backend == "hash":
            return HashBlockingBackend.per_rck(
                rcks, spec.key_length, spec.encode
            )
        # The rank-encoded, block-splitting SN index — the same class the
        # streaming store maintains incrementally, so batch and stream
        # share one set of window semantics.
        return WindowedSNIndex.from_rcks(rcks, spec.window, spec.encode)

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------

    def deduce(self) -> Tuple[RelativeKey, ...]:
        """The plan's relative candidate keys (deduced or pinned)."""
        return self.plan.rcks

    def candidates(self, left: Relation, right: Relation) -> List[Pair]:
        """Candidate pairs from the spec's blocking backend."""
        return self.plan.candidates(left, right)

    def match(
        self,
        left: Relation,
        right: Relation,
        candidates: Optional[Sequence[Pair]] = None,
        provenance: bool = True,
    ) -> MatchReport:
        """Batch matching in the spec's execution mode."""
        if self.spec.mode == "direct":
            return self._match_direct(left, right, candidates, provenance)
        return self.enforce(left, right, candidates, provenance)

    def enforce(
        self,
        left,
        right: Optional[Relation] = None,
        candidates: Optional[Sequence[Pair]] = None,
        provenance: bool = True,
    ) -> MatchReport:
        """Match by chasing the instances with the MDs (dynamic semantics).

        ``left`` may be an :class:`~repro.core.semantics.InstancePair`
        (then ``right`` must be omitted) or the left relation of a pair.
        With ``execution.workers > 1`` in the spec, the chase shards the
        candidate pairs into connected components and runs them across a
        process pool (:mod:`repro.plan.parallel`), falling back to the
        serial loop on small inputs; results are identical either way.
        """
        plan = self.plan
        started = time.perf_counter()
        with self.tracer.span("enforce", workers=self.spec.workers) as span:
            if isinstance(left, InstancePair):
                if right is not None:
                    raise TypeError(
                        "pass either an InstancePair or two relations, not both"
                    )
                instance = left
            else:
                instance = InstancePair(plan.pair, left, right)
            if candidates is None:
                with self.tracer.span("blocking") as blocking_span:
                    candidates = plan.candidates(instance.left, instance.right)
                    blocking_span.set("candidates", len(candidates))
            candidates = list(candidates)
            span.set("candidates", len(candidates))
            result = plan.enforce(
                instance,
                resolver=self.spec.resolver(),
                candidate_pairs=candidates,
                max_rounds=self.spec.max_rounds,
                workers=self.spec.workers,
                # The canonical document is what worker processes rebuild the
                # plan from (repro.plan.parallel); unused when workers == 1.
                spec_document=(
                    self.spec.to_dict() if self.spec.workers > 1 else None
                ),
                factorised=self.spec.factorised,
            )
            target_pairs = plan.target.attribute_pairs()
            matches = [
                pair
                for pair in candidates
                if result.identified(pair[0], pair[1], target_pairs)
            ]
            rule_names: Dict[Pair, Tuple[str, ...]] = {}
            if provenance:
                with self.tracer.span("provenance"):
                    chased = result.instance
                    for left_tid, right_tid in matches:
                        t1 = chased.left[left_tid]
                        t2 = chased.right[right_tid]
                        rule_names[(left_tid, right_tid)] = tuple(
                            rule.name
                            for rule in plan.rules
                            if plan.lhs_matches(rule, t1, t2)
                        )
            span.set("matches", len(matches))
        self.metrics.observe("match.seconds", time.perf_counter() - started)
        return self._report("enforce", matches, candidates, rule_names)

    def _match_direct(
        self,
        left: Relation,
        right: Relation,
        candidates: Optional[Sequence[Pair]],
        provenance: bool,
    ) -> MatchReport:
        """Direct rule matching: some RCK's comparisons all agree."""
        plan = self.plan
        started = time.perf_counter()
        with self.tracer.span("match", mode="direct") as span:
            if candidates is None:
                with self.tracer.span("blocking") as blocking_span:
                    candidates = plan.candidates(left, right)
                    blocking_span.set("candidates", len(candidates))
            candidates = list(candidates)
            span.set("candidates", len(candidates))
            plan.stats.pairs_compared += len(candidates)
            matches: List[Pair] = []
            key_names: Dict[Pair, Tuple[str, ...]] = {}
            for left_tid, right_tid in candidates:
                t1, t2 = left[left_tid], right[right_tid]
                if not plan.matches_any_key(t1, t2):
                    continue
                matches.append((left_tid, right_tid))
                if provenance:
                    key_names[(left_tid, right_tid)] = tuple(
                        key.name
                        for key in plan.keys
                        if plan.key_matches(key, t1, t2)
                    )
            span.set("matches", len(matches))
        self.metrics.observe("match.seconds", time.perf_counter() - started)
        return self._report("direct", matches, candidates, key_names)

    def stream(self, store=None):
        """A spec-configured incremental matcher over this workspace's plan.

        ``store`` resumes from a restored
        :class:`~repro.engine.store.MatchStore` (either backend); a store
        fingerprinted by a *different* spec is rejected with
        :class:`SpecError` (restoring it would silently match under rules
        it was not built with).  New and legacy (unfingerprinted) stores
        are stamped with this spec's fingerprint.

        The stream always runs under the spec's declared
        ``blocking.backend``: a store that cannot stream under it — or
        one whose live blocking structures were built under different
        semantics (e.g. a snapshot from the era when sorted-neighborhood
        specs silently streamed under hash) — is rejected with
        :class:`SpecError` rather than silently substituting semantics.

        With ``persistence.backend = "sqlite"`` in the spec and no
        explicit ``store``, the durable store at ``persistence.path`` is
        opened — created empty on first use, resumed (an O(1) warm
        restart) thereafter — under the same fingerprint semantics.
        """
        from repro.engine.matcher import IncrementalMatcher

        spec = self.spec
        opened_here = False
        if store is None and spec.persistence_backend == "sqlite":
            store = self.open_store()
            opened_here = True
        if store is not None:
            errors = []
            stamp = getattr(store, "spec_fingerprint", None)
            if stamp is not None and stamp != self.fingerprint:
                errors.append(
                    f"store was built from spec {stamp}, but this "
                    f"workspace's spec is {self.fingerprint}; "
                    "re-bootstrap the store or load the matching spec"
                )
            supported = getattr(store, "supported_blocking", ("hash",))
            family = getattr(store.blocking, "family", None)
            if spec.blocking_backend not in supported:
                errors.append(
                    f"this store cannot stream under "
                    f"blocking.backend {spec.blocking_backend!r} "
                    f"(it supports: {', '.join(supported)}); "
                    "use a store backend that supports it"
                )
            elif family != spec.blocking_backend:
                errors.append(
                    f"store streams under {family!r} blocking, but the "
                    f"spec declares {spec.blocking_backend!r}; its "
                    "candidate semantics would silently diverge from the "
                    "batch run — re-bootstrap the store under this spec"
                )
            if errors:
                if opened_here:
                    store.close(commit=False)
                raise SpecError(errors)
        # Any failure past this point must not leak a connection this
        # call opened: matcher construction and the fingerprint stamp can
        # both raise after the validation above passed (e.g. a store
        # whose live blocking index rejects the plan's key layout, or a
        # commit against a database that vanished).  The server's tenants
        # lazily open durable stores through this exact path, so a leak
        # here would hold a file handle for the life of the process.
        try:
            matcher = IncrementalMatcher(
                plan=self.plan,
                resolver=spec.resolver(),
                store=store,
                key_length=spec.key_length,
                encode_attributes=spec.encode,
                blocking_backend=spec.blocking_backend,
                window=spec.window,
                key_pairs=spec.key_pairs,
                max_cascade=spec.max_cascade,
                factorised=spec.factorised,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            if matcher.store.spec_fingerprint is None:
                matcher.store.spec_fingerprint = self.fingerprint
                matcher.store.commit()
        except Exception:
            if opened_here:
                store.close(commit=False)
            raise
        return matcher

    def open_store(self, path=None):
        """Open (or create) the spec's durable SQLite store.

        ``path`` overrides ``persistence.path``.  The store is wired to
        this workspace's tracer and metrics; its configuration comes from
        the compiled plan, so an existing file created under a different
        configuration is rejected by the store itself.
        """
        from repro.engine.sqlite import SQLiteMatchStore

        spec = self.spec
        target = path if path is not None else spec.persistence_path
        if target is None:
            raise SpecError(
                [
                    "no store path: pass one or set persistence.path "
                    "in the spec"
                ]
            )
        try:
            return SQLiteMatchStore(
                target,
                self.plan.target,
                self.plan.rcks,
                key_length=spec.key_length,
                encode_attributes=spec.encode,
                blocking_backend=spec.blocking_backend,
                window=spec.window,
                key_pairs=spec.key_pairs,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        except ValueError as error:
            # A configuration mismatch (including a store created under
            # different blocking semantics) is a spec-level refusal, not
            # a crash: surface it as the CLI's exit-2 error family.
            raise SpecError([str(error)]) from error

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def explain(self) -> str:
        """The spec header plus the compiled plan, human-readable."""
        spec = self.spec
        lines = [
            f"# Workspace: ResolutionSpec v{spec.version}, "
            f"fingerprint {self.fingerprint}",
            f"# execution: mode={spec.mode}, policy={spec.policy}, "
            f"top_k={spec.top_k}, cache={'on' if spec.cache else 'off'}, "
            f"workers={spec.workers}, "
            f"factorised={'on' if spec.factorised else 'off'}",
            self.plan.explain(),
        ]
        return "\n".join(lines)

    def manifest(self, **fields) -> Dict[str, object]:
        """The run manifest for this workspace's trace files."""
        return run_manifest(
            spec_fingerprint=self.fingerprint,
            mode=self.spec.mode,
            workers=self.spec.workers,
            policy=self.spec.policy,
            **fields,
        )

    def write_trace(
        self, path=None, format: Optional[str] = None, **manifest_fields
    ) -> Dict[str, object]:
        """Export the collected spans and metrics as a trace file.

        ``path``/``format`` default to the spec's ``observability``
        section; returns the Chrome trace document either way.
        """
        target = path if path is not None else self.spec.trace_path
        if target is None:
            raise ValueError(
                "no trace path: pass one or set observability.trace in the spec"
            )
        return write_trace(
            self.tracer,
            target,
            manifest=self.manifest(**manifest_fields),
            metrics=self.metrics,
            format=format if format is not None else self.spec.trace_format,
        )

    def _report(
        self,
        mode: str,
        matches: Sequence[Pair],
        candidates: Sequence[Pair],
        provenance: Dict[Pair, Tuple[str, ...]],
    ) -> MatchReport:
        # One stats mapping for every consumer: the plan's cumulative
        # counters flat at the top (backward compatible), the registry's
        # counters alongside them, and the richer registry sections as
        # sub-mappings.
        rendered = self.metrics.as_dict()
        stats: Dict[str, object] = dict(self.plan.stats.as_dict())
        stats.update(rendered["counters"])
        stats["gauges"] = rendered["gauges"]
        stats["histograms"] = rendered["histograms"]
        return MatchReport(
            matches=tuple(matches),
            candidates=tuple(candidates),
            clusters=tuple(cluster_matches(matches)),
            provenance=provenance,
            stats=stats,
            fingerprint=self.fingerprint,
            mode=mode,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        compiled = "compiled" if self._plan is not None else "uncompiled"
        return (
            f"Workspace(fingerprint={self.fingerprint}, "
            f"mode={self.spec.mode!r}, {compiled})"
        )

"""The versioned :class:`ResolutionSpec`: one declarative front door.

The paper's thesis is that matching rules are *declarative* artifacts;
this module extends that to the whole resolution task.  A spec is one
JSON/dict document — schema pair, target lists, MD text, optional
explicit RCKs, metric bindings, blocking backend and parameters, the
value-choice policy, and execution options — with a full
parse → validate → serialize round trip:

* :meth:`ResolutionSpec.from_dict` parses and validates, raising a
  :class:`SpecError` that carries **every** problem found, not just the
  first;
* :meth:`ResolutionSpec.to_dict` emits the canonical document, a fixed
  point of the round trip (``from_dict(spec.to_dict()) == spec``);
* :meth:`ResolutionSpec.fingerprint` hashes the canonical document —
  engine snapshots embed it so restoring a store under a different spec
  is rejected instead of silently mis-matching.

A :class:`~repro.api.workspace.Workspace` built from the spec compiles
it through the :mod:`repro.plan` kernel exactly once and executes it in
any mode (batch direct, batch enforcement, streaming).  The
:class:`SpecBuilder` offers the same document fluently from Python.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.md import MatchingDependency
from repro.core.parser import format_md, parse_md
from repro.core.rck import RelativeKey
from repro.core.schema import ComparableLists, RelationSchema, SchemaPair
from repro.core.semantics import ValueResolver, prefer_informative
from repro.metrics.registry import (
    DEFAULT_REGISTRY,
    MetricRegistry,
    default_registry,
)
from repro.obs.export import TRACE_FORMATS
from repro.plan.blocking import DEFAULT_ENCODED_ATTRIBUTES
from repro.plan.compile import DEFAULT_CACHE_LIMIT

#: Current specification format version.
SPEC_VERSION = 1

#: Backends a spec may name in its ``blocking`` section.
BLOCKING_BACKENDS = ("sorted-neighborhood", "hash")

#: Execution modes a spec may name in its ``execution`` section.
EXECUTION_MODES = ("enforce", "direct")

#: Store backends a spec may name in its ``persistence`` section.
PERSISTENCE_BACKENDS = ("memory", "sqlite")

#: Sections a v1 document may contain.
_SECTIONS = (
    "version", "schema", "target", "rules", "metrics",
    "blocking", "resolution", "execution", "observability",
    "persistence", "serve",
)


def _first_non_null(values: Sequence[object]) -> object:
    for value in values:
        if value is not None:
            return value
    return None


def _lexicographic_min(values: Sequence[object]) -> object:
    non_null = [value for value in values if value is not None]
    return min(non_null, key=str) if non_null else None


def _lexicographic_max(values: Sequence[object]) -> object:
    non_null = [value for value in values if value is not None]
    return max(non_null, key=str) if non_null else None


#: Named value-choice policies a spec's ``resolution.policy`` may select.
#: The policy decides which value a merged cell class (or a grown stream
#: cluster) takes; the matching operator itself only requires the cells
#: to be *identified* (Example 2.2), so this is configuration, not
#: semantics.
VALUE_POLICIES: Dict[str, ValueResolver] = {
    "prefer-informative": prefer_informative,
    "first-non-null": _first_non_null,
    "lexicographic-min": _lexicographic_min,
    "lexicographic-max": _lexicographic_max,
}


class SpecError(ValueError):
    """An invalid :class:`ResolutionSpec` document.

    ``errors`` carries *every* validation failure found, so a user fixes
    a spec in one round trip instead of one error per attempt.
    """

    def __init__(self, errors: Sequence[str]) -> None:
        self.errors: Tuple[str, ...] = tuple(errors) or (
            "invalid resolution spec",
        )
        super().__init__("; ".join(self.errors))


# ----------------------------------------------------------------------
# Validation helpers (each appends to a shared error list)
# ----------------------------------------------------------------------


def _check_int(
    errors: List[str], where: str, value: object, minimum: int
) -> bool:
    if not isinstance(value, int) or isinstance(value, bool):
        errors.append(f"{where}: expected an integer, got {value!r}")
        return False
    if value < minimum:
        errors.append(f"{where}: must be >= {minimum}, got {value}")
        return False
    return True


def _check_str_list(errors: List[str], where: str, value: object) -> bool:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        errors.append(f"{where}: expected a list of strings, got {value!r}")
        return False
    return True


def _schema_from(errors: List[str], where: str, section: object):
    if not isinstance(section, dict):
        errors.append(
            f"{where}: expected an object with 'name' and 'attributes'"
        )
        return None
    unknown = set(section) - {"name", "attributes"}
    if unknown:
        errors.append(f"{where}: unknown key(s) {sorted(unknown)}")
    name = section.get("name")
    attributes = section.get("attributes")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}.name: expected a non-empty string")
        return None
    if not _check_str_list(errors, f"{where}.attributes", attributes):
        return None
    try:
        return RelationSchema(name, attributes)
    except ValueError as error:
        errors.append(f"{where}: {error}")
        return None


def _registry_from(errors: List[str], bindings: object) -> MetricRegistry:
    """The registry the spec's metric bindings describe (best effort)."""
    if not isinstance(bindings, dict):
        errors.append(
            f"metrics: expected an object mapping alias names to "
            f"registered metric names, got {bindings!r}"
        )
        return DEFAULT_REGISTRY
    if not bindings:
        return DEFAULT_REGISTRY
    registry = default_registry()
    for alias in sorted(bindings):
        existing = bindings[alias]
        if not isinstance(alias, str) or not alias.isidentifier():
            errors.append(
                f"metrics: alias {alias!r} is not a valid operator name"
            )
            continue
        if not isinstance(existing, str):
            errors.append(
                f"metrics.{alias}: expected a metric name string, "
                f"got {existing!r}"
            )
            continue
        try:
            registry.alias(alias, existing)
        except KeyError as error:
            errors.append(f"metrics.{alias}: {str(error).strip(chr(34))}")
    return registry


def _check_operators(
    errors: List[str],
    where: str,
    atoms,
    registry: MetricRegistry,
) -> None:
    for atom in atoms:
        operator = atom.operator.name
        try:
            registry.resolve(operator)
        except (KeyError, ValueError) as error:
            errors.append(f"{where}: {str(error).strip(chr(34))}")


@dataclass(frozen=True)
class ResolutionSpec:
    """A validated, canonical entity-resolution specification.

    Construct with :meth:`from_dict` / :meth:`from_json` /
    :meth:`from_file` or through :class:`SpecBuilder`; the frozen
    dataclass holds the normalized document (defaults filled in), and
    :meth:`to_dict` is its inverse.
    """

    version: int
    left_name: str
    left_attributes: Tuple[str, ...]
    right_name: str
    right_attributes: Tuple[str, ...]
    target_left: Tuple[str, ...]
    target_right: Tuple[str, ...]
    mds: Tuple[str, ...]
    rcks: Optional[Tuple[Tuple[Tuple[str, str, str], ...], ...]] = None
    top_k: int = 5
    metrics: Tuple[Tuple[str, str], ...] = ()
    blocking_backend: str = "sorted-neighborhood"
    window: int = 10
    key_length: int = 1
    encode: Tuple[str, ...] = DEFAULT_ENCODED_ATTRIBUTES
    key_pairs: Optional[Tuple[Tuple[str, str], ...]] = None
    policy: str = "prefer-informative"
    mode: str = "enforce"
    max_rounds: int = 100
    max_cascade: int = 256
    cache: bool = True
    cache_limit: int = DEFAULT_CACHE_LIMIT
    workers: int = 1
    factorised: bool = True
    obs_enabled: bool = False
    trace_path: Optional[str] = None
    trace_format: str = "chrome"
    persistence_backend: str = "memory"
    persistence_path: Optional[str] = None
    serve_host: str = "127.0.0.1"
    serve_port: int = 8080
    serve_max_batch: int = 16
    serve_max_delay_ms: int = 10
    serve_queue_limit: int = 1024
    _fingerprint: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Parsing and validation
    # ------------------------------------------------------------------

    @classmethod
    def validate_document(cls, document: object) -> List[str]:
        """Every problem in ``document``, as actionable messages.

        Returns an empty list exactly when :meth:`from_dict` would
        succeed — ``repro spec validate`` prints this list.
        """
        _, errors = cls._parse(document)
        return errors

    @classmethod
    def from_dict(cls, document: object) -> "ResolutionSpec":
        """Parse and validate a spec document; all errors at once."""
        spec, errors = cls._parse(document)
        if errors:
            raise SpecError(errors)
        assert spec is not None
        return spec

    @classmethod
    def from_json(cls, text: str) -> "ResolutionSpec":
        """Parse a spec from its JSON text."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError([f"invalid JSON: {error}"]) from None
        return cls.from_dict(document)

    @classmethod
    def from_file(cls, path) -> "ResolutionSpec":
        """Read and validate a spec JSON file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise SpecError([f"spec file not found: {path}"]) from None
        try:
            return cls.from_json(text)
        except SpecError as error:
            raise SpecError(
                [f"{path}: {message}" for message in error.errors]
            ) from None

    @classmethod
    def _parse(cls, document: object):
        errors: List[str] = []
        if not isinstance(document, dict):
            return None, [f"expected a JSON object, got {type(document).__name__}"]

        unknown = set(document) - set(_SECTIONS)
        if unknown:
            errors.append(
                f"unknown section(s) {sorted(unknown)}; "
                f"a v{SPEC_VERSION} spec may contain {list(_SECTIONS)}"
            )

        version = document.get("version")
        if version != SPEC_VERSION:
            errors.append(
                f"unsupported spec version {version!r}; "
                f"this build reads version {SPEC_VERSION} "
                f"(add \"version\": {SPEC_VERSION})"
            )

        # -- schema -----------------------------------------------------
        schema = document.get("schema")
        left = right = None
        if not isinstance(schema, dict):
            errors.append(
                "missing or invalid 'schema' section; expected "
                "{\"left\": {\"name\", \"attributes\"}, \"right\": {...}}"
            )
        else:
            left = _schema_from(errors, "schema.left", schema.get("left"))
            right = _schema_from(errors, "schema.right", schema.get("right"))
        pair = SchemaPair(left, right) if left and right else None

        # -- target -----------------------------------------------------
        target_section = document.get("target")
        target = None
        target_left: Tuple[str, ...] = ()
        target_right: Tuple[str, ...] = ()
        if not isinstance(target_section, dict):
            errors.append(
                "missing or invalid 'target' section; expected "
                "{\"left\": [...], \"right\": [...]}"
            )
        else:
            ok = _check_str_list(
                errors, "target.left", target_section.get("left")
            ) and _check_str_list(
                errors, "target.right", target_section.get("right")
            )
            if ok:
                target_left = tuple(target_section["left"])
                target_right = tuple(target_section["right"])
                if pair is not None:
                    try:
                        target = ComparableLists(pair, target_left, target_right)
                    except ValueError as error:
                        errors.append(f"target: {error}")

        # -- metrics (needed to validate rule operators) ---------------
        registry = _registry_from(errors, document.get("metrics", {}))

        # -- rules ------------------------------------------------------
        rules = document.get("rules")
        md_lines: Tuple[str, ...] = ()
        rck_triples = None
        top_k = 5
        if not isinstance(rules, dict):
            errors.append(
                "missing or invalid 'rules' section; expected "
                "{\"mds\": [...], \"rcks\": null | [...], \"top_k\": 5}"
            )
        else:
            unknown_rules = set(rules) - {"mds", "rcks", "top_k"}
            if unknown_rules:
                errors.append(f"rules: unknown key(s) {sorted(unknown_rules)}")
            raw_mds = rules.get("mds", [])
            if isinstance(raw_mds, str):
                raw_mds = [
                    line.strip()
                    for line in raw_mds.splitlines()
                    if line.strip() and not line.strip().startswith("#")
                ]
            if _check_str_list(errors, "rules.mds", raw_mds):
                md_lines = tuple(raw_mds)
                if pair is not None:
                    for position, line in enumerate(md_lines):
                        try:
                            dependency = parse_md(line, pair)
                        except ValueError as error:
                            errors.append(f"rules.mds[{position}]: {error}")
                            continue
                        _check_operators(
                            errors, f"rules.mds[{position}]",
                            dependency.lhs, registry,
                        )
            raw_rcks = rules.get("rcks")
            if raw_rcks is not None:
                parsed_keys: List[Tuple[Tuple[str, str, str], ...]] = []
                if not isinstance(raw_rcks, (list, tuple)):
                    errors.append(
                        "rules.rcks: expected null or a list of keys, "
                        "each a list of [left, right, operator] triples"
                    )
                else:
                    for position, triples in enumerate(raw_rcks):
                        where = f"rules.rcks[{position}]"
                        try:
                            normalized = tuple(
                                (str(l), str(r), str(op)) for l, r, op in triples
                            )
                        except (TypeError, ValueError):
                            errors.append(
                                f"{where}: expected [left, right, operator] "
                                f"triples, got {triples!r}"
                            )
                            continue
                        parsed_keys.append(normalized)
                        if target is not None:
                            try:
                                key = RelativeKey.from_triples(target, normalized)
                            except ValueError as error:
                                errors.append(f"{where}: {error}")
                                continue
                            _check_operators(errors, where, key.atoms, registry)
                    rck_triples = tuple(parsed_keys)
            top_k = rules.get("top_k", 5)
            _check_int(errors, "rules.top_k", top_k, 1)
            if not md_lines and not raw_rcks:
                errors.append(
                    "rules: need at least one MD in 'mds' or one key in 'rcks'"
                )

        # -- blocking ---------------------------------------------------
        blocking = document.get("blocking", {})
        backend = "sorted-neighborhood"
        window, key_length = 10, 1
        encode: Tuple[str, ...] = DEFAULT_ENCODED_ATTRIBUTES
        key_pairs = None
        if not isinstance(blocking, dict):
            errors.append(f"blocking: expected an object, got {blocking!r}")
        else:
            unknown_blocking = set(blocking) - {
                "backend", "window", "key_length", "encode", "key_pairs"
            }
            if unknown_blocking:
                errors.append(
                    f"blocking: unknown key(s) {sorted(unknown_blocking)}"
                )
            backend = blocking.get("backend", "sorted-neighborhood")
            if backend not in BLOCKING_BACKENDS:
                errors.append(
                    f"blocking.backend: unknown backend {backend!r}; "
                    f"choose one of {list(BLOCKING_BACKENDS)}"
                )
            window = blocking.get("window", 10)
            # A window of 0 or 1 is legal at the backend level but can
            # never pair two records — a spec declaring one would
            # silently resolve nothing, so validation refuses it.
            if not isinstance(window, int) or isinstance(window, bool):
                _check_int(errors, "blocking.window", window, 2)
            elif window < 2:
                errors.append(
                    f"blocking.window: must be >= 2, got {window} — a "
                    "sorted-neighborhood window needs at least 2 slots to "
                    "ever pair two records"
                )
            key_length = blocking.get("key_length", 1)
            _check_int(errors, "blocking.key_length", key_length, 1)
            raw_encode = blocking.get("encode", list(DEFAULT_ENCODED_ATTRIBUTES))
            if _check_str_list(errors, "blocking.encode", raw_encode):
                encode = tuple(raw_encode)
            raw_pairs = blocking.get("key_pairs")
            if raw_pairs is not None:
                try:
                    key_pairs = tuple((str(l), str(r)) for l, r in raw_pairs)
                except (TypeError, ValueError):
                    errors.append(
                        "blocking.key_pairs: expected [left, right] "
                        f"attribute pairs, got {raw_pairs!r}"
                    )
                    key_pairs = None
                if key_pairs is not None and pair is not None:
                    for l, r in key_pairs:
                        if l not in pair.left or r not in pair.right:
                            errors.append(
                                f"blocking.key_pairs: ({l!r}, {r!r}) is not "
                                f"an attribute pair of "
                                f"({pair.left.name}, {pair.right.name})"
                            )

        # -- resolution -------------------------------------------------
        resolution = document.get("resolution", {})
        policy = "prefer-informative"
        if not isinstance(resolution, dict):
            errors.append(f"resolution: expected an object, got {resolution!r}")
        else:
            unknown_res = set(resolution) - {"policy"}
            if unknown_res:
                errors.append(f"resolution: unknown key(s) {sorted(unknown_res)}")
            policy = resolution.get("policy", "prefer-informative")
            if policy not in VALUE_POLICIES:
                errors.append(
                    f"resolution.policy: unknown policy {policy!r}; "
                    f"choose one of {sorted(VALUE_POLICIES)}"
                )

        # -- execution --------------------------------------------------
        execution = document.get("execution", {})
        mode = "enforce"
        max_rounds, max_cascade = 100, 256
        cache, cache_limit = True, DEFAULT_CACHE_LIMIT
        workers = 1
        factorised = True
        if not isinstance(execution, dict):
            errors.append(f"execution: expected an object, got {execution!r}")
        else:
            unknown_exec = set(execution) - {
                "mode", "max_rounds", "max_cascade", "cache", "cache_limit",
                "workers", "factorised",
            }
            if unknown_exec:
                errors.append(f"execution: unknown key(s) {sorted(unknown_exec)}")
            mode = execution.get("mode", "enforce")
            if mode not in EXECUTION_MODES:
                errors.append(
                    f"execution.mode: unknown mode {mode!r}; "
                    f"choose one of {list(EXECUTION_MODES)}"
                )
            max_rounds = execution.get("max_rounds", 100)
            _check_int(errors, "execution.max_rounds", max_rounds, 1)
            max_cascade = execution.get("max_cascade", 256)
            _check_int(errors, "execution.max_cascade", max_cascade, 1)
            cache = execution.get("cache", True)
            if not isinstance(cache, bool):
                errors.append(
                    f"execution.cache: expected true or false, got {cache!r}"
                )
            cache_limit = execution.get("cache_limit", DEFAULT_CACHE_LIMIT)
            _check_int(errors, "execution.cache_limit", cache_limit, 1)
            workers = execution.get("workers", 1)
            _check_int(errors, "execution.workers", workers, 1)
            factorised = execution.get("factorised", True)
            if not isinstance(factorised, bool):
                errors.append(
                    f"execution.factorised: expected true or false, "
                    f"got {factorised!r}"
                )

        # -- observability ----------------------------------------------
        observability = document.get("observability", {})
        obs_enabled = False
        trace_path: Optional[str] = None
        trace_format = "chrome"
        if not isinstance(observability, dict):
            errors.append(
                f"observability: expected an object, got {observability!r}"
            )
        else:
            unknown_obs = set(observability) - {
                "enabled", "trace", "trace_format"
            }
            if unknown_obs:
                errors.append(
                    f"observability: unknown key(s) {sorted(unknown_obs)}"
                )
            obs_enabled = observability.get("enabled", False)
            if not isinstance(obs_enabled, bool):
                errors.append(
                    f"observability.enabled: expected true or false, "
                    f"got {obs_enabled!r}"
                )
                obs_enabled = False
            trace_path = observability.get("trace")
            if trace_path is not None and not isinstance(trace_path, str):
                errors.append(
                    f"observability.trace: expected null or a file path "
                    f"string, got {trace_path!r}"
                )
                trace_path = None
            trace_format = observability.get("trace_format", "chrome")
            if trace_format not in TRACE_FORMATS:
                errors.append(
                    f"observability.trace_format: unknown format "
                    f"{trace_format!r}; choose one of {list(TRACE_FORMATS)}"
                )
                trace_format = "chrome"

        # -- persistence ------------------------------------------------
        persistence = document.get("persistence", {})
        persistence_backend = "memory"
        persistence_path: Optional[str] = None
        if not isinstance(persistence, dict):
            errors.append(
                f"persistence: expected an object, got {persistence!r}"
            )
        else:
            unknown_persist = set(persistence) - {"backend", "path"}
            if unknown_persist:
                errors.append(
                    f"persistence: unknown key(s) {sorted(unknown_persist)}"
                )
            persistence_backend = persistence.get("backend", "memory")
            if persistence_backend not in PERSISTENCE_BACKENDS:
                errors.append(
                    f"persistence.backend: unknown backend "
                    f"{persistence_backend!r}; choose one of "
                    f"{list(PERSISTENCE_BACKENDS)}"
                )
                persistence_backend = "memory"
            persistence_path = persistence.get("path")
            if persistence_path is not None and not isinstance(
                persistence_path, str
            ):
                errors.append(
                    f"persistence.path: expected null or a file path "
                    f"string, got {persistence_path!r}"
                )
                persistence_path = None
            if persistence_backend == "sqlite" and persistence_path is None:
                errors.append(
                    "persistence.path: the sqlite backend needs a store "
                    "file path (e.g. \"store.db\")"
                )

        # -- serve ------------------------------------------------------
        serve = document.get("serve", {})
        serve_host = "127.0.0.1"
        serve_port = 8080
        serve_max_batch, serve_max_delay_ms = 16, 10
        serve_queue_limit = 1024
        if not isinstance(serve, dict):
            errors.append(f"serve: expected an object, got {serve!r}")
        else:
            unknown_serve = set(serve) - {
                "host", "port", "max_batch", "max_delay_ms", "queue_limit",
            }
            if unknown_serve:
                errors.append(f"serve: unknown key(s) {sorted(unknown_serve)}")
            serve_host = serve.get("host", "127.0.0.1")
            if not isinstance(serve_host, str) or not serve_host:
                errors.append(
                    f"serve.host: expected a non-empty string, "
                    f"got {serve_host!r}"
                )
                serve_host = "127.0.0.1"
            # Port 0 is legal: bind an ephemeral port (tests do this).
            serve_port = serve.get("port", 8080)
            if _check_int(errors, "serve.port", serve_port, 0):
                if serve_port > 65535:
                    errors.append(
                        f"serve.port: must be <= 65535, got {serve_port}"
                    )
            serve_max_batch = serve.get("max_batch", 16)
            _check_int(errors, "serve.max_batch", serve_max_batch, 1)
            serve_max_delay_ms = serve.get("max_delay_ms", 10)
            _check_int(errors, "serve.max_delay_ms", serve_max_delay_ms, 0)
            serve_queue_limit = serve.get("queue_limit", 1024)
            _check_int(errors, "serve.queue_limit", serve_queue_limit, 1)

        metrics_section = document.get("metrics", {})
        metric_items: Tuple[Tuple[str, str], ...] = ()
        if isinstance(metrics_section, dict):
            metric_items = tuple(
                (str(alias), str(metrics_section[alias]))
                for alias in sorted(metrics_section)
            )

        if errors:
            return None, errors
        spec = cls(
            version=SPEC_VERSION,
            left_name=left.name,
            left_attributes=tuple(left.attribute_names),
            right_name=right.name,
            right_attributes=tuple(right.attribute_names),
            target_left=target_left,
            target_right=target_right,
            mds=md_lines,
            rcks=rck_triples,
            top_k=top_k,
            metrics=metric_items,
            blocking_backend=backend,
            window=window,
            key_length=key_length,
            encode=encode,
            key_pairs=key_pairs,
            policy=policy,
            mode=mode,
            max_rounds=max_rounds,
            max_cascade=max_cascade,
            cache=cache,
            cache_limit=cache_limit,
            workers=workers,
            factorised=factorised,
            obs_enabled=obs_enabled,
            trace_path=trace_path,
            trace_format=trace_format,
            persistence_backend=persistence_backend,
            persistence_path=persistence_path,
            serve_host=serve_host,
            serve_port=serve_port,
            serve_max_batch=serve_max_batch,
            serve_max_delay_ms=serve_max_delay_ms,
            serve_queue_limit=serve_queue_limit,
        )
        return spec, []

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The canonical document; a fixed point of :meth:`from_dict`."""
        return {
            "version": self.version,
            "schema": {
                "left": {
                    "name": self.left_name,
                    "attributes": list(self.left_attributes),
                },
                "right": {
                    "name": self.right_name,
                    "attributes": list(self.right_attributes),
                },
            },
            "target": {
                "left": list(self.target_left),
                "right": list(self.target_right),
            },
            "rules": {
                "mds": list(self.mds),
                "rcks": (
                    None
                    if self.rcks is None
                    else [
                        [list(triple) for triple in key] for key in self.rcks
                    ]
                ),
                "top_k": self.top_k,
            },
            "metrics": {alias: existing for alias, existing in self.metrics},
            "blocking": {
                "backend": self.blocking_backend,
                "window": self.window,
                "key_length": self.key_length,
                "encode": list(self.encode),
                "key_pairs": (
                    None
                    if self.key_pairs is None
                    else [list(pair) for pair in self.key_pairs]
                ),
            },
            "resolution": {"policy": self.policy},
            "execution": {
                "mode": self.mode,
                "max_rounds": self.max_rounds,
                "max_cascade": self.max_cascade,
                "cache": self.cache,
                "cache_limit": self.cache_limit,
                "workers": self.workers,
                "factorised": self.factorised,
            },
            "observability": {
                "enabled": self.obs_enabled,
                "trace": self.trace_path,
                "trace_format": self.trace_format,
            },
            "persistence": {
                "backend": self.persistence_backend,
                "path": self.persistence_path,
            },
            "serve": {
                "host": self.serve_host,
                "port": self.serve_port,
                "max_batch": self.serve_max_batch,
                "max_delay_ms": self.serve_max_delay_ms,
                "queue_limit": self.serve_queue_limit,
            },
        }

    def to_json(self, indent: int = 1) -> str:
        """The canonical document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        """Write the canonical JSON document to ``path``."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def fingerprint(self) -> str:
        """A short stable hash of the canonical document.

        Two specs with the same semantics (same canonical document) have
        the same fingerprint regardless of key order or formatting; any
        material change — a rule, a threshold, a backend parameter —
        changes it.  Engine snapshots embed it to reject restores under
        an incompatible spec.

        ``execution.workers`` and ``execution.factorised`` are excluded:
        both are deployment knobs that provably never change results —
        the parallel/serial differential suite pins the former, the
        factorised/pairwise differential suite
        (``tests/plan/test_factorised_equivalence.py``) the latter — so
        specs differing only in them share a fingerprint, and a snapshot
        built serially (or pairwise) restores under a parallel (or
        factorised) spec.  The whole ``observability`` section is
        excluded for the same reason: tracing observes a run, it never
        alters one, so turning it on must not invalidate snapshots or
        change what a report claims it ran.  ``persistence`` is excluded
        too: *where* the store lives (memory, a SQLite file, which path)
        never changes what is matched — the backend differential suite
        (``tests/engine/test_sqlite_differential.py``) pins that — so a
        store built under a memory spec resumes under a sqlite one and
        vice versa.  The ``serve`` section is excluded for the same
        reason: host/port and micro-batching knobs shape *how* a service
        ingests (batch boundaries provably never change results — the
        batch-boundary invariance suite pins that), never *what* it
        resolves — so retuning a deployment keeps its tenants, and the
        service can key tenants by fingerprint without a port change
        splitting a tenant in two.
        """
        cached = self._fingerprint
        if cached is None:
            document = self.to_dict()
            execution = dict(document["execution"])
            execution.pop("workers")
            execution.pop("factorised")
            document["execution"] = execution
            document.pop("observability")
            document.pop("persistence")
            document.pop("serve")
            payload = json.dumps(
                document, sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # ------------------------------------------------------------------
    # Realizing the spec as core objects
    # ------------------------------------------------------------------

    def schema_pair(self) -> SchemaPair:
        """The spec's schema pair as core objects."""
        return SchemaPair(
            RelationSchema(self.left_name, self.left_attributes),
            RelationSchema(self.right_name, self.right_attributes),
        )

    def target_lists(self, pair: Optional[SchemaPair] = None) -> ComparableLists:
        """The spec's target as a validated :class:`ComparableLists`."""
        return ComparableLists(
            pair if pair is not None else self.schema_pair(),
            self.target_left,
            self.target_right,
        )

    def build_registry(self) -> MetricRegistry:
        """The metric registry the spec's bindings describe.

        The shared default registry when there are no bindings; a fresh
        registry extended with the aliases otherwise.
        """
        if not self.metrics:
            return DEFAULT_REGISTRY
        registry = default_registry()
        for alias, existing in self.metrics:
            registry.alias(alias, existing)
        return registry

    def parsed_mds(
        self, pair: Optional[SchemaPair] = None
    ) -> List[MatchingDependency]:
        """The MD text lines parsed over the spec's schema pair."""
        if pair is None:
            pair = self.schema_pair()
        return [parse_md(line, pair) for line in self.mds]

    def explicit_rcks(
        self, target: Optional[ComparableLists] = None
    ) -> Optional[List[RelativeKey]]:
        """The explicitly listed RCKs, or ``None`` when they are deduced."""
        if self.rcks is None:
            return None
        if target is None:
            target = self.target_lists()
        return [
            RelativeKey.from_triples(target, triples) for triples in self.rcks
        ]

    def resolver(self) -> ValueResolver:
        """The value-choice policy as a callable."""
        return VALUE_POLICIES[self.policy]

    @property
    def tracing_on(self) -> bool:
        """Whether this spec asks for a live (non-null) tracer.

        True when observability is enabled explicitly or implied by a
        trace output path.
        """
        return self.obs_enabled or self.trace_path is not None


class SpecBuilder:
    """Fluent construction of a :class:`ResolutionSpec` document.

    Every method returns the builder; :meth:`build` validates the
    accumulated document exactly like :meth:`ResolutionSpec.from_dict`.

    >>> builder = (SpecBuilder()
    ...     .schema("R", ["A", "B"], "S", ["A", "B"])
    ...     .target(["A"], ["A"])
    ...     .mds(["R[B] = S[B] -> R[A] <=> S[A]"]))
    >>> builder.build().mode
    'enforce'
    """

    def __init__(self) -> None:
        self._document: Dict[str, object] = {"version": SPEC_VERSION}

    def schema(
        self,
        left_name: str,
        left_attributes: Sequence[str],
        right_name: str,
        right_attributes: Sequence[str],
    ) -> "SpecBuilder":
        """Declare the schema pair by names and attribute lists."""
        self._document["schema"] = {
            "left": {"name": left_name, "attributes": list(left_attributes)},
            "right": {"name": right_name, "attributes": list(right_attributes)},
        }
        return self

    def pair(self, pair: SchemaPair) -> "SpecBuilder":
        """Declare the schema pair from an existing :class:`SchemaPair`."""
        return self.schema(
            pair.left.name,
            pair.left.attribute_names,
            pair.right.name,
            pair.right.attribute_names,
        )

    def target(self, left, right: Optional[Sequence[str]] = None) -> "SpecBuilder":
        """Declare the target lists (or pass a :class:`ComparableLists`)."""
        if isinstance(left, ComparableLists):
            left, right = left.left_list, left.right_list
        self._document["target"] = {"left": list(left), "right": list(right)}
        return self

    def mds(self, mds) -> "SpecBuilder":
        """Declare the MDs: text, text lines, or parsed MD objects."""
        if isinstance(mds, str):
            lines = [
                line.strip()
                for line in mds.splitlines()
                if line.strip() and not line.strip().startswith("#")
            ]
        else:
            lines = [
                format_md(item)
                if isinstance(item, MatchingDependency)
                else str(item)
                for item in mds
            ]
        rules = self._document.setdefault("rules", {})
        rules["mds"] = lines
        return self

    def rcks(self, rcks) -> "SpecBuilder":
        """Pin explicit RCKs (keys or triple lists) instead of deducing."""
        keys = []
        for key in rcks:
            if isinstance(key, RelativeKey):
                keys.append(
                    [
                        [atom.left, atom.right, atom.operator.name]
                        for atom in key.atoms
                    ]
                )
            else:
                keys.append([list(triple) for triple in key])
        rules = self._document.setdefault("rules", {})
        rules["rcks"] = keys
        return self

    def metric(self, alias: str, existing: str) -> "SpecBuilder":
        """Bind an operator alias to a registered metric name."""
        metrics = self._document.setdefault("metrics", {})
        metrics[alias] = existing
        return self

    def blocking(self, backend: str, **options) -> "SpecBuilder":
        """Choose the blocking backend and its parameters."""
        self._document["blocking"] = {"backend": backend, **options}
        return self

    def resolution(self, policy: str) -> "SpecBuilder":
        """Choose the value-choice policy by name."""
        self._document["resolution"] = {"policy": policy}
        return self

    def observability(
        self,
        enabled: bool = True,
        trace: Optional[str] = None,
        trace_format: str = "chrome",
    ) -> "SpecBuilder":
        """Turn on span tracing, optionally naming a trace output file.

        The section never enters the fingerprint — observing a run does
        not change it.
        """
        self._document["observability"] = {
            "enabled": enabled,
            "trace": trace,
            "trace_format": trace_format,
        }
        return self

    def persistence(
        self, backend: str = "sqlite", path: Optional[str] = None
    ) -> "SpecBuilder":
        """Choose the engine store backend (and, for durable backends,
        the store file path).

        Like :meth:`observability`, the section never enters the
        fingerprint — where the store lives does not change what is
        matched.
        """
        self._document["persistence"] = {"backend": backend, "path": path}
        return self

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_batch: int = 16,
        max_delay_ms: int = 10,
        queue_limit: int = 1024,
    ) -> "SpecBuilder":
        """Configure the resolution service (``repro serve``).

        ``max_batch``/``max_delay_ms`` bound the ingest micro-batches
        (one pooled chase per batch), ``queue_limit`` bounds the
        per-tenant queue before backpressure (HTTP 429).  Like
        :meth:`observability`, the section never enters the fingerprint
        — deployment shape does not change what is matched.
        """
        self._document["serve"] = {
            "host": host,
            "port": port,
            "max_batch": max_batch,
            "max_delay_ms": max_delay_ms,
            "queue_limit": queue_limit,
        }
        return self

    def execution(self, **options) -> "SpecBuilder":
        """Set execution options (``mode``, ``top_k``, caches, bounds)."""
        if "top_k" in options:
            rules = self._document.setdefault("rules", {})
            rules["top_k"] = options.pop("top_k")
        execution = self._document.setdefault("execution", {})
        execution.update(options)
        return self

    def document(self) -> Dict[str, object]:
        """A deep copy of the accumulated raw document."""
        return copy.deepcopy(self._document)

    def build(self) -> ResolutionSpec:
        """Validate the document into a :class:`ResolutionSpec`."""
        return ResolutionSpec.from_dict(self.document())

    def workspace(self):
        """Build the spec and wrap it in a :class:`~repro.api.Workspace`."""
        from .workspace import Workspace

        return Workspace(self.build())

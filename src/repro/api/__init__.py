"""The declarative front door: spec in, any execution strategy out.

``repro.api`` is the one entry point users write against:

* :class:`~repro.api.spec.ResolutionSpec` — a versioned, serializable
  document covering schema pair, target lists, MD/RCK text, metric
  bindings, blocking backend and parameters, value-choice policy, and
  execution options, with full parse → validate → serialize round trip;
* :class:`~repro.api.spec.SpecBuilder` — the same document, fluently;
* :class:`~repro.api.workspace.Workspace` — the façade that compiles the
  spec through the :mod:`repro.plan` kernel exactly once and executes it
  in batch (``match``/``enforce``) or streaming (``stream``) mode;
* :class:`~repro.api.workspace.MatchReport` — the unified result object
  (pairs, clusters, per-rule provenance, plan stats, spec fingerprint).

Typical use::

    from repro import Workspace

    workspace = Workspace.from_file("examples/spec.json")
    report = workspace.match(credit, billing)
    print(report.clusters, report.stats["metric_evaluations"])

    matcher = workspace.stream()        # same compiled plan, streaming
    matcher.ingest_stream(events)
"""

from .spec import (
    BLOCKING_BACKENDS,
    EXECUTION_MODES,
    PERSISTENCE_BACKENDS,
    SPEC_VERSION,
    VALUE_POLICIES,
    ResolutionSpec,
    SpecBuilder,
    SpecError,
)
from .workspace import MatchReport, Workspace

__all__ = [
    "BLOCKING_BACKENDS",
    "EXECUTION_MODES",
    "MatchReport",
    "PERSISTENCE_BACKENDS",
    "ResolutionSpec",
    "SPEC_VERSION",
    "SpecBuilder",
    "SpecError",
    "VALUE_POLICIES",
    "Workspace",
]

"""Partition candidate pairs into independently chaseable shards.

The chase (:mod:`repro.plan.executor`) only ever touches cells of tuples
that appear in some candidate pair: a rule application merges cells of
the two paired tuples, and the per-round repair rewrites only cells of
merged classes.  Two candidate pairs that share no tuple therefore
cannot influence each other — the connected components of the pair
graph (tuples as nodes, candidate pairs as edges) chase to exactly the
same merges, repairs and stability verdicts whether they run in one
loop or in isolation.  That is what makes the kernel shardable: the
paper's semantics are order-independent up to the resolver, and the
resolver only ever sees one merged class, which never spans components.

:func:`shard_pairs` computes the components; :func:`assign_shards`
packs them into per-worker bins balanced by pair count (longest
processing time first), so :mod:`repro.plan.parallel` can chase each
bin in its own process.  Both are deterministic: same pairs in, same
shards and bins out.

Every blocking backend feeds this partitioner the same way.  Hash
candidates decompose per bucket; sorted-neighborhood candidates from
the rank-encoded :class:`~repro.plan.sn_index.WindowedSNIndex` decompose
per block run, because the index splits its runs at block boundaries
and windows never span one.  (The legacy batch SN backend's overlapping
windows chained everything into a single component, which is why SN
specs historically always hit the ``single-component`` serial
fallback.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.schema import LEFT, RIGHT

from .blocking import Pair

#: A shard node: (side, tuple id) — or (LEFT, tid) for both occurrences
#: of a tuple when the instance is shared (self-matching).
_Node = Tuple[int, int]


@dataclass(frozen=True)
class Shard:
    """One connected component of the candidate-pair graph.

    ``pairs`` keeps the input ordering (the chase scans pairs in order,
    so per-shard executions replay the serial scan order restricted to
    the component); the tid sets say which tuples a worker must receive.
    """

    pairs: Tuple[Pair, ...]
    left_tids: FrozenSet[int]
    right_tids: FrozenSet[int]

    def __len__(self) -> int:
        return len(self.pairs)


def shard_pairs(pairs: Sequence[Pair], shared: bool = False) -> List[Shard]:
    """The connected components of the candidate pairs, as shards.

    ``shared`` marks a self-matching instance (both sides are one
    relation): the same tid on either side is then one node, so a tuple
    appearing as left in one pair and right in another correctly pulls
    both pairs into one shard.

    Shards are ordered by the position of their first pair in the input,
    and each shard's pairs keep their input order — a serial chase over
    the concatenation of all shards scans pairs exactly like a serial
    chase over the input.
    """
    parent: Dict[_Node, _Node] = {}

    def find(node: _Node) -> _Node:
        root = parent.setdefault(node, node)
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def node_of(side: int, tid: int) -> _Node:
        return (LEFT, tid) if shared else (side, tid)

    for left_tid, right_tid in pairs:
        root_a = find(node_of(LEFT, left_tid))
        root_b = find(node_of(RIGHT, right_tid))
        if root_a != root_b:
            parent[root_b] = root_a

    grouped: Dict[_Node, List[Pair]] = {}
    for pair in pairs:
        grouped.setdefault(find(node_of(LEFT, pair[0])), []).append(pair)

    shards = []
    for component in grouped.values():
        left_tids = frozenset(left_tid for left_tid, _ in component)
        right_tids = frozenset(right_tid for _, right_tid in component)
        shards.append(Shard(tuple(component), left_tids, right_tids))
    return shards


def assign_shards(shards: Sequence[Shard], workers: int) -> List[List[Shard]]:
    """Pack shards into at most ``workers`` bins, balanced by pair count.

    Greedy longest-processing-time: shards are placed largest first into
    the currently lightest bin (ties broken by bin index, keeping the
    assignment deterministic).  Empty bins are dropped, so the result has
    ``min(workers, len(shards))`` entries.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    bins: List[List[Shard]] = [[] for _ in range(min(workers, len(shards)))]
    loads = [0] * len(bins)
    order = sorted(
        range(len(shards)), key=lambda index: (-len(shards[index]), index)
    )
    for index in order:
        lightest = loads.index(min(loads))
        bins[lightest].append(shards[index])
        loads[lightest] += len(shards[index])
    return [bin_ for bin_ in bins if bin_]

"""Chase candidate-pair shards across a ``multiprocessing`` pool.

:func:`parallel_chase` is the parallel twin of
:func:`repro.plan.executor.chase`.  The pipeline:

1. :func:`repro.plan.shard.shard_pairs` splits the candidate pairs into
   connected-component shards — pairs sharing no tuple chase
   independently (see that module for why this is sound);
2. the shards are packed into per-worker bins
   (:func:`~repro.plan.shard.assign_shards`) and each bin is chased in a
   worker process — factorised by default, each worker grouping its own
   bin's pairs by value-pair signature (:mod:`repro.plan.factorise`).  Compiled plans hold resolved metric callables and
   closures, so they do not pickle; every worker instead **rebuilds the
   plan from the pickled** :class:`~repro.api.spec.ResolutionSpec`
   **document** once (pool initializer) and receives only its bin's rows
   and pairs;
3. the parent merges the per-shard results: it unions the per-shard
   ``_CellUnionFind`` merge classes, applies the per-shard cell repairs,
   and re-resolves every merged class once — idempotent when the shard
   chases converged, and the safety net that keeps the merged instance
   on-policy when they did not.

**Fallback to the serial loop** (documented guarantee): the serial
:func:`~repro.plan.executor.chase` runs instead whenever parallelism
cannot pay or cannot be proven equivalent — fewer than ``min_pairs``
candidate pairs (pool start-up dominates on small inputs), a single
connected component (nothing to parallelize), ``workers <= 1``, no spec
document to rebuild the plan from, or a resolver that is not the spec's
named policy (worker processes can only look policies up by name).
Sorted-neighborhood specs used to hit the single-component fallback
unconditionally — the legacy batch backend's overlapping windows
chained every pair together; the rank-encoded
:class:`~repro.plan.sn_index.WindowedSNIndex` splits its runs at block
boundaries, so SN workloads now shard like hash workloads and that
fallback fires only for genuinely chained (one-block) instances.
Either path returns the same :class:`~repro.core.semantics.EnforcementResult`
contents for a converged chase; the differential suite
(``tests/plan/test_parallel_equivalence.py``) and the Hypothesis
properties (``tests/plan/test_chase_properties.py``) pin that claim.

The pool start method follows ``multiprocessing``'s platform default;
set ``REPRO_PARALLEL_START_METHOD=spawn|fork|forkserver`` (or pass
``start_method``) to force one — CI runs the differential suite under
both ``spawn`` and ``fork``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.parser import format_md
from repro.core.schema import LEFT, RIGHT
from repro.core.semantics import (
    Cell,
    EnforcementResult,
    InstancePair,
    ValueResolver,
    _CellUnionFind,
    prefer_informative,
)
from repro.obs.trace import Tracer
from repro.relations.relation import Relation

from .blocking import Pair
from .executor import chase, chase_factorised
from .shard import assign_shards, shard_pairs

#: Below this many candidate pairs the serial loop runs instead — pool
#: start-up and plan re-compilation dominate any parallel win on small
#: inputs.  (Tests monkeypatch this to force the pool on tiny data.)
PARALLEL_MIN_PAIRS = 64

#: Environment override for the pool start method (CI runs the
#: differential suite under both ``spawn`` and ``fork``).
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

#: Row payload: tid -> attribute values.
_Rows = Dict[int, Dict[str, object]]


@dataclass(frozen=True)
class ShardTask:
    """One worker bin: the rows its pairs touch, and the pairs.

    ``right_rows`` is ``None`` for a self-matching (shared) instance —
    the worker then builds one relation serving both sides, mirroring
    :meth:`~repro.core.semantics.InstancePair.copy` semantics.
    ``trace`` asks the worker to record its own span tree and ship it
    back serialized (the parent merges it under the pool span).
    """

    left_rows: _Rows
    right_rows: Optional[_Rows]
    pairs: Tuple[Pair, ...]
    max_rounds: int
    trace: bool = False
    #: Chase this bin factorised (the worker groups its own shard's
    #: pairs by value-pair signature; see repro.plan.factorise).
    factorised: bool = True


@dataclass(frozen=True)
class ShardOutcome:
    """What one worker bin's chase produced, in picklable form."""

    groups: Tuple[Tuple[Cell, ...], ...]
    updates: Tuple[Tuple[Cell, object], ...]
    stable: bool
    rounds: int
    applications: int
    rounds_exhausted: bool
    metric_evaluations: int
    cache_hits: int
    #: Factorised-path counter deltas (zero on the pairwise path).
    value_pairs_evaluated: int = 0
    groups_built: int = 0
    #: Serialized root spans of the worker's chase (empty unless the
    #: task asked for tracing).
    spans: Tuple[Dict[str, object], ...] = ()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process state set by the pool initializer: (plan, resolver).
_WORKER: Tuple[object, ValueResolver] = (None, prefer_informative)


def _init_worker(spec_document: Dict[str, object]) -> None:
    """Rebuild the compiled plan from the spec document, once per worker."""
    global _WORKER
    # Deliberate lazy import: repro.api sits above repro.plan in the
    # layering; only worker processes (and the fallback guard) reach up.
    from repro.api.workspace import Workspace

    workspace = Workspace.from_dict(spec_document)
    _WORKER = (workspace.plan, workspace.spec.resolver())


def _run_task(task: ShardTask) -> ShardOutcome:
    """Chase one bin against the worker's rebuilt plan."""
    plan, resolver = _WORKER
    left = Relation(plan.pair.left)
    for tid in sorted(task.left_rows):
        left.insert(task.left_rows[tid], tid=tid)
    if task.right_rows is None:
        right = left
    else:
        right = Relation(plan.pair.right)
        for tid in sorted(task.right_rows):
            right.insert(task.right_rows[tid], tid=tid)
    instance = InstancePair(plan.pair, left, right)

    stats = plan.stats
    evaluations_before = stats.metric_evaluations
    hits_before = stats.cache_hits
    value_pairs_before = stats.value_pairs_evaluated
    groups_before = stats.groups_built
    # A traced parent asks each worker to record its own span tree; the
    # worker's plan is rebuilt per process, so swapping the tracer in
    # and out around one task is safe (tasks run sequentially per
    # process).
    worker_tracer = Tracer() if task.trace else None
    saved_tracer = plan.tracer
    if worker_tracer is not None:
        plan.tracer = worker_tracer
    kernel = chase_factorised if task.factorised and plan.rules else chase
    try:
        result = kernel(
            plan,
            instance,
            resolver=resolver,
            candidate_pairs=list(task.pairs),
            max_rounds=task.max_rounds,
        )
    finally:
        plan.tracer = saved_tracer

    updates: List[Tuple[Cell, object]] = []
    sides = ((LEFT, task.left_rows, result.instance.left),)
    if task.right_rows is not None:
        sides += ((RIGHT, task.right_rows, result.instance.right),)
    for side, original_rows, chased in sides:
        for tid, original in original_rows.items():
            row = chased[tid]
            for attribute, value in original.items():
                after = row[attribute]
                if after != value:
                    updates.append(((side, tid, attribute), after))
    return ShardOutcome(
        groups=tuple(
            tuple(sorted(group)) for group in result.merged_cells.classes()
        ),
        updates=tuple(updates),
        stable=result.stable,
        rounds=result.rounds,
        applications=result.applications,
        rounds_exhausted=result.rounds_exhausted,
        metric_evaluations=stats.metric_evaluations - evaluations_before,
        cache_hits=stats.cache_hits - hits_before,
        value_pairs_evaluated=stats.value_pairs_evaluated - value_pairs_before,
        groups_built=stats.groups_built - groups_before,
        spans=(
            tuple(span.to_dict() for span in worker_tracer.spans())
            if worker_tracer is not None
            else ()
        ),
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def plan_spec_document(plan) -> Optional[Dict[str, object]]:
    """A ResolutionSpec document workers can rebuild ``plan`` from.

    Pins the plan's exact rules: the MD text, the already-deduced RCK
    triples, and the default resolution policy.  Returns ``None`` when
    the plan is not expressible as a spec — compiled against a custom
    metric registry (alias bindings are not recoverable from resolved
    predicates) or without a target — in which case the caller must fall
    back to the serial chase.  :class:`~repro.api.Workspace` callers
    never need this: they pass their own spec's canonical document.
    """
    from repro.metrics.registry import DEFAULT_REGISTRY

    if plan.registry is not DEFAULT_REGISTRY or plan.target is None:
        return None
    pair = plan.pair
    return {
        "version": 1,
        "schema": {
            "left": {
                "name": pair.left.name,
                "attributes": list(pair.left.attribute_names),
            },
            "right": {
                "name": pair.right.name,
                "attributes": list(pair.right.attribute_names),
            },
        },
        "target": {
            "left": list(plan.target.left_list),
            "right": list(plan.target.right_list),
        },
        "rules": {
            "mds": [format_md(dependency) for dependency in plan.sigma],
            "rcks": [
                [
                    [atom.left, atom.right, atom.operator.name]
                    for atom in key.atoms
                ]
                for key in plan.rcks
            ],
        },
        # Workers must honor the parent plan's memoization settings —
        # a caller that disabled the cache (or bounded its memory) would
        # otherwise get the ~1M-entry default in every worker process.
        "execution": {
            "cache": plan.cached,
            "cache_limit": plan.cache_limit,
        },
    }


def _bin_tasks(
    instance: InstancePair,
    bins,
    shared: bool,
    max_rounds: int,
    trace: bool = False,
    factorised: bool = True,
) -> List[ShardTask]:
    tasks = []
    for bin_ in bins:
        left_tids = sorted(set().union(*(shard.left_tids for shard in bin_)))
        right_tids = sorted(set().union(*(shard.right_tids for shard in bin_)))
        if shared:
            left_rows = {
                tid: instance.left[tid].values()
                for tid in sorted(set(left_tids) | set(right_tids))
            }
            right_rows = None
        else:
            left_rows = {tid: instance.left[tid].values() for tid in left_tids}
            right_rows = {
                tid: instance.right[tid].values() for tid in right_tids
            }
        tasks.append(
            ShardTask(
                left_rows=left_rows,
                right_rows=right_rows,
                pairs=tuple(pair for shard in bin_ for pair in shard.pairs),
                max_rounds=max_rounds,
                trace=trace,
                factorised=factorised,
            )
        )
    return tasks


def _policy_matches(spec_document, resolver: ValueResolver) -> bool:
    """Is ``resolver`` exactly the document's named resolution policy?

    Workers look resolvers up by name; an anonymous callable cannot be
    shipped, so a mismatch forces the serial path.
    """
    from repro.api.spec import VALUE_POLICIES

    section = spec_document.get("resolution", {})
    policy = "prefer-informative"
    if isinstance(section, dict):
        policy = section.get("policy", "prefer-informative")
    return VALUE_POLICIES.get(policy) is resolver


def parallel_chase(
    plan,
    instance: InstancePair,
    spec_document: Optional[Dict[str, object]] = None,
    resolver: ValueResolver = prefer_informative,
    candidate_pairs: Optional[Sequence[Pair]] = None,
    workers: int = 1,
    max_rounds: int = 100,
    min_pairs: Optional[int] = None,
    start_method: Optional[str] = None,
    factorised: bool = True,
) -> EnforcementResult:
    """Chase ``instance`` in parallel; serial fallback when it cannot pay.

    Equivalent to :func:`~repro.plan.executor.chase` on the same inputs
    (same merged classes, repaired values, match decisions); see the
    module docstring for the shard/merge construction and the exact
    fallback conditions.  Only ``rounds`` differs observably in stats:
    the serial loop counts global rounds, the parallel path reports the
    maximum over its shard bins — the same number whenever the chase
    converges.
    """
    pairs: List[Pair] = (
        list(candidate_pairs)
        if candidate_pairs is not None
        else list(instance.tuple_pairs())
    )
    threshold = PARALLEL_MIN_PAIRS if min_pairs is None else min_pairs
    shared = instance.left is instance.right
    tracer = plan.tracer
    # The serial fallback honors the caller's kernel choice.
    kernel = chase_factorised if factorised and plan.rules else chase

    def serial(reason: str) -> EnforcementResult:
        # The satellite guarantee: why a workers>1 request ran serially
        # is recorded, not silent — in stats (``MatchReport.stats``) and
        # on the trace.
        plan.stats.serial_fallback_reason = reason
        with tracer.span("parallel-chase", pairs=len(pairs), workers=workers) as span:
            span.set("serial_fallback_reason", reason)
            return kernel(
                plan,
                instance,
                resolver=resolver,
                candidate_pairs=pairs,
                max_rounds=max_rounds,
            )

    if workers <= 1:
        return serial("workers<=1")
    if spec_document is None:
        return serial("no-spec-document")
    if len(pairs) < threshold:
        return serial(f"below-min-pairs({len(pairs)}<{threshold})")
    if not _policy_matches(spec_document, resolver):
        return serial("unnamed-resolver")
    parallel_span = tracer.span(
        "parallel-chase", pairs=len(pairs), workers=workers
    )
    parallel_span.__enter__()
    with tracer.span("shard-pairs") as shard_span:
        shards = shard_pairs(pairs, shared=shared)
        shard_span.set("shards", len(shards))
    if len(shards) <= 1:
        # Annotate the span already open rather than opening a second
        # parallel-chase span: the trace shows one tree, reason included.
        plan.stats.serial_fallback_reason = "single-component"
        parallel_span.set("serial_fallback_reason", "single-component")
        try:
            return kernel(
                plan,
                instance,
                resolver=resolver,
                candidate_pairs=pairs,
                max_rounds=max_rounds,
            )
        finally:
            parallel_span.__exit__(None, None, None)

    bins = assign_shards(shards, workers)
    tasks = _bin_tasks(
        instance, bins, shared, max_rounds,
        trace=tracer.enabled, factorised=factorised,
    )
    method = start_method or os.environ.get(START_METHOD_ENV) or None
    context = multiprocessing.get_context(method)
    with tracer.span("pool", bins=len(bins), start_method=method or "default") as pool_span:
        with context.Pool(
            processes=len(bins), initializer=_init_worker, initargs=(spec_document,)
        ) as pool:
            outcomes = pool.map(_run_task, tasks)
        # Merge the per-worker span trees under the pool span, one
        # named thread row per bin, re-based to the pool's start (the
        # worker clock need not share the parent's epoch).
        if tracer.enabled:
            for index, outcome in enumerate(outcomes):
                tracer.attach(
                    outcome.spans, rebase_to=pool_span.start, worker=index
                )

    working = instance.copy()
    cells = _CellUnionFind()
    with tracer.span("merge-shards") as merge_span:
        for outcome in outcomes:
            for group in outcome.groups:
                anchor = group[0]
                for member in group[1:]:
                    cells.union(anchor, member)
            for (side, tid, attribute), value in outcome.updates:
                relation = working.left if side == LEFT else working.right
                relation.set_value(tid, attribute, value)

        # Re-resolve every merged class once over the merged instance — a
        # no-op when the shard chases converged (each class already carries
        # its resolved value), and the documented single resolution pass
        # otherwise.
        for members in cells.classes():
            values = []
            for side, tid, attribute in sorted(members):
                relation = working.left if side == LEFT else working.right
                values.append(relation[tid][attribute])
            resolved = resolver(values)
            for side, tid, attribute in members:
                relation = working.left if side == LEFT else working.right
                if relation[tid][attribute] != resolved:
                    relation.set_value(tid, attribute, resolved)
        merge_span.set("classes", len(cells.classes()))

    stats = plan.stats
    stats.enforcements += 1
    stats.pairs_compared += len(pairs)
    stats.chase_rounds += max(outcome.rounds for outcome in outcomes)
    stats.rule_applications += sum(o.applications for o in outcomes)
    stats.metric_evaluations += sum(o.metric_evaluations for o in outcomes)
    stats.cache_hits += sum(o.cache_hits for o in outcomes)
    stats.value_pairs_evaluated += sum(o.value_pairs_evaluated for o in outcomes)
    merged_groups = sum(o.groups_built for o in outcomes)
    stats.groups_built += merged_groups
    if merged_groups:
        stats.factorisation_ratio = round(len(pairs) / merged_groups, 4)
    stats.shards += len(shards)
    stats.parallel_chases += 1
    stats.workers_spawned += len(bins)
    stats.serial_fallback_reason = None
    rounds_exhausted = any(o.rounds_exhausted for o in outcomes)
    if rounds_exhausted:
        stats.rounds_exhausted += 1
    plan.metrics.observe(
        "chase.rounds", max(outcome.rounds for outcome in outcomes)
    )
    parallel_span.set("shards", len(shards))
    parallel_span.__exit__(None, None, None)
    return EnforcementResult(
        instance=working,
        stable=all(outcome.stable for outcome in outcomes),
        rounds=max(outcome.rounds for outcome in outcomes),
        merged_cells=cells,
        applications=sum(outcome.applications for outcome in outcomes),
        rounds_exhausted=rounds_exhausted,
    )

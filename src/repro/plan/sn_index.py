"""Window-encoded sorted-neighborhood index: rank ranges over block runs.

The legacy :class:`~repro.plan.blocking.SortedNeighborhoodBackend` is
batch-only — it sorts the merged sequence from scratch per call, and its
overlapping windows chain every pair into a single connected component,
defeating the shard executor (the documented ``single-component`` serial
fallback).  The streaming engine could not use it at all, which is how
sorted-neighborhood specs ended up silently streaming under *hash*
semantics.

:class:`WindowedSNIndex` fixes both by maintaining a **rank encoding** of
each pass's sort keys, in the spirit of pre/post-order tree encodings
that turn traversals into range scans:

* every element is kept at its rank in a sorted run of
  ``(key, side, tid)`` entries, maintained incrementally by binary
  insertion on :meth:`add` — the merged sequence never re-sorts;
* a window is a **rank-range query**: :meth:`probe` bisects to the
  record's rank and scans the ±(window−1) rank interval around it;
* the sorted sequence is **split at block boundaries** — runs are
  partitioned by the leading key component (the encoded leading
  attribute), and windows never span a boundary.  Adjacent windows in
  different blocks therefore share no pairs, sorted-neighborhood
  workloads decompose into many connected components, and the parallel
  executor shards them instead of falling back to serial.

Block confinement alone would be lossy: two records that disagree on the
leading attribute (a typo'd first name, say) can never share a block, no
matter how similar the rest of their key is.  The classic remedy is
**multi-pass** sorted-neighborhood, and the index applies it: with key
``pairs`` (a1, a2, …, an), pass *i* sorts by the rotation
(aᵢ, …, an, a1, …, aᵢ₋₁), so every keyed attribute leads exactly one
pass and blocks one partition.  A candidate pair survives if the two
records agree on the encoded leading value of *any* pass — dropped pairs
disagree on **every** keyed attribute's encoded value, and such pairs
were never going to satisfy an RCK built from those comparisons.

Streaming and batch agree by construction on the *final* state: a run's
layout depends only on the key/side/tid triples, never on arrival order,
so :meth:`scan_candidates` over a live index equals :meth:`candidates`
over the same rows.  At-arrival probes are a refinement, not an exact
prefix of the batch set: a probe sees the window over the elements
*currently* ranked, so two records may sit within one window early in the
stream and drift apart as later arrivals rank between them.  Drifted
pairs are extra *comparisons* (within one block, hence one leading key
class), and the differential suite pins that the decided matches and
clusters still converge to the batch run's.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT
from repro.metrics.soundex import soundex
from repro.plan.blocking import (
    _LEFT,
    _RIGHT,
    DEFAULT_ENCODED_ATTRIBUTES,
    BlockingBackend,
    Pair,
    RowKey,
    attribute_key,
    leading_attribute_pairs,
)
from repro.relations.relation import Relation, Row

#: One ranked element of a run: (sort key, side marker, tuple id).
Entry = Tuple[Tuple[str, ...], int, int]


def window_neighbors(
    run: Sequence[Entry], entry: Entry, window: int
) -> List[int]:
    """Other-side tuple ids within ``entry``'s rank window in a sorted run.

    The rank-range query shared by the in-memory and SQLite SN backends:
    bisect to the entry's rank (insertion-point semantics when the entry
    is not ranked yet) and scan the ±(window−1) interval.
    """
    if window < 2 or not run:
        return []
    position = bisect.bisect_left(run, entry)
    present = position < len(run) and run[position] == entry
    found: Set[int] = set()
    lower = max(0, position - window + 1)
    upper = min(len(run), position + window)
    for rank in range(lower, upper):
        candidate = run[rank]
        if candidate == entry:
            continue
        if rank >= position and not present:
            distance = rank - position + 1
        else:
            distance = abs(rank - position)
        if distance >= window:
            continue
        if candidate[1] != entry[1]:
            found.add(candidate[2])
    return sorted(found)


def run_pairs(run: Sequence[Entry], window: int) -> Set[Pair]:
    """Cross-side pairs at rank distance < ``window`` within one run.

    The same merge loop as :func:`~repro.plan.blocking.window_candidates`,
    restricted to a single block run.
    """
    pairs: Set[Pair] = set()
    for position, (_, side, tid) in enumerate(run):
        upper = min(len(run), position + window)
        for other_position in range(position + 1, upper):
            _, other_side, other_tid = run[other_position]
            if side == other_side:
                continue
            if side == _LEFT:
                pairs.add((tid, other_tid))
            else:
                pairs.add((other_tid, tid))
    return pairs


def _rotations(
    pairs: Tuple[Tuple[str, str], ...]
) -> Tuple[Tuple[Tuple[str, str], ...], ...]:
    """One sort-key rotation per attribute pair, each leading once."""
    return tuple(
        pairs[position:] + pairs[:position] for position in range(len(pairs))
    )


class WindowedSNIndex(BlockingBackend):
    """Incremental multi-pass sorted-neighborhood over block-confined runs.

    One pass per attribute pair in ``pairs`` (left attribute, right
    attribute): pass *i* sorts by the rotation of ``pairs`` starting at
    pair *i*, so each attribute leads exactly one pass and partitions its
    blocks.  Values of attributes named in ``encode_attributes`` are
    Soundex-encoded before keying, exactly like the hash backend's
    :class:`~repro.plan.blocking.RCKIndex`, so a spec's stream and batch
    runs derive identical keys.

    A window below 2 is legal at this level and yields no candidates —
    no two elements ever share a window — matching the historical
    ``window_candidates`` behavior.  (Spec *validation* rejects it
    upstream, because a silent empty candidate set is never what a spec
    author meant.)

    >>> from repro.core.schema import RelationSchema
    >>> from repro.relations.relation import Relation
    >>> schema = RelationSchema("R", ["LN", "FN"])
    >>> index = WindowedSNIndex([("LN", "LN"), ("FN", "FN")], window=3)
    >>> relation = Relation(schema)
    >>> tid = relation.insert({"LN": "Clifford", "FN": "Alice"})
    >>> index.add(0, relation[tid])
    >>> other = relation.insert({"LN": "Clivord", "FN": "Alyce"})
    >>> index.probe(1, relation[other])  # same Soundex block, ranked near
    [0]
    """

    name = "sorted-neighborhood"
    family = "sorted-neighborhood"

    def __init__(
        self,
        pairs: Sequence[Tuple[str, str]],
        window: int = 10,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> None:
        if not pairs:
            raise ValueError(
                "a sorted-neighborhood index needs at least one attribute pair"
            )
        self.pairs: Tuple[Tuple[str, str], ...] = tuple(
            (left, right) for left, right in pairs
        )
        self.window = int(window)
        self.encode_attributes: Tuple[str, ...] = tuple(encode_attributes)
        encode = set(self.encode_attributes)
        #: Per-pass sort keys: rotation *i* leads with ``pairs[i]``.
        self.passes: Tuple[Tuple[Tuple[str, str], ...], ...] = _rotations(
            self.pairs
        )
        self._left_keys: List[RowKey] = []
        self._right_keys: List[RowKey] = []
        for rotation in self.passes:
            left_attrs = [left for left, _ in rotation]
            right_attrs = [right for _, right in rotation]
            self._left_keys.append(
                attribute_key(
                    left_attrs,
                    [
                        soundex if attr in encode else None
                        for attr in left_attrs
                    ],
                )
            )
            self._right_keys.append(
                attribute_key(
                    right_attrs,
                    [
                        soundex if attr in encode else None
                        for attr in right_attrs
                    ],
                )
            )
        #: Live rank runs: one ``{block: run}`` map per pass.
        self._blocks: List[Dict[str, List[Entry]]] = [
            {} for _ in self.passes
        ]

    # -- construction recipes ------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence[Tuple[str, str]],
        window: int = 10,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> "WindowedSNIndex":
        """An index over explicit spec ``key_pairs``."""
        return cls(pairs, window, encode_attributes)

    @classmethod
    def from_rcks(
        cls,
        rcks: Sequence[RelativeKey],
        window: int = 10,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
        attribute_count: int = 3,
    ) -> "WindowedSNIndex":
        """Passes over the leading attribute pairs of the given RCKs."""
        if not rcks:
            raise ValueError("need at least one RCK")
        chosen = leading_attribute_pairs(rcks, attribute_count)
        return cls(chosen, window, encode_attributes)

    # -- keys and blocks -----------------------------------------------

    @property
    def pass_count(self) -> int:
        """Number of sort passes (one per keyed attribute pair)."""
        return len(self.passes)

    def key_for(self, side: int, row: Row, position: int = 0) -> Tuple[str, ...]:
        """The derived sort key of ``row`` for pass ``position``."""
        keys = self._left_keys if side == LEFT else self._right_keys
        return keys[position](row)

    @staticmethod
    def block_of(key: Tuple[str, ...]) -> str:
        """The block a key ranks in: its leading encoded component."""
        return key[0]

    def _entry(self, side: int, row: Row, position: int) -> Entry:
        return (
            self.key_for(side, row, position),
            _LEFT if side == LEFT else _RIGHT,
            row.tid,
        )

    # -- streaming -----------------------------------------------------

    def add(self, side: int, row: Row) -> None:
        """Rank one arriving record into its block run per pass."""
        for position in range(self.pass_count):
            entry = self._entry(side, row, position)
            run = self._blocks[position].setdefault(
                self.block_of(entry[0]), []
            )
            bisect.insort(run, entry)

    def probe(self, side: int, row: Row) -> List[int]:
        """Other-side tuple ids within ``row``'s rank window in any pass.

        A rank-range query per pass: bisect to the record's rank in its
        block run (the record itself is already ranked when the engine
        probes, but an un-added row is handled by insertion-point
        semantics), then scan the ±(window−1) rank interval.
        """
        found: Set[int] = set()
        for position in range(self.pass_count):
            entry = self._entry(side, row, position)
            run = self._blocks[position].get(self.block_of(entry[0]), [])
            found.update(window_neighbors(run, entry, self.window))
        return sorted(found)

    def scan_candidates(self) -> List[Pair]:
        """All cross-side window pairs over the *live* rank runs.

        Arrival-order independent: equals :meth:`candidates` over the
        same rows, because a run's final layout is the sorted entry list
        either way.
        """
        if self.window < 2:
            return []
        pairs: Set[Pair] = set()
        for blocks in self._blocks:
            for run in blocks.values():
                pairs.update(run_pairs(run, self.window))
        return sorted(pairs)

    # -- batch ---------------------------------------------------------

    def candidates(self, left: Relation, right: Relation) -> List[Pair]:
        """Block-confined window candidates for a batch instance pair.

        Runs on transient rank runs — the live runs of a streaming store
        are never touched or rebuilt.
        """
        if self.window < 2:
            return []
        pairs: Set[Pair] = set()
        for position in range(self.pass_count):
            blocks: Dict[str, List[Entry]] = {}
            for row in left:
                key = self._left_keys[position](row)
                blocks.setdefault(self.block_of(key), []).append(
                    (key, _LEFT, row.tid)
                )
            for row in right:
                key = self._right_keys[position](row)
                blocks.setdefault(self.block_of(key), []).append(
                    (key, _RIGHT, row.tid)
                )
            for run in blocks.values():
                run.sort()
                pairs.update(run_pairs(run, self.window))
        return sorted(pairs)

    # -- introspection -------------------------------------------------

    def block_count(self) -> int:
        """Number of live block runs, summed over passes."""
        return sum(len(blocks) for blocks in self._blocks)

    def largest_block(self) -> int:
        """Length of the longest live block run across passes."""
        lengths = [
            len(run) for blocks in self._blocks for run in blocks.values()
        ]
        return max(lengths) if lengths else 0

    def index_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-pass stats in the store's index-stats shape.

        Keys stay ``buckets``/``largest_bucket`` for CLI compatibility;
        for a rank index they count block runs and the longest run.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for position, rotation in enumerate(self.passes):
            blocks = self._blocks[position]
            name = "sn:" + "+".join(left for left, _ in rotation)
            stats[name] = {
                "buckets": len(blocks),
                "largest_bucket": (
                    max(len(run) for run in blocks.values()) if blocks else 0
                ),
            }
        return stats

    def describe(self) -> str:
        detail = "+".join(f"{left}~{right}" for left, right in self.pairs)
        return (
            f"sorted-neighborhood(window={self.window}, rank-encoded, "
            f"{self.pass_count} rotated pass(es) on {detail}; "
            "runs split at block boundaries)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowedSNIndex(window={self.window}, "
            f"{self.pass_count} pass(es), {self.block_count()} block run(s))"
        )

"""The enforcement kernel: compile rules once, execute them everywhere.

MDs and RCKs are declarative; this package lowers a rule set into one
executable :class:`~repro.plan.compile.EnforcementPlan` — deduplicated
comparison predicates with metrics resolved at compile time, a value-keyed
similarity memo cache, a pluggable blocking backend, and the
enforcement-chase kernel (:mod:`repro.plan.executor`), which by default
runs **factorised**: candidate pairs grouped by distinct LHS value-pair
signature (:mod:`repro.plan.factorise`), one rule verdict per group
instead of per record pair — shared by the batch
matchers (:mod:`repro.matching.pipeline`), the streaming engine
(:mod:`repro.engine`), the experiments, and the CLI
(``repro plan explain``).  Large instances shard: candidate pairs split
into connected components (:mod:`repro.plan.shard`) that chase in
parallel worker processes (:mod:`repro.plan.parallel`), provably
equivalent to the serial loop.

Layering: :mod:`repro.plan` depends only on ``core``, ``metrics`` and
``relations``; the matching and engine layers depend on it, never the
other way around (``repro.core.semantics.enforce`` delegates to the
kernel through a deliberate lazy import).

Typical use::

    from repro.plan import compile_plan

    plan = compile_plan(sigma, target, top_k=5)
    pairs = plan.candidates(credit, billing)
    result = plan.enforce(instance, candidate_pairs=pairs)
    print(plan.stats.metric_evaluations, plan.stats.cache_hits)
"""

from .blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    BlockingBackend,
    HashBlockingBackend,
    Pair,
    RCKIndex,
    RowKey,
    SortedNeighborhoodBackend,
    attribute_key,
    hash_candidates,
    indexes_from_rcks,
    leading_attribute_pairs,
    rck_sort_keys,
    window_candidates,
)
from .compile import (
    DEFAULT_CACHE_LIMIT,
    CompiledKey,
    CompiledPredicate,
    CompiledRule,
    EnforcementPlan,
    PlanStats,
    compile_plan,
)
from .executor import chase, chase_factorised
from .factorise import PairGroup, PairGroupIndex
from .parallel import PARALLEL_MIN_PAIRS, parallel_chase, plan_spec_document
from .shard import Shard, assign_shards, shard_pairs
from .sn_index import WindowedSNIndex

__all__ = [
    "PARALLEL_MIN_PAIRS",
    "Shard",
    "BlockingBackend",
    "CompiledKey",
    "CompiledPredicate",
    "CompiledRule",
    "DEFAULT_CACHE_LIMIT",
    "DEFAULT_ENCODED_ATTRIBUTES",
    "EnforcementPlan",
    "HashBlockingBackend",
    "Pair",
    "PairGroup",
    "PairGroupIndex",
    "PlanStats",
    "RCKIndex",
    "RowKey",
    "SortedNeighborhoodBackend",
    "WindowedSNIndex",
    "assign_shards",
    "attribute_key",
    "chase",
    "chase_factorised",
    "compile_plan",
    "hash_candidates",
    "indexes_from_rcks",
    "leading_attribute_pairs",
    "parallel_chase",
    "plan_spec_document",
    "rck_sort_keys",
    "shard_pairs",
    "window_candidates",
]

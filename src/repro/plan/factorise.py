"""Factorised representation of a candidate-pair comparison space.

The chase evaluates rule LHSs over *record pairs*, but the LHS of a
compiled rule reads only the attribute values its predicate slots name.
On duplicate-heavy data (the workloads of Fan et al.) many record pairs
present the same tuple of LHS value pairs, so — following factorised
relational databases (FDB) and the FAQ line — the comparison space is
represented here *by distinct values* instead of by record pairs:

* the **signature** of a candidate pair is the tuple of
  ``(left_value, right_value)`` per LHS predicate slot
  (:attr:`EnforcementPlan.lhs_slots <repro.plan.compile.EnforcementPlan>`);
* a :class:`PairGroupIndex` groups the candidate pairs by signature, so a
  rule's LHS verdict is computed **once per distinct signature**
  (:meth:`~repro.plan.compile.EnforcementPlan.group_verdict`) and only
  firing groups are expanded back to record pairs;
* a consensus repair changes a tuple's values, so :meth:`PairGroupIndex.migrate`
  moves that tuple's pairs to their re-computed signature groups
  incrementally — the factorisation is never rebuilt mid-chase.

Grouping is global over the flat candidate list the blocking backend
emits; pairs from different blocks that happen to share a signature share
a group (a strict superset of per-block grouping, same verdicts).
:func:`repro.plan.executor.chase_factorised` drives the chase over this
index; :meth:`PairGroupIndex.expand` recovers exactly the original pair
set (a Hypothesis property pins this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.semantics import InstancePair

from .blocking import Pair

#: One ``(left_value, right_value)`` entry per LHS predicate slot.
Signature = Tuple[Tuple[object, object], ...]


class PairGroup:
    """All candidate pairs currently presenting one value-pair signature.

    ``pairs`` is an insertion-ordered set (a dict with ``None`` values):
    membership changes as repairs migrate pairs, and iteration order must
    stay deterministic for the chase's union order to be reproducible.
    """

    __slots__ = ("key", "signature", "pairs")

    def __init__(self, key: object, signature: Signature) -> None:
        self.key = key
        self.signature = signature
        self.pairs: Dict[Pair, None] = {}

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PairGroup({len(self.pairs)} pairs, signature={self.signature!r})"


class PairGroupIndex:
    """Candidate pairs grouped by their LHS value-pair signature.

    Built once per chase over the *working* instance; kept current by
    :meth:`migrate` as repairs rewrite tuple values.  The signature axes
    are the plan's :attr:`lhs_slots`, so two pairs share a group exactly
    when every rule's LHS verdict is identical for them.
    """

    def __init__(
        self,
        plan,
        instance: InstancePair,
        pairs: Iterable[Pair] = (),
    ) -> None:
        self._slots = plan.lhs_slots
        #: signature (or fallback key) -> group, insertion-ordered.
        self.groups: Dict[object, PairGroup] = {}
        self._group_of: Dict[Pair, PairGroup] = {}
        for pair in pairs:
            self.add(instance, pair)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def group_count(self) -> int:
        """Number of distinct-signature groups."""
        return len(self.groups)

    @property
    def pair_count(self) -> int:
        """Number of candidate pairs across all groups."""
        return len(self._group_of)

    @property
    def ratio(self) -> float:
        """Pairs per group — the dedup factor the factorisation achieved."""
        return self.pair_count / self.group_count if self.groups else 0.0

    # ------------------------------------------------------------------
    # Construction and maintenance
    # ------------------------------------------------------------------

    def signature(self, instance: InstancePair, pair: Pair) -> Signature:
        """The value-pair tuple ``pair`` presents on the LHS slots."""
        left_tid, right_tid = pair
        t1 = instance.left[left_tid]
        t2 = instance.right[right_tid]
        return tuple(
            (t1[predicate.left], t2[predicate.right])
            for predicate in self._slots
        )

    def add(self, instance: InstancePair, pair: Pair) -> PairGroup:
        """Insert one pair under its current signature."""
        return self._place(pair, self.signature(instance, pair))

    def _place(self, pair: Pair, signature: Signature) -> PairGroup:
        try:
            hash(signature)
            key: object = signature
        except TypeError:
            # An unhashable value (e.g. a list cell) cannot share a
            # group; a per-pair key keeps it correct, just unfactorised.
            key = ("__unhashable__", pair)
        group = self.groups.get(key)
        if group is None:
            group = PairGroup(key, signature)
            self.groups[key] = group
        group.pairs[pair] = None
        self._group_of[pair] = group
        return group

    def migrate(
        self, instance: InstancePair, pairs: Sequence[Pair]
    ) -> List[PairGroup]:
        """Re-signature the given pairs against current instance values.

        Each pair whose signature changed moves to its new group (created
        on demand; emptied groups are dropped).  Returns the distinct
        groups now holding the given pairs, in first-touched order — the
        factorised chase's next active set.
        """
        touched: Dict[object, PairGroup] = {}
        for pair in pairs:
            old = self._group_of[pair]
            signature = self.signature(instance, pair)
            if signature == old.signature:
                group = old
            else:
                del old.pairs[pair]
                if not old.pairs:
                    del self.groups[old.key]
                group = self._place(pair, signature)
            touched.setdefault(group.key, group)
        return list(touched.values())

    def expand(self) -> List[Pair]:
        """Every candidate pair, recovered from the groups.

        Exactly the set of pairs inserted (and never removed) — grouping
        and migration lose nothing; ``tests/plan/test_factorised_equivalence.py``
        holds this as a Hypothesis property.
        """
        return [
            pair for group in self.groups.values() for pair in group.pairs
        ]

"""Compile MDs and RCKs into a shared, executable :class:`EnforcementPlan`.

The paper's rules are declarative; every execution layer used to lower
them independently — the batch matchers resolved operator names per
comparison, the streaming engine re-derived the same blocking keys, and
each re-implemented the pair/rule evaluation loop.  Following the
compile-then-execute designs of factorised query engines (FDB, FAQ), this
module lowers a rule set **once**:

* every LHS conjunct and RCK atom is normalized to a
  ``(left_attr, right_attr, operator)`` triple and **deduplicated** across
  all rules — an atom shared by three MDs and two RCKs becomes one
  :class:`CompiledPredicate`, evaluated at most once per value pair;
* operator names are resolved to executable predicates through the metric
  registry **at compile time**, not per comparison;
* the plan carries a value-keyed **similarity memo cache**: a predicate
  applied twice to the same value pair (across rules, chase rounds,
  matchers, or stream ingests) is computed once and then served from the
  cache;
* the chase runs **factorised** by default (:mod:`repro.plan.factorise`):
  candidate pairs group by their distinct LHS value-pair signature and
  every rule verdict is computed once per group
  (:meth:`EnforcementPlan.group_verdict`), not once per record pair —
  O(distinct-value-pairs × atoms) on the hot path;
* a pluggable :class:`~repro.plan.blocking.BlockingBackend` supplies
  candidate generation, so batch and streaming share one blocking
  implementation;
* :class:`PlanStats` counts the work actually done (metric evaluations,
  cache hits, chase rounds), making "fewer evaluations than the naive
  path" a measurable claim (``benchmarks/test_plan_kernel.py``).

Both the batch matchers (:mod:`repro.matching.pipeline`) and the streaming
engine (:mod:`repro.engine.matcher`) execute through the same plan; the
reference entry point :func:`repro.core.semantics.enforce` compiles a
throwaway plan and delegates to the same kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.findrcks import find_rcks
from repro.core.md import MatchingDependency
from repro.core.rck import RelativeKey
from repro.core.schema import ComparableLists, SchemaPair
from repro.metrics.base import SimilarityPredicate
from repro.metrics.registry import DEFAULT_REGISTRY, EQ, MetricRegistry
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.relations.relation import Relation, Row

from .blocking import BlockingBackend, Pair, SortedNeighborhoodBackend
from .executor import chase, chase_factorised

#: Default bound on memoized (predicate, value, value) entries; the cache
#: is cleared wholesale when it fills (simple, allocation-free policy).
DEFAULT_CACHE_LIMIT = 1 << 20


@dataclass(frozen=True)
class CompiledPredicate:
    """One deduplicated comparison atom with its resolved predicate.

    ``index`` is the predicate's slot in the plan's table — compiled rules
    and keys reference predicates by slot, which is what makes sharing
    visible (and cache keys small).  ``cacheable`` marks predicates worth
    memoizing: similarity metrics cost orders of magnitude more than a
    cache probe, while plain equality is cheaper than the probe itself.
    """

    index: int
    left: str
    right: str
    operator: str
    predicate: SimilarityPredicate
    cacheable: bool = True

    def render(self) -> str:
        """Human-readable form, e.g. ``credit.FN ~dl(0.8) billing.FN``."""
        op = "=" if self.operator == EQ else f"~{self.operator}"
        return f"{self.left} {op} {self.right}"


@dataclass(frozen=True)
class CompiledRule:
    """An MD lowered to predicate slots and identification pairs."""

    name: str
    lhs: Tuple[int, ...]
    rhs: Tuple[Tuple[str, str], ...]
    source: MatchingDependency


@dataclass(frozen=True)
class CompiledKey:
    """An RCK lowered to predicate slots (a direct match rule)."""

    name: str
    predicates: Tuple[int, ...]
    source: RelativeKey


@dataclass
class PlanStats:
    """Work counters of one plan, cumulative across executions."""

    compiles: int = 0
    metric_evaluations: int = 0
    cache_hits: int = 0
    pairs_compared: int = 0
    rule_applications: int = 0
    chase_rounds: int = 0
    enforcements: int = 0
    #: Parallel execution counters (repro.plan.parallel): connected
    #: components chased, pool executions, and pool processes started.
    shards: int = 0
    parallel_chases: int = 0
    workers_spawned: int = 0
    #: Chases that hit ``max_rounds`` before reaching a fixpoint (each
    #: such chase also sets ``EnforcementResult.rounds_exhausted``; the
    #: CLI surfaces this as a warning).
    rounds_exhausted: int = 0
    #: Factorised-path counters (:mod:`repro.plan.factorise`):
    #: group-level predicate probes made while computing LHS verdicts
    #: (the factorised twin of ``metric_evaluations + cache_hits``),
    #: distinct value-pair groups built across chases, and the latest
    #: chase's pairs-per-group dedup factor.
    value_pairs_evaluated: int = 0
    groups_built: int = 0
    factorisation_ratio: float = 0.0
    #: Why the last ``workers > 1`` enforcement ran serially after all
    #: (``None`` while no fallback has happened, or after a successful
    #: parallel chase).  The one non-counter field — previously the
    #: reason was undiscoverable at runtime.
    serial_fallback_reason: Optional[str] = None

    def reset(self) -> None:
        """Restore every field to its default (0 for the counters)."""
        for spec in fields(self):
            setattr(self, spec.name, spec.default)

    def as_dict(self) -> Dict[str, object]:
        """The counters (plus the fallback reason) as a JSON dict."""
        return dict(vars(self))


class EnforcementPlan:
    """An executable lowering of a set of MDs and RCKs.

    Built by :func:`compile_plan`; see the module docstring for what
    compilation does.  The plan is the single execution kernel shared by
    every matcher:

    * :meth:`enforce` — the chase (dynamic semantics) over a candidate
      pair set, deciding matches by cell identification;
    * :meth:`matches_any_key` — direct RCK rule matching (a pair matches
      when some key's comparisons all agree);
    * :meth:`candidates` — candidate generation through the plan's
      blocking backend.
    """

    def __init__(
        self,
        pair: SchemaPair,
        sigma: Sequence[MatchingDependency],
        rcks: Sequence[RelativeKey],
        predicates: Sequence[CompiledPredicate],
        rules: Sequence[CompiledRule],
        keys: Sequence[CompiledKey],
        registry: MetricRegistry,
        target: Optional[ComparableLists] = None,
        blocking: Optional[BlockingBackend] = None,
        atom_count: int = 0,
        cached: bool = True,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
    ) -> None:
        self.pair = pair
        self.sigma: Tuple[MatchingDependency, ...] = tuple(sigma)
        self.rcks: Tuple[RelativeKey, ...] = tuple(rcks)
        self.predicates: Tuple[CompiledPredicate, ...] = tuple(predicates)
        self.rules: Tuple[CompiledRule, ...] = tuple(rules)
        self.keys: Tuple[CompiledKey, ...] = tuple(keys)
        self.registry = registry
        self.target = target
        self.blocking = blocking
        #: Total LHS/RCK atoms before deduplication (explain reports the
        #: compression this plan achieved).
        self.atom_count = atom_count
        self.cached = cached
        self.cache_limit = cache_limit
        self.stats = PlanStats()
        #: Observability hooks (repro.obs).  The tracer defaults to the
        #: shared no-op singleton so every instrumentation point in the
        #: kernel stays unconditional; a Workspace built from a spec
        #: with tracing on swaps in a recording Tracer.  The metrics
        #: registry is always live (it is only touched at span-level
        #: granularity, never per predicate).
        self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()
        self._cache: Dict[Tuple[int, object, object], bool] = {}
        #: Ordered distinct predicate slots appearing in any rule's LHS —
        #: the axes of a factorised value-pair signature
        #: (:mod:`repro.plan.factorise`).
        ordered_slots: List[int] = []
        for rule in self.rules:
            for slot in rule.lhs:
                if slot not in ordered_slots:
                    ordered_slots.append(slot)
        self.lhs_slots: Tuple[CompiledPredicate, ...] = tuple(
            self.predicates[slot] for slot in ordered_slots
        )
        self._lhs_positions: Dict[int, int] = {
            slot: position for position, slot in enumerate(ordered_slots)
        }
        #: signature -> tuple of firing rule indices, memoized plan-wide
        #: (across groups, rounds, chases and stream ingests) under the
        #: same bound/clear policy as the similarity cache.
        self._verdicts: Dict[Tuple, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Predicate evaluation (the memoized hot path)
    # ------------------------------------------------------------------

    def evaluate(
        self, predicate: CompiledPredicate, left_value: object, right_value: object
    ) -> bool:
        """Evaluate one compiled predicate on a value pair, memoized.

        The cache is keyed by values (not tuple ids): chase repairs rewrite
        tuple values mid-run, so value keys stay correct where id keys
        would not — and equal values across different pairs share entries.
        Equality predicates and unhashable values are evaluated directly
        (the comparison is cheaper than the probe).
        """
        if not (self.cached and predicate.cacheable):
            self.stats.metric_evaluations += 1
            return bool(predicate.predicate(left_value, right_value))
        key = (predicate.index, left_value, right_value)
        try:
            cached = self._cache.get(key)
        except TypeError:
            self.stats.metric_evaluations += 1
            return bool(predicate.predicate(left_value, right_value))
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.metric_evaluations += 1
        result = bool(predicate.predicate(left_value, right_value))
        if len(self._cache) >= self.cache_limit:
            self._cache.clear()
        self._cache[key] = result
        return result

    def lhs_matches(self, rule: CompiledRule, t1: Row, t2: Row) -> bool:
        """Do two rows match the rule's LHS? (short-circuiting)"""
        for slot in rule.lhs:
            predicate = self.predicates[slot]
            if not self.evaluate(predicate, t1[predicate.left], t2[predicate.right]):
                return False
        return True

    def group_verdict(self, signature) -> Tuple[int, ...]:
        """Indices of the rules whose LHS fires on one value-pair signature.

        The factorised chase (:func:`repro.plan.executor.chase_factorised`)
        calls this once per distinct signature instead of once per record
        pair: a rule's LHS reads nothing but the signature's value pairs,
        so the verdict is a pure function of the signature and is memoized
        plan-wide.  ``stats.value_pairs_evaluated`` counts the group-level
        predicate probes actually made (a verdict-cache hit makes none) —
        the number to compare against ``metric_evaluations + cache_hits``
        of the pairwise path (``benchmarks/test_plan_factorised.py``).
        """
        try:
            cached = self._verdicts.get(signature)
            hashable = True
        except TypeError:
            cached, hashable = None, False
        if cached is not None:
            return cached
        stats = self.stats
        firing: List[int] = []
        for index, rule in enumerate(self.rules):
            for slot in rule.lhs:
                left_value, right_value = signature[self._lhs_positions[slot]]
                stats.value_pairs_evaluated += 1
                if not self.evaluate(
                    self.predicates[slot], left_value, right_value
                ):
                    break
            else:
                firing.append(index)
        verdict = tuple(firing)
        if hashable:
            if len(self._verdicts) >= self.cache_limit:
                self._verdicts.clear()
            self._verdicts[signature] = verdict
        return verdict

    def key_matches(self, key: CompiledKey, t1: Row, t2: Row) -> bool:
        """Do two rows agree on every comparison of one compiled key?"""
        for slot in key.predicates:
            predicate = self.predicates[slot]
            if not self.evaluate(predicate, t1[predicate.left], t2[predicate.right]):
                return False
        return True

    def matches_any_key(self, t1: Row, t2: Row) -> bool:
        """Direct rule matching: some RCK's comparisons all agree."""
        return any(self.key_matches(key, t1, t2) for key in self.keys)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def enforce(
        self,
        instance,
        resolver=None,
        candidate_pairs: Optional[Sequence[Pair]] = None,
        max_rounds: int = 100,
        workers: int = 1,
        spec_document: Optional[Dict[str, object]] = None,
        start_method: Optional[str] = None,
        factorised: bool = True,
    ):
        """Run the enforcement chase; see :func:`repro.plan.executor.chase`.

        ``factorised`` (the default) chases over distinct value-pair
        groups (:func:`repro.plan.executor.chase_factorised`) instead of
        record pairs — provably the same result, asymptotically fewer
        predicate probes on duplicate-heavy data.  ``workers > 1`` routes
        through the sharded parallel executor
        (:func:`repro.plan.parallel.parallel_chase`), which needs a
        ``spec_document`` to rebuild this plan in worker processes — it
        falls back to the serial loop when one cannot be derived, when
        the input is small, or when the pairs form one connected
        component (the exact conditions are documented there).
        """
        from repro.core.semantics import prefer_informative

        resolver = resolver if resolver is not None else prefer_informative
        if workers > 1:
            from .parallel import parallel_chase, plan_spec_document

            if spec_document is None:
                spec_document = plan_spec_document(self)
            return parallel_chase(
                self,
                instance,
                spec_document=spec_document,
                resolver=resolver,
                candidate_pairs=candidate_pairs,
                workers=workers,
                max_rounds=max_rounds,
                start_method=start_method,
                factorised=factorised,
            )
        if factorised and self.rules:
            return chase_factorised(
                self,
                instance,
                resolver=resolver,
                candidate_pairs=candidate_pairs,
                max_rounds=max_rounds,
            )
        return chase(
            self,
            instance,
            resolver=resolver,
            candidate_pairs=candidate_pairs,
            max_rounds=max_rounds,
        )

    def candidates(self, left: Relation, right: Relation) -> List[Pair]:
        """Candidate pairs from the plan's blocking backend."""
        if self.blocking is None:
            raise ValueError("this plan was compiled without a blocking backend")
        return self.blocking.candidates(left, right)

    def clear_cache(self) -> None:
        """Drop every memoized predicate result and group verdict
        (counters are kept)."""
        self._cache.clear()
        self._verdicts.clear()

    # ------------------------------------------------------------------
    # Introspection (``repro plan explain``)
    # ------------------------------------------------------------------

    def recorded_metrics(self) -> Dict[str, List[str]]:
        """What this plan's instrumented execution will record.

        ``counters`` are the :class:`PlanStats` fields (always on);
        ``histograms`` and ``spans`` are recorded by the pipeline around
        this plan — histograms always, spans only when tracing is on
        (``observability`` in the spec, or ``--trace`` on the CLI).
        """
        return {
            "counters": [spec.name for spec in fields(PlanStats)],
            "histograms": [
                "chase.rounds", "chase.seconds", "match.seconds",
                "engine.ingest_seconds",
            ],
            "spans": [
                "compile", "match", "enforce", "blocking", "chase",
                "chase-round", "factorise", "resolve-merged",
                "stability-check", "provenance", "parallel-chase",
                "shard-pairs", "pool", "merge-shards", "ingest",
            ],
        }

    def metric_binding(self, predicate: CompiledPredicate) -> str:
        """How the predicate's operator was resolved at compile time."""
        if predicate.operator == EQ:
            return "exact equality"
        name, _, theta = predicate.operator.partition("(")
        metric = self.registry.metric(name)
        return f"{type(metric).__name__} >= {theta.rstrip(')')}"

    def to_dict(self) -> Dict[str, object]:
        """The compiled plan as a JSON-serializable document."""
        return {
            "schema": {"left": self.pair.left.name, "right": self.pair.right.name},
            "predicates": [
                {
                    "index": predicate.index,
                    "left": predicate.left,
                    "right": predicate.right,
                    "operator": predicate.operator,
                    "binding": self.metric_binding(predicate),
                }
                for predicate in self.predicates
            ],
            "rules": [
                {
                    "name": rule.name,
                    "lhs": list(rule.lhs),
                    "rhs": [list(pair) for pair in rule.rhs],
                }
                for rule in self.rules
            ],
            "keys": [
                {"name": key.name, "predicates": list(key.predicates)}
                for key in self.keys
            ],
            "blocking": self.blocking.describe() if self.blocking else None,
            "atoms_before_dedup": self.atom_count,
            "unique_predicates": len(self.predicates),
            "observability": self.recorded_metrics(),
        }

    def explain(self) -> str:
        """Human-readable rendering of the compiled plan."""
        left_name = self.pair.left.name
        right_name = self.pair.right.name
        lines = [
            f"# EnforcementPlan over ({left_name}, {right_name})",
            f"# {len(self.rules)} rule(s), {len(self.keys)} key(s); "
            f"{self.atom_count} atom(s) compiled into "
            f"{len(self.predicates)} unique predicate(s)",
            "predicates:",
        ]
        for predicate in self.predicates:
            lines.append(
                f"  [{predicate.index}] {left_name}.{predicate.left} "
                f"{'=' if predicate.operator == EQ else '~' + predicate.operator} "
                f"{right_name}.{predicate.right}"
                f"  -> {self.metric_binding(predicate)}"
            )
        if self.rules:
            lines.append("rules:")
            for rule in self.rules:
                rhs = ", ".join(f"{l}<=>{r}" for l, r in rule.rhs)
                lines.append(
                    f"  {rule.name}: lhs {list(rule.lhs)} -> identify {rhs}"
                )
        if self.keys:
            lines.append("keys:")
            for key in self.keys:
                lines.append(f"  {key.name}: predicates {list(key.predicates)}")
        lines.append(
            "blocking: "
            + (self.blocking.describe() if self.blocking else "(none)")
        )
        recorded = self.recorded_metrics()
        lines.append("observability:")
        lines.append("  counters: " + ", ".join(recorded["counters"]))
        lines.append("  histograms: " + ", ".join(recorded["histograms"]))
        lines.append("  spans (with tracing on): " + ", ".join(recorded["spans"]))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnforcementPlan({len(self.rules)} rules, {len(self.keys)} keys, "
            f"{len(self.predicates)} predicates)"
        )


def compile_plan(
    sigma: Sequence[MatchingDependency] = (),
    target: Optional[ComparableLists] = None,
    rcks: Optional[Sequence[RelativeKey]] = None,
    top_k: int = 5,
    registry: MetricRegistry = DEFAULT_REGISTRY,
    blocking: Optional[BlockingBackend] = None,
    window: int = 10,
    cached: bool = True,
    cache_limit: int = DEFAULT_CACHE_LIMIT,
) -> EnforcementPlan:
    """Compile MDs (and/or RCKs) into an :class:`EnforcementPlan`.

    ``rcks=None`` with a ``target`` deduces the top ``top_k`` RCKs from
    Σ (the usual matcher path); ``target=None`` compiles a chase-only
    plan with no keys or blocking (what :func:`repro.core.semantics.enforce`
    uses).  The default blocking backend is sorted-neighborhood windowing
    on the deduced keys' attributes — pass any
    :class:`~repro.plan.blocking.BlockingBackend` to override.
    """
    sigma = list(sigma)
    if rcks is None:
        if sigma and target is not None:
            rcks = find_rcks(sigma, target, m=top_k)
        else:
            rcks = []
    else:
        rcks = list(rcks)
    if not sigma and not rcks:
        raise ValueError("need at least one MD or RCK to compile a plan")
    if target is None and rcks:
        # Every relative key carries its target; adopt it so key-only
        # plans (RCKMatcher) still get blocking and match read-off.
        target = rcks[0].target

    if sigma:
        pair = sigma[0].pair
    elif target is not None:
        pair = target.pair
    else:
        pair = rcks[0].target.pair

    slots: Dict[Tuple[str, str, str], int] = {}
    predicates: List[CompiledPredicate] = []
    atom_count = 0

    def slot_of(left: str, right: str, operator: str) -> int:
        nonlocal atom_count
        atom_count += 1
        key = (left, right, operator)
        found = slots.get(key)
        if found is not None:
            return found
        index = len(predicates)
        predicates.append(
            CompiledPredicate(
                index,
                left,
                right,
                operator,
                registry.resolve(operator),
                cacheable=operator != EQ,
            )
        )
        slots[key] = index
        return index

    rules = tuple(
        CompiledRule(
            name=f"md{position}",
            lhs=tuple(
                slot_of(atom.left, atom.right, atom.operator.name)
                for atom in dependency.lhs
            ),
            rhs=tuple(
                (atom.left, atom.right) for atom in dependency.rhs
            ),
            source=dependency,
        )
        for position, dependency in enumerate(sigma)
    )
    keys = tuple(
        CompiledKey(
            name=f"rck{position}",
            predicates=tuple(
                slot_of(atom.left, atom.right, atom.operator.name)
                for atom in key.atoms
            ),
            source=key,
        )
        for position, key in enumerate(rcks)
    )

    if blocking is None and rcks and target is not None:
        blocking = SortedNeighborhoodBackend.from_rcks(rcks, window=window)

    plan = EnforcementPlan(
        pair=pair,
        sigma=sigma,
        rcks=rcks,
        predicates=predicates,
        rules=rules,
        keys=keys,
        registry=registry,
        target=target,
        blocking=blocking,
        atom_count=atom_count,
        cached=cached,
        cache_limit=cache_limit,
    )
    # Each compile charges the new plan's own counter exactly once, so a
    # caller holding one plan can assert it was compiled once (`compiles``
    # stays 1 no matter how many executions the plan serves).
    plan.stats.compiles = 1
    return plan

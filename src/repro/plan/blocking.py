"""Candidate generation for the enforcement kernel: the blocking layer.

Every matcher needs a candidate-pair generator before it compares anything;
the paper names two families (Section 1): *blocking* — partition by a
derived key, compare within blocks — and *windowing* — sort by a key and
slide a fixed window.  This module is the single home of both, exposed
behind the :class:`BlockingBackend` protocol so a compiled
:class:`~repro.plan.compile.EnforcementPlan` can carry its candidate
generator as a pluggable component:

* the key-derivation primitives (:func:`attribute_key`,
  :func:`rck_sort_keys`) and the window-merge loop
  (:func:`window_candidates`), which :mod:`repro.matching.blocking` and
  :mod:`repro.matching.windowing` re-export;
* :class:`RCKIndex` — the incremental inverted index formerly in
  ``repro.engine.indexes``, one bucket table per RCK-derived key;
* :class:`HashBlockingBackend` — multi-pass hash blocking over RCK
  indexes, serving batch candidate generation *and* the streaming
  engine's per-record ``add``/``probe``;
* :class:`SortedNeighborhoodBackend` — multi-pass sorted-neighborhood
  windowing over RCK sort keys (batch-only; the streaming-capable,
  block-splitting variant is :class:`~repro.plan.sn_index.WindowedSNIndex`).

Batch and streaming thereby share one blocking implementation: probing an
index with a new record yields exactly the pairs a batch
``candidates(left, right)`` call over the same keys would have generated
for it.  Every backend carries a ``family`` marker (``"hash"`` or
``"sorted-neighborhood"``) so stores can be checked against the blocking
semantics a spec declares.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT
from repro.metrics.soundex import soundex
from repro.relations.relation import Relation, Row

#: A candidate pair: (left tuple id, right tuple id).
Pair = Tuple[int, int]

#: Derives a blocking/sorting key from a row.
RowKey = Callable[[Row], object]

#: Per-attribute value encoders applied before keying.
Encoder = Callable[[str], str]

#: Attributes Soundex-encoded by default (the schemas' name attributes).
DEFAULT_ENCODED_ATTRIBUTES = ("FN", "LN")

#: Sides in a merged window sequence.
_LEFT = 0
_RIGHT = 1


def _encode(value: object, encoder: Optional[Encoder]) -> str:
    text = "" if value is None else str(value)
    return encoder(text) if encoder is not None else text


def attribute_key(
    attributes: Sequence[str],
    encoders: Optional[Sequence[Optional[Encoder]]] = None,
) -> RowKey:
    """A key function concatenating (encoded) attribute values.

    ``encoders[i]`` (when given) transforms the i-th attribute's value —
    e.g. :func:`~repro.metrics.soundex.soundex` for names.

    >>> key = attribute_key(["LN"], [soundex])
    >>> # rows with phonetically equal last names collide
    """
    if encoders is not None and len(encoders) != len(attributes):
        raise ValueError("encoders must align with attributes")

    def derive(row: Row) -> Tuple[str, ...]:
        return tuple(
            _encode(row[attribute], encoders[index] if encoders else None)
            for index, attribute in enumerate(attributes)
        )

    return derive


def leading_attribute_pairs(
    rcks: Sequence[RelativeKey],
    attribute_count: int = 3,
) -> List[Tuple[str, str]]:
    """The first ``attribute_count`` distinct attribute pairs of the RCKs.

    The shared selection rule behind every RCK-derived key recipe —
    sort keys, blocking keys, Exp-4's "three attributes in top two RCKs".
    Returns fewer pairs when the RCKs don't provide enough; callers that
    need an exact count must check.
    """
    chosen: List[Tuple[str, str]] = []
    for key in rcks:
        for pair in key.attribute_pairs():
            if pair not in chosen:
                chosen.append(pair)
            if len(chosen) == attribute_count:
                return chosen
    return chosen


def rck_sort_keys(
    rcks: Sequence[RelativeKey],
    attribute_count: int = 3,
) -> Tuple[RowKey, RowKey]:
    """Sort keys from the first attributes of the given RCKs.

    The derived key concatenates the first ``attribute_count`` distinct
    attribute pairs of the RCK list — "(part of) RCKs suffice to serve as
    quality sorting keys" (Section 1, Windowing).
    """
    if not rcks:
        raise ValueError("need at least one RCK")
    chosen = leading_attribute_pairs(rcks, attribute_count)
    left_attrs = [left_attr for left_attr, _ in chosen]
    right_attrs = [right_attr for _, right_attr in chosen]
    return attribute_key(left_attrs), attribute_key(right_attrs)


def hash_candidates(
    left: Relation,
    right: Relation,
    left_key: RowKey,
    right_key: RowKey,
) -> List[Pair]:
    """Candidate pairs: all cross-relation pairs sharing a block key."""
    buckets: Dict[Hashable, List[int]] = {}
    for row in left:
        buckets.setdefault(left_key(row), []).append(row.tid)
    candidates: List[Pair] = []
    for right_row in right:
        for left_tid in buckets.get(right_key(right_row), ()):
            candidates.append((left_tid, right_row.tid))
    return candidates


def window_candidates(
    left: Relation,
    right: Relation,
    left_key: RowKey,
    right_key: RowKey,
    window: int = 10,
) -> List[Pair]:
    """Candidate pairs from one sorted-neighborhood pass.

    The merged sequence is sorted by the derived key (ties broken by side
    then tuple id, keeping runs deterministic); every pair of a left and a
    right tuple at distance < ``window`` in the sorted order is a
    candidate.

    >>> # window=1 yields no pairs: no two elements share a window
    """
    if window < 2:
        return []
    merged: List[Tuple[object, int, int]] = []
    for row in left:
        merged.append((left_key(row), _LEFT, row.tid))
    for row in right:
        merged.append((right_key(row), _RIGHT, row.tid))
    merged.sort(key=lambda item: (item[0], item[1], item[2]))

    candidates: Set[Pair] = set()
    for position, (_, side, tid) in enumerate(merged):
        upper = min(len(merged), position + window)
        for other_position in range(position + 1, upper):
            _, other_side, other_tid = merged[other_position]
            if side == other_side:
                continue
            if side == _LEFT:
                candidates.add((tid, other_tid))
            else:
                candidates.add((other_tid, tid))
    return sorted(candidates)


class RCKIndex:
    """One inverted index: RCK blocking key → posting lists per side.

    >>> from repro.core.schema import RelationSchema
    >>> from repro.relations.relation import Relation
    >>> schema = RelationSchema("R", ["LN", "zip"])
    >>> index = RCKIndex("ln", [("LN", "LN")])
    >>> relation = Relation(schema)
    >>> tid = relation.insert({"LN": "Clifford", "zip": "07974"})
    >>> index.add(LEFT, relation[tid])
    ('C416',)
    >>> other = relation.insert({"LN": "Clivord", "zip": "07974"})
    >>> index.probe(1, relation[other])  # right-side probe hits the left row
    [0]
    """

    def __init__(
        self,
        name: str,
        pairs: Sequence[Tuple[str, str]],
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> None:
        if not pairs:
            raise ValueError("an index needs at least one attribute pair")
        self.name = name
        self.pairs: Tuple[Tuple[str, str], ...] = tuple(pairs)
        encode = set(encode_attributes)
        left_attrs = [left for left, _ in self.pairs]
        right_attrs = [right for _, right in self.pairs]
        self.left_key: RowKey = attribute_key(
            left_attrs,
            [soundex if attr in encode else None for attr in left_attrs],
        )
        self.right_key: RowKey = attribute_key(
            right_attrs,
            [soundex if attr in encode else None for attr in right_attrs],
        )
        self._buckets: Dict[Hashable, Tuple[List[int], List[int]]] = {}

    def key_for(self, side: int, row: Row) -> Hashable:
        """The derived blocking key of ``row`` on the given side."""
        return self.left_key(row) if side == LEFT else self.right_key(row)

    def add(self, side: int, row: Row) -> Hashable:
        """Index ``row``; returns the bucket key it landed in."""
        key = self.key_for(side, row)
        bucket = self._buckets.setdefault(key, ([], []))
        bucket[0 if side == LEFT else 1].append(row.tid)
        return key

    def probe(self, side: int, row: Row) -> List[int]:
        """Tuple ids of the *other* side sharing ``row``'s bucket."""
        bucket = self._buckets.get(self.key_for(side, row))
        if bucket is None:
            return []
        return list(bucket[1 if side == LEFT else 0])

    def __len__(self) -> int:
        return len(self._buckets)

    def largest_bucket(self) -> int:
        """Size of the fullest bucket (both sides counted)."""
        if not self._buckets:
            return 0
        return max(len(lefts) + len(rights) for lefts, rights in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RCKIndex({self.name!r}, {len(self)} buckets)"


def indexes_from_rcks(
    rcks: Sequence[RelativeKey],
    key_length: int = 1,
    encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
) -> List[RCKIndex]:
    """One inverted index per RCK, deduplicated by key specification.

    Each index takes the leading ``key_length`` attribute pairs of its RCK
    (short keys favour recall: a duplicate only needs to agree on one
    leading pair of *some* RCK to be probed).  RCKs whose leading pairs
    coincide share one index.
    """
    if not rcks:
        raise ValueError("need at least one RCK")
    if key_length < 1:
        raise ValueError(f"key_length must be >= 1, got {key_length}")
    indexes: List[RCKIndex] = []
    seen: set = set()
    for position, key in enumerate(rcks):
        pairs = key.attribute_pairs()[:key_length]
        if pairs in seen:
            continue
        seen.add(pairs)
        name = f"rck{position}:" + "+".join(left for left, _ in pairs)
        indexes.append(RCKIndex(name, pairs, encode_attributes))
    return indexes


class BlockingBackend:
    """Protocol for a plan's candidate-pair generator.

    Implementations provide ``name`` plus :meth:`candidates` (batch) and
    :meth:`describe` (for ``repro plan explain``).  Backends that also
    support incremental maintenance additionally expose ``add``/``probe``
    (see :class:`HashBlockingBackend`).
    """

    name: str = "none"

    #: Candidate-generation semantics this backend implements; stores
    #: compare it against the spec's declared ``blocking.backend``.
    family: str = "none"

    def candidates(self, left: Relation, right: Relation) -> List[Pair]:
        """All candidate pairs for a batch instance pair."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description of the backend configuration."""
        raise NotImplementedError


class HashBlockingBackend(BlockingBackend):
    """Multi-pass hash blocking over per-RCK inverted indexes.

    The same index structures serve two access patterns:

    * **batch** — :meth:`candidates` unions, over every index, the
      cross-relation pairs sharing a bucket (the classic multi-pass
      blocking of Section 1);
    * **streaming** — :meth:`add` maintains the postings on every ingest
      and :meth:`probe` returns a record's candidate neighborhood, which
      is exactly the pair set a batch run over the same keys would have
      generated for it.
    """

    name = "hash"
    family = "hash"

    def __init__(self, indexes: Sequence[RCKIndex]) -> None:
        if not indexes:
            raise ValueError("hash blocking needs at least one index")
        self.indexes: List[RCKIndex] = list(indexes)

    @classmethod
    def per_rck(
        cls,
        rcks: Sequence[RelativeKey],
        key_length: int = 1,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> "HashBlockingBackend":
        """One index per RCK's leading ``key_length`` attribute pairs."""
        return cls(indexes_from_rcks(rcks, key_length, encode_attributes))

    # -- batch ---------------------------------------------------------

    def candidates(self, left: Relation, right: Relation) -> List[Pair]:
        """Union of hash-blocking candidates over every index's keys.

        Runs on transient bucket tables — the incremental postings of a
        live store are never touched or rebuilt.
        """
        seen: Set[Pair] = set()
        for index in self.indexes:
            seen.update(
                hash_candidates(left, right, index.left_key, index.right_key)
            )
        return sorted(seen)

    # -- streaming -----------------------------------------------------

    def add(self, side: int, row: Row) -> None:
        """Index one arriving record in every pass."""
        for index in self.indexes:
            index.add(side, row)

    def probe(self, side: int, row: Row) -> List[int]:
        """Other-side tuple ids sharing at least one bucket with ``row``."""
        seen: Set[int] = set()
        for index in self.indexes:
            seen.update(index.probe(side, row))
        return sorted(seen)

    def index_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-index bucket stats, keyed by index name."""
        return {
            index.name: {
                "buckets": len(index),
                "largest_bucket": index.largest_bucket(),
            }
            for index in self.indexes
        }

    def describe(self) -> str:
        keys = ", ".join(
            "+".join(f"{left}~{right}" for left, right in index.pairs)
            for index in self.indexes
        )
        return f"hash({len(self.indexes)} passes: {keys})"


class SortedNeighborhoodBackend(BlockingBackend):
    """Multi-pass sorted-neighborhood windowing over derived sort keys.

    A window below 2 is legal and yields no candidates — no two elements
    ever share a window — matching the historical ``window_pairs``
    behavior matchers rely on.
    """

    name = "sorted-neighborhood"
    family = "sorted-neighborhood"

    def __init__(
        self,
        keys: Sequence[Tuple[RowKey, RowKey]],
        window: int = 10,
        description: str = "",
    ) -> None:
        if not keys:
            raise ValueError("windowing needs at least one sort key pair")
        self.keys: List[Tuple[RowKey, RowKey]] = list(keys)
        self.window = window
        self._description = description

    @classmethod
    def from_rcks(
        cls,
        rcks: Sequence[RelativeKey],
        window: int = 10,
        attribute_count: int = 3,
    ) -> "SortedNeighborhoodBackend":
        """One sort pass on the leading attributes of the given RCKs."""
        if not rcks:
            raise ValueError("need at least one RCK")
        chosen = leading_attribute_pairs(rcks, attribute_count)
        left_key = attribute_key([left for left, _ in chosen])
        right_key = attribute_key([right for _, right in chosen])
        description = "+".join(f"{left}~{right}" for left, right in chosen)
        return cls([(left_key, right_key)], window, description)

    def candidates(self, left: Relation, right: Relation) -> List[Pair]:
        """Union of window candidates over every sort pass."""
        seen: Set[Pair] = set()
        for left_key, right_key in self.keys:
            seen.update(
                window_candidates(left, right, left_key, right_key, self.window)
            )
        return sorted(seen)

    def describe(self) -> str:
        detail = f" on {self._description}" if self._description else ""
        return (
            f"sorted-neighborhood(window={self.window}, "
            f"{len(self.keys)} pass(es){detail})"
        )

"""The enforcement chase, executed over a compiled plan.

This is the one and only chase loop in the codebase.  It is the former
:func:`repro.core.semantics.enforce` body, re-targeted from
``(MD, registry)`` lookups to the compiled rules of an
:class:`~repro.plan.compile.EnforcementPlan`: every LHS conjunct is a
pre-resolved predicate evaluated through the plan's similarity cache, so
repeated chase rounds (and rules sharing atoms) never recompute a metric
on the same value pair.

``repro.core.semantics.enforce`` compiles a throwaway plan and delegates
here; the batch :class:`~repro.matching.pipeline.EnforcementMatcher` and
the streaming :class:`~repro.engine.matcher.IncrementalMatcher` hold a
long-lived plan and call :meth:`EnforcementPlan.enforce`, sharing the
cache across runs and ingests.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.semantics import (
    Cell,
    EnforcementResult,
    InstancePair,
    ValueResolver,
    _CellUnionFind,
    _cell_value,
    prefer_informative,
)
from repro.core.schema import LEFT, RIGHT


def chase(
    plan,
    instance: InstancePair,
    resolver: ValueResolver = prefer_informative,
    candidate_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    max_rounds: int = 100,
) -> EnforcementResult:
    """Chase ``instance`` with the plan's compiled rules to a stable extension.

    Each round scans the candidate tuple pairs; whenever a pair matches a
    rule's LHS in the *current* instance, the RHS cells are merged and every
    merged class is re-resolved to a single value.  Rounds repeat until no
    merge happens.  The original ``instance`` is never mutated (the paper:
    "in the matching process instance D may not be updated").

    Two kernel refinements over the naive loop, neither observable in the
    result: rounds after the first only re-scan pairs at least one of
    whose tuples a consensus repair actually changed (an unchanged pair's
    LHS verdict cannot change and its RHS cells are already merged), and
    the final stability check evaluates each rule's LHS once through the
    compiled predicates instead of twice per (pair, rule) through the
    registry.

    ``candidate_pairs`` bounds the quadratic pair scan; matchers pass the
    output of the plan's blocking backend here.
    """
    working = instance.copy()
    cells = _CellUnionFind()
    pairs: List[Tuple[int, int]] = (
        list(candidate_pairs)
        if candidate_pairs is not None
        else list(instance.tuple_pairs())
    )
    stats = plan.stats
    stats.enforcements += 1
    stats.pairs_compared += len(pairs)
    tracer = plan.tracer
    chase_start = time.perf_counter()

    chase_span = tracer.span(
        "chase", pairs=len(pairs), rules=len(plan.rules), max_rounds=max_rounds
    )
    chase_span.__enter__()
    applications = 0
    rounds = 0
    shared = working.left is working.right
    active = pairs
    merged_this_round = False
    while rounds < max_rounds:
        rounds += 1
        merged_this_round = False
        round_span = tracer.span("chase-round", round=rounds, active=len(active))
        round_span.__enter__()
        before = applications
        for left_tid, right_tid in active:
            t1 = working.left[left_tid]
            t2 = working.right[right_tid]
            for rule in plan.rules:
                if not plan.lhs_matches(rule, t1, t2):
                    continue
                for left_attr, right_attr in rule.rhs:
                    left_cell: Cell = (LEFT, left_tid, left_attr)
                    right_cell: Cell = (RIGHT, right_tid, right_attr)
                    if cells.union(left_cell, right_cell):
                        merged_this_round = True
                        applications += 1
        round_span.set("merges", applications - before)
        if not merged_this_round:
            round_span.__exit__(None, None, None)
            break
        # Re-resolve every merged class to one value, tracking which
        # tuples a write actually changed — only their pairs can behave
        # differently next round.
        changed: Set[Tuple[int, int]] = set()
        with tracer.span("resolve-merged") as resolve_span:
            seen_roots: Set[Cell] = set()
            repairs = 0
            for left_tid, right_tid in pairs:
                for side, tid in ((LEFT, left_tid), (RIGHT, right_tid)):
                    relation = working.left if side == LEFT else working.right
                    for attribute in relation.schema.attribute_names:
                        cell: Cell = (side, tid, attribute)
                        root = cells.find(cell)
                        if root in seen_roots:
                            continue
                        seen_roots.add(root)
                        members = cells.members(cell)
                        if len(members) == 1:
                            continue
                        # Feed the resolver a *sorted* member order: members()
                        # returns a set, and set iteration order depends on
                        # the process hash seed — an order-dependent policy
                        # (first-non-null) would otherwise resolve differently
                        # in spawn workers than in the serial parent.
                        values = [
                            _cell_value(working, member, shared)
                            for member in sorted(members)
                        ]
                        resolved = resolver(values)
                        for member in members:
                            member_side, member_tid, member_attr = member
                            member_relation = (
                                working.left if member_side == LEFT else working.right
                            )
                            if member_relation[member_tid][member_attr] != resolved:
                                member_relation.set_value(
                                    member_tid, member_attr, resolved
                                )
                                repairs += 1
                                changed.add((member_side, member_tid))
                                if shared:
                                    # One storage serves both sides: a write
                                    # through either tag dirties the tuple's
                                    # pairs on both.
                                    changed.add(
                                        (LEFT + RIGHT - member_side, member_tid)
                                    )
            resolve_span.set("repairs", repairs)
        active = [
            (left_tid, right_tid)
            for left_tid, right_tid in pairs
            if (LEFT, left_tid) in changed or (RIGHT, right_tid) in changed
        ]
        round_span.__exit__(None, None, None)

    # Stability: (D', D') ⊨ Σ — for every pair matching a rule's LHS in
    # D', the RHS cells must carry equal values.  (With original and
    # extended both D', the "LHS still matches" recheck is the same
    # evaluation, so one pass through the compiled predicates suffices.)
    stable = True
    unstable_rule = None
    with tracer.span("stability-check"):
        for left_tid, right_tid in pairs:
            t1 = working.left[left_tid]
            t2 = working.right[right_tid]
            for rule in plan.rules:
                if not plan.lhs_matches(rule, t1, t2):
                    continue
                for left_attr, right_attr in rule.rhs:
                    if t1[left_attr] != t2[right_attr]:
                        stable = False
                        unstable_rule = rule.name
                        break
                if not stable:
                    break
            if not stable:
                break
    # Exhaustion: the round budget ran out AND the result is not a
    # fixpoint — the last permitted round still merged, or no round was
    # permitted at all.  A chase whose last permitted round merged but
    # left a stable instance did converge — further rounds could only
    # merge cells that already carry equal values, never rewrite one —
    # so only instability makes the cut-off observable.
    rounds_exhausted = (merged_this_round or rounds == 0) and not stable
    stats.chase_rounds += rounds
    stats.rule_applications += applications
    chase_span.set("rounds", rounds)
    chase_span.set("applications", applications)
    chase_span.set("stable", stable)
    if rounds_exhausted:
        stats.rounds_exhausted += 1
        # Record what triggered the cut-off: the rule whose RHS was
        # still unequal at the budget, and the full rule set in play.
        chase_span.set("rounds_exhausted", True)
        chase_span.set("unstable_rule", unstable_rule)
        chase_span.set("rule_set", [rule.name for rule in plan.rules])
    chase_span.__exit__(None, None, None)
    plan.metrics.observe("chase.rounds", rounds)
    plan.metrics.observe("chase.seconds", time.perf_counter() - chase_start)
    return EnforcementResult(
        working, stable, rounds, cells, applications, rounds_exhausted
    )

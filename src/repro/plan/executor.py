"""The enforcement chase, executed over a compiled plan.

Two executions of one semantics live here: :func:`chase`, the pairwise
loop (the former :func:`repro.core.semantics.enforce` body re-targeted to
compiled rules), and :func:`chase_factorised`, the default since the
factorised kernel landed — it chases distinct value-pair groups
(:mod:`repro.plan.factorise`) and expands to record pairs only when a
group's LHS verdict fires.  Every LHS conjunct is a pre-resolved
predicate evaluated through the plan's similarity cache, so repeated
chase rounds (and rules sharing atoms) never recompute a metric on the
same value pair; the factorised path additionally computes each rule
verdict once per distinct signature instead of once per pair.  Both
produce identical :class:`~repro.core.semantics.EnforcementResult`
contents (the differential suite pins it).

``repro.core.semantics.enforce`` compiles a throwaway plan and delegates
here; the batch :class:`~repro.matching.pipeline.EnforcementMatcher` and
the streaming :class:`~repro.engine.matcher.IncrementalMatcher` hold a
long-lived plan and call :meth:`EnforcementPlan.enforce`, sharing the
cache across runs and ingests.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.semantics import (
    Cell,
    EnforcementResult,
    InstancePair,
    ValueResolver,
    _CellUnionFind,
    _cell_value,
    prefer_informative,
)
from repro.core.schema import LEFT, RIGHT

from .factorise import PairGroupIndex


def _resolve_touched(
    working: InstancePair,
    cells: _CellUnionFind,
    touched: Sequence[Cell],
    resolver: ValueResolver,
    shared: bool,
    tracer,
) -> Set[Tuple[int, int]]:
    """Re-resolve every class that gained a member this round.

    ``touched`` holds one anchor cell per successful union of the round;
    resolving only their classes is equivalent to the former full
    pair × side × attribute rescan: a class whose membership did not
    change already carries the one value the previous round's resolution
    wrote everywhere, so re-resolving it is a no-op for any resolver that
    is a function of the member value multiset (all named policies are).

    Returns the ``(side, tid)`` tuples a write actually changed — only
    their pairs can behave differently next round.
    """
    changed: Set[Tuple[int, int]] = set()
    with tracer.span("resolve-merged") as resolve_span:
        seen_roots: Set[Cell] = set()
        repairs = 0
        for anchor in touched:
            root = cells.find(anchor)
            if root in seen_roots:
                continue
            seen_roots.add(root)
            members = cells.members(anchor)
            # Feed the resolver a *sorted* member order: members()
            # returns a set, and set iteration order depends on the
            # process hash seed — an order-dependent policy
            # (first-non-null) would otherwise resolve differently in
            # spawn workers than in the serial parent.
            values = [
                _cell_value(working, member, shared)
                for member in sorted(members)
            ]
            resolved = resolver(values)
            for member in members:
                member_side, member_tid, member_attr = member
                member_relation = (
                    working.left if member_side == LEFT else working.right
                )
                if member_relation[member_tid][member_attr] != resolved:
                    member_relation.set_value(member_tid, member_attr, resolved)
                    repairs += 1
                    changed.add((member_side, member_tid))
                    if shared:
                        # One storage serves both sides: a write through
                        # either tag dirties the tuple's pairs on both.
                        changed.add((LEFT + RIGHT - member_side, member_tid))
        resolve_span.set("repairs", repairs)
    return changed


def chase(
    plan,
    instance: InstancePair,
    resolver: ValueResolver = prefer_informative,
    candidate_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    max_rounds: int = 100,
) -> EnforcementResult:
    """Chase ``instance`` with the plan's compiled rules to a stable extension.

    Each round scans the candidate tuple pairs; whenever a pair matches a
    rule's LHS in the *current* instance, the RHS cells are merged and every
    merged class is re-resolved to a single value.  Rounds repeat until no
    merge happens.  The original ``instance`` is never mutated (the paper:
    "in the matching process instance D may not be updated").

    Three kernel refinements over the naive loop, none observable in the
    result: rounds after the first only re-scan pairs at least one of
    whose tuples a consensus repair actually changed (an unchanged pair's
    LHS verdict cannot change and its RHS cells are already merged); the
    resolve-merged step visits only classes that gained a member this
    round (:func:`_resolve_touched`) instead of rescanning every
    pair × side × attribute; and the final stability check evaluates each
    rule's LHS once through the compiled predicates instead of twice per
    (pair, rule) through the registry.

    ``candidate_pairs`` bounds the quadratic pair scan; matchers pass the
    output of the plan's blocking backend here.
    """
    working = instance.copy()
    cells = _CellUnionFind()
    pairs: List[Tuple[int, int]] = (
        list(candidate_pairs)
        if candidate_pairs is not None
        else list(instance.tuple_pairs())
    )
    stats = plan.stats
    stats.enforcements += 1
    stats.pairs_compared += len(pairs)
    tracer = plan.tracer
    chase_start = time.perf_counter()

    chase_span = tracer.span(
        "chase", pairs=len(pairs), rules=len(plan.rules), max_rounds=max_rounds
    )
    chase_span.__enter__()
    applications = 0
    rounds = 0
    shared = working.left is working.right
    active = pairs
    merged_this_round = False
    while rounds < max_rounds:
        rounds += 1
        merged_this_round = False
        round_span = tracer.span("chase-round", round=rounds, active=len(active))
        round_span.__enter__()
        before = applications
        touched: List[Cell] = []
        for left_tid, right_tid in active:
            t1 = working.left[left_tid]
            t2 = working.right[right_tid]
            for rule in plan.rules:
                if not plan.lhs_matches(rule, t1, t2):
                    continue
                for left_attr, right_attr in rule.rhs:
                    left_cell: Cell = (LEFT, left_tid, left_attr)
                    right_cell: Cell = (RIGHT, right_tid, right_attr)
                    if cells.union(left_cell, right_cell):
                        merged_this_round = True
                        applications += 1
                        touched.append(left_cell)
        round_span.set("merges", applications - before)
        if not merged_this_round:
            round_span.__exit__(None, None, None)
            break
        # Re-resolve every class that gained a member to one value —
        # only the cells actually unioned this round, not a full
        # pair × side × attribute rescan.
        changed = _resolve_touched(
            working, cells, touched, resolver, shared, tracer
        )
        active = [
            (left_tid, right_tid)
            for left_tid, right_tid in pairs
            if (LEFT, left_tid) in changed or (RIGHT, right_tid) in changed
        ]
        round_span.__exit__(None, None, None)

    # Stability: (D', D') ⊨ Σ — for every pair matching a rule's LHS in
    # D', the RHS cells must carry equal values.  (With original and
    # extended both D', the "LHS still matches" recheck is the same
    # evaluation, so one pass through the compiled predicates suffices.)
    stable = True
    unstable_rule = None
    with tracer.span("stability-check"):
        for left_tid, right_tid in pairs:
            t1 = working.left[left_tid]
            t2 = working.right[right_tid]
            for rule in plan.rules:
                if not plan.lhs_matches(rule, t1, t2):
                    continue
                for left_attr, right_attr in rule.rhs:
                    if t1[left_attr] != t2[right_attr]:
                        stable = False
                        unstable_rule = rule.name
                        break
                if not stable:
                    break
            if not stable:
                break
    # Exhaustion: the round budget ran out AND the result is not a
    # fixpoint — the last permitted round still merged, or no round was
    # permitted at all.  A chase whose last permitted round merged but
    # left a stable instance did converge — further rounds could only
    # merge cells that already carry equal values, never rewrite one —
    # so only instability makes the cut-off observable.
    rounds_exhausted = (merged_this_round or rounds == 0) and not stable
    stats.chase_rounds += rounds
    stats.rule_applications += applications
    chase_span.set("rounds", rounds)
    chase_span.set("applications", applications)
    chase_span.set("stable", stable)
    if rounds_exhausted:
        stats.rounds_exhausted += 1
        # Record what triggered the cut-off: the rule whose RHS was
        # still unequal at the budget, and the full rule set in play.
        chase_span.set("rounds_exhausted", True)
        chase_span.set("unstable_rule", unstable_rule)
        chase_span.set("rule_set", [rule.name for rule in plan.rules])
    chase_span.__exit__(None, None, None)
    plan.metrics.observe("chase.rounds", rounds)
    plan.metrics.observe("chase.seconds", time.perf_counter() - chase_start)
    return EnforcementResult(
        working, stable, rounds, cells, applications, rounds_exhausted
    )


def chase_factorised(
    plan,
    instance: InstancePair,
    resolver: ValueResolver = prefer_informative,
    candidate_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    max_rounds: int = 100,
) -> EnforcementResult:
    """The factorised twin of :func:`chase` — same result, grouped work.

    Candidate pairs are grouped by their distinct LHS value-pair
    signature (:class:`~repro.plan.factorise.PairGroupIndex`); each round
    computes one verdict per distinct signature
    (:meth:`~repro.plan.compile.EnforcementPlan.group_verdict`) and
    expands a group back to record pairs only when its verdict fires.
    After repairs, only the dirty pairs migrate to their re-computed
    signature groups — the factorisation is maintained incrementally,
    never rebuilt.

    Equivalence with the pairwise loop (the differential suite in
    ``tests/plan/test_factorised_equivalence.py`` pins it): within a
    round the instance is fixed, and a rule's LHS reads exactly the
    signature's value pairs, so the group verdict equals every member
    pair's verdict; the per-round count of *successful* unions is
    order-independent (it equals the drop in the number of cell classes);
    and the dirty sets coincide because repairs are applied to the same
    classes.  Hence rounds, applications, stability, merged classes and
    repaired values are all identical — which is why the
    ``execution.factorised`` spec knob stays out of the fingerprint.
    """
    working = instance.copy()
    cells = _CellUnionFind()
    pairs: List[Tuple[int, int]] = (
        list(candidate_pairs)
        if candidate_pairs is not None
        else list(instance.tuple_pairs())
    )
    stats = plan.stats
    stats.enforcements += 1
    stats.pairs_compared += len(pairs)
    tracer = plan.tracer
    chase_start = time.perf_counter()

    chase_span = tracer.span(
        "chase",
        pairs=len(pairs),
        rules=len(plan.rules),
        max_rounds=max_rounds,
        factorised=True,
    )
    chase_span.__enter__()
    with tracer.span("factorise") as factorise_span:
        index = PairGroupIndex(plan, working, pairs)
        factorise_span.set("groups", index.group_count)
    stats.groups_built += index.group_count
    stats.factorisation_ratio = round(index.ratio, 4)
    chase_span.set("groups", index.group_count)
    chase_span.set("factorisation_ratio", stats.factorisation_ratio)

    applications = 0
    rounds = 0
    shared = working.left is working.right
    active_groups = list(index.groups.values())
    merged_this_round = False
    while rounds < max_rounds:
        rounds += 1
        merged_this_round = False
        round_span = tracer.span(
            "chase-round",
            round=rounds,
            active=sum(len(group) for group in active_groups),
            groups=len(active_groups),
        )
        round_span.__enter__()
        before = applications
        touched: List[Cell] = []
        for group in active_groups:
            verdict = plan.group_verdict(group.signature)
            if not verdict:
                continue
            # Expansion: the verdict holds for every member pair, so the
            # RHS merges apply per record pair.  Pairs that already fired
            # in an earlier round union idempotently (no application
            # counted), exactly as on the pairwise path.
            for rule_index in verdict:
                rule = plan.rules[rule_index]
                for left_tid, right_tid in group.pairs:
                    for left_attr, right_attr in rule.rhs:
                        left_cell: Cell = (LEFT, left_tid, left_attr)
                        right_cell: Cell = (RIGHT, right_tid, right_attr)
                        if cells.union(left_cell, right_cell):
                            merged_this_round = True
                            applications += 1
                            touched.append(left_cell)
        round_span.set("merges", applications - before)
        if not merged_this_round:
            round_span.__exit__(None, None, None)
            break
        changed = _resolve_touched(
            working, cells, touched, resolver, shared, tracer
        )
        dirty = [
            (left_tid, right_tid)
            for left_tid, right_tid in pairs
            if (LEFT, left_tid) in changed or (RIGHT, right_tid) in changed
        ]
        active_groups = index.migrate(working, dirty)
        round_span.__exit__(None, None, None)

    # Stability over the factorisation: the index is current (repairs and
    # migration happen in the same round iteration), so one verdict per
    # group — usually a verdict-cache hit — plus RHS equality per member
    # pair of the firing groups.
    stable = True
    unstable_rule = None
    with tracer.span("stability-check"):
        for group in index.groups.values():
            for rule_index in plan.group_verdict(group.signature):
                rule = plan.rules[rule_index]
                for left_tid, right_tid in group.pairs:
                    t1 = working.left[left_tid]
                    t2 = working.right[right_tid]
                    for left_attr, right_attr in rule.rhs:
                        if t1[left_attr] != t2[right_attr]:
                            stable = False
                            unstable_rule = rule.name
                            break
                    if not stable:
                        break
                if not stable:
                    break
            if not stable:
                break
    rounds_exhausted = (merged_this_round or rounds == 0) and not stable
    stats.chase_rounds += rounds
    stats.rule_applications += applications
    chase_span.set("rounds", rounds)
    chase_span.set("applications", applications)
    chase_span.set("stable", stable)
    if rounds_exhausted:
        stats.rounds_exhausted += 1
        chase_span.set("rounds_exhausted", True)
        chase_span.set("unstable_rule", unstable_rule)
        chase_span.set("rule_set", [rule.name for rule in plan.rules])
    chase_span.__exit__(None, None, None)
    plan.metrics.observe("chase.rounds", rounds)
    plan.metrics.observe("chase.seconds", time.perf_counter() - chase_start)
    return EnforcementResult(
        working, stable, rounds, cells, applications, rounds_exhausted
    )

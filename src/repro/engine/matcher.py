"""Incremental entity resolution: match records as they arrive.

The batch pipelines (:mod:`repro.matching.pipeline`) re-block, re-compare
and re-enforce the full instance on every run.  The
:class:`IncrementalMatcher` instead keeps a warm :class:`~repro.engine.store.MatchStore`
and, for each arriving record:

1. inserts and indexes it (:meth:`~repro.engine.store.MatchStore.add`);
2. probes only the affected index buckets for the candidate neighborhood;
3. runs MD enforcement (:func:`repro.core.semantics.enforce`) on a *local
   sub-instance* containing just the new record and its neighbors — the
   delta — never copying or rescanning the full instance;
4. reads match decisions off the identified target cells, merges identity
   clusters, and re-resolves each grown cluster's target values to the
   member consensus, so later arrivals compare against the cleaned
   records (the dynamic semantics accumulating over the stream).

Per-ingest work is therefore proportional to the record's bucket
neighborhood, which is what makes streaming ingest sublinear in the store
size (asserted by ``tests/engine/test_equivalence.py`` via the store's
comparison counter).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.md import MatchingDependency
from repro.core.schema import LEFT, RIGHT, ComparableLists
from repro.core.semantics import (
    InstancePair,
    ValueResolver,
    prefer_informative,
)
from repro.matching.evaluate import Pair
from repro.plan.blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    SortedNeighborhoodBackend,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.plan.compile import EnforcementPlan, compile_plan
from repro.relations.relation import Relation
from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry

from .store import MatchStore, Node, node_of

_SIDES = {"L": LEFT, "R": RIGHT}


def _side_tid(node: Node) -> Tuple[int, int]:
    tag, tid = node
    return _SIDES[tag], tid


def _normalize_event(event) -> Tuple[int, Dict[str, object], Optional[int]]:
    """A stream event as ``(side, values, tid)``.

    Accepts ``(side, values)`` / ``(side, values, tid)`` tuples or objects
    with ``side``, ``values`` and optionally ``tid`` attributes, such as
    :class:`repro.datagen.streams.StreamEvent`.
    """
    if isinstance(event, tuple):
        if len(event) == 2:
            side, values = event
            return side, dict(values), None
        side, values, tid = event
        return side, dict(values), tid
    return event.side, dict(event.values), getattr(event, "tid", None)


@dataclass(frozen=True)
class IngestResult:
    """Outcome of ingesting one record.

    Attributes
    ----------
    side, tid:
        Where the record landed in the store.
    candidates:
        The delta pairs actually compared (new record × neighborhood).
    matches:
        The subset declared matches by enforcement.
    merged:
        Whether any cluster merge happened (False for re-ingested
        duplicates that were already in the right cluster).
    cascade_truncated:
        True when the repair cascade hit ``max_cascade`` and left some
        repaired records' neighborhoods unexamined (never on clean data).
    """

    side: int
    tid: int
    candidates: Tuple[Pair, ...]
    matches: Tuple[Pair, ...]
    merged: bool
    cascade_truncated: bool = False


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of warm-starting a store from batch relations."""

    left_rows: int
    right_rows: int
    candidates: int
    matches: int


@dataclass
class _MergeOutcome:
    """What one record's merge phase (the cascade loop) did to the store."""

    pairs: List[Pair]
    matches: List[Pair]
    merged: bool
    rounds: int
    truncated: bool
    #: ``(side, tid)`` records whose *current values* changed (consensus
    #: repairs) — the dynamic dirt frontier
    #: :meth:`IncrementalMatcher.ingest_batch` uses to decide which later
    #: batch records may skip their chase.  Merges that repair nothing
    #: are deliberately not dirt: a chase reads values, never cluster
    #: membership, so they cannot change a later record's verdict.
    touched: Set[Tuple[int, int]]


class IncrementalMatcher:
    """Streaming counterpart of :class:`~repro.matching.pipeline.EnforcementMatcher`.

    Matching decisions use the same machinery as the batch matcher — RCK
    deduction for candidate generation and the enforcement chase for
    decisions — so a stream ingested record-by-record converges to the
    clusters the batch matcher finds on the same data with the same
    candidate keys.

    >>> # matcher = IncrementalMatcher(sigma, target, top_k=5)
    >>> # matcher.ingest(RIGHT, {"FN": "Mark", ...})
    """

    def __init__(
        self,
        sigma: Sequence[MatchingDependency] = (),
        target: Optional[ComparableLists] = None,
        top_k: int = 5,
        registry: MetricRegistry = DEFAULT_REGISTRY,
        resolver: ValueResolver = prefer_informative,
        store: Optional[MatchStore] = None,
        key_length: int = 1,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
        blocking_backend: str = "hash",
        window: int = 10,
        key_pairs=None,
        max_cascade: int = 256,
        plan: Optional[EnforcementPlan] = None,
        factorised: bool = True,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if plan is None:
            # The raw-MD constructor predates the spec-driven API; the
            # plan-sharing form (what Workspace.stream builds) stays.
            warnings.warn(
                "constructing IncrementalMatcher from raw MDs is "
                "deprecated; build a repro.api.Workspace and call "
                "Workspace.stream()",
                DeprecationWarning,
                stacklevel=2,
            )
            if not sigma:
                raise ValueError("need at least one MD")
            if target is None:
                raise ValueError("need a match target")
            # A restored store already carries its deduced RCKs; compile
            # the plan over them so probing and matching stay consistent.
            plan = compile_plan(
                sigma,
                target,
                rcks=store.rcks if store is not None else None,
                top_k=top_k,
                registry=registry,
            )
        elif not plan.sigma or plan.target is None:
            raise ValueError("the given plan was compiled without MDs or target")
        self.plan = plan
        self.sigma = list(plan.sigma)
        self.target = plan.target
        self.registry = plan.registry
        self.resolver = resolver
        self.max_cascade = max_cascade
        #: Chase each delta factorised (repro.plan.factorise).  The group
        #: verdict cache lives on the shared plan, so a stream of
        #: near-duplicates keeps reusing verdicts across ingests — the
        #: incremental counterpart of the similarity memo.
        self.factorised = factorised
        if store is None:
            store = MatchStore(
                self.target,
                plan.rcks,
                key_length,
                encode_attributes,
                blocking_backend=blocking_backend,
                window=window,
                key_pairs=key_pairs,
            )
        elif store.target != self.target:
            raise ValueError("store was built for a different target")
        self.store = store
        #: Whether the store streams under sorted-neighborhood semantics
        #: (drives the engine.sn_* observability signals).
        self._sn_blocking = (
            getattr(store.blocking, "family", "hash") == "sorted-neighborhood"
        )
        self._target_pairs = self.target.attribute_pairs()
        # Observability: default to the plan's tracer/registry (a
        # Workspace hands its own to the plan), or explicit overrides.
        self.tracer = tracer if tracer is not None else getattr(
            plan, "tracer", NULL_TRACER
        )
        self.metrics = metrics if metrics is not None else getattr(
            plan, "metrics", None
        ) or MetricsRegistry()
        if tracer is not None:
            # A standalone tracer must also see the delta-chase spans the
            # plan's executor emits.
            plan.tracer = tracer
        if metrics is not None:
            plan.metrics = metrics

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------

    def ingest(
        self, side: int, values: Dict[str, object], tid: Optional[int] = None
    ) -> IngestResult:
        """Ingest one record: index, probe, enforce on the delta, merge.

        When a merge changes a cluster's consensus values (see
        :meth:`_resolve_cluster`), every repaired record's neighborhood is
        re-enforced — the streaming counterpart of the batch chase
        re-scanning its candidate pairs after a round of updates.  The
        cascade stops immediately when no merge repairs anything (the
        common, clean-data case); ``max_cascade`` bounds the number of
        record re-enforcements per ingest as a safety valve, and hitting
        it is reported via :attr:`IngestResult.cascade_truncated`.
        """
        store = self.store
        started = time.perf_counter()
        with self.tracer.span("ingest", side=side) as span:
            tid = store.add(side, values, tid=tid)
            outcome = self._merge_phase(side, tid)
            span.set("tid", tid)
            span.set("candidates", len(outcome.pairs))
            span.set("matches", len(outcome.matches))
            span.set("cascade", outcome.rounds)
        metrics = self.metrics
        metrics.observe("engine.ingest_seconds", time.perf_counter() - started)
        metrics.count("engine.ingests")
        if outcome.merged:
            metrics.count("engine.merges")
        self._gauge_store()
        # One ingest = one durable transaction (no-op for memory stores).
        store.commit()
        return IngestResult(
            side,
            tid,
            tuple(outcome.pairs),
            tuple(outcome.matches),
            outcome.merged,
            cascade_truncated=outcome.truncated,
        )

    def _merge_phase(
        self,
        side: int,
        tid: int,
        first_pairs: Optional[Sequence[Pair]] = None,
        exclude: FrozenSet[Tuple[int, int]] = frozenset(),
    ) -> _MergeOutcome:
        """One record's cascade loop: probe, chase, merge, repair, repeat.

        ``first_pairs`` supplies the record's round-1 candidate pairs when
        the caller already probed (and charged) them —
        :meth:`ingest_batch` computes them at add time so they reflect the
        store as of the record's arrival.  ``exclude`` removes not-yet
        ingested batch records from cascade re-probes, keeping every
        neighborhood identical to what a record-at-a-time ingest would
        have seen (exact for hash blocking, whose buckets are unordered
        sets; sorted-neighborhood never takes this path).
        """
        store = self.store
        all_pairs: List[Pair] = []
        all_matches: List[Pair] = []
        merged = False
        affected: Set[Tuple[int, int]] = set()
        queue: List[Tuple[int, int]] = [(side, tid)]
        queued = {(side, tid)}
        rounds = 0
        while queue and rounds < self.max_cascade:
            rounds += 1
            round_side, round_tid = queue.pop(0)
            queued.discard((round_side, round_tid))
            if first_pairs is not None:
                # Already probed and charged by the caller, at the store
                # state of the record's arrival.
                pairs: List[Pair] = list(first_pairs)
                first_pairs = None
            else:
                # Probe with arrival values: the buckets were keyed on them.
                row = store.arrival_row(round_side, round_tid)
                other_tids = store.neighbors(round_side, row)
                if self._sn_blocking:
                    self.metrics.count("engine.sn_probes")
                other_side = RIGHT if round_side == LEFT else LEFT
                if exclude:
                    other_tids = [
                        other
                        for other in other_tids
                        if (other_side, other) not in exclude
                    ]
                if round_side == LEFT:
                    pairs = [(round_tid, other) for other in other_tids]
                else:
                    pairs = [(other, round_tid) for other in other_tids]
                store.comparisons += len(pairs)
            if not pairs:
                continue
            all_pairs.extend(pairs)
            touched: List[Node] = []
            for match in self._match_pairs(pairs):
                if match not in all_matches:
                    all_matches.append(match)
                left_tid, right_tid = match
                left_node = node_of(LEFT, left_tid)
                if store.union(left_node, node_of(RIGHT, right_tid)):
                    merged = True
                    touched.append(left_node)
            for root in {store.find(node) for node in touched}:
                for changed_record in self._resolve_cluster(root):
                    affected.add(changed_record)
                    if changed_record not in queued:
                        queue.append(changed_record)
                        queued.add(changed_record)
        return _MergeOutcome(
            pairs=all_pairs,
            matches=all_matches,
            merged=merged,
            rounds=rounds,
            truncated=bool(queue),
            touched=affected,
        )

    def _gauge_store(self) -> None:
        """Store growth as gauges: index/cluster size over the stream."""
        store = self.store
        metrics = self.metrics
        metrics.gauge("engine.left_rows", len(store.left))
        metrics.gauge("engine.right_rows", len(store.right))
        if self._sn_blocking:
            # Live block-run count: how far the window chain is split.
            metrics.gauge(
                "engine.sn_blocks",
                sum(
                    entry["buckets"]
                    for entry in store.blocking.index_stats().values()
                ),
            )

    def ingest_stream(self, events: Iterable) -> List[IngestResult]:
        """Ingest a sequence of events in arrival order.

        Events are ``(side, values)`` tuples or objects with ``side``,
        ``values`` and (optionally) ``tid`` attributes, such as
        :class:`repro.datagen.streams.StreamEvent`.
        """
        results: List[IngestResult] = []
        for event in events:
            side, values, tid = _normalize_event(event)
            results.append(self.ingest(side, values, tid=tid))
        return results

    def ingest_batch(self, events: Iterable) -> List[IngestResult]:
        """Ingest a micro-batch of events with one pooled screening chase.

        Semantically this is exactly :meth:`ingest` applied to the events
        in order — same final store state, same per-event results, same
        ``comparisons``/``merges`` counters, pinned by the batch-boundary
        invariance property test (``tests/serve/test_batch_invariance.py``)
        and the service differential suite — but the work is amortized:

        1. every record is added and its arrival neighborhood probed (and
           charged) as it would have been record-at-a-time;
        2. **one** pooled chase screens the union of all delta pairs;
        3. only records with skin in the game — one of their *own* pairs
           matched in the screen, or one of their involved records had
           its values moved by a chase repair (before or during the
           batch) — replay the exact per-record merge phase.

        A record with no own-pair match and no moved neighbor is sound
        to skip without its own chase: with every involved value
        unchanged, the chase is purely monotone cell identification, so
        the pooled screen's verdict over the superset of pairs subsumes
        what the record's own delta chase could have found — and with no
        match among its own pairs there is no merge to apply.

        Sorted-neighborhood stores fall back to plain sequential ingest
        (ranks shift with every insertion, so a batch added up front
        cannot reproduce record-at-a-time windows); they still amortize
        the durable commit.  One ``commit()`` covers the whole batch, so
        a crash re-presents the batch as a unit instead of splitting it.
        """
        normalized = [_normalize_event(event) for event in events]
        if not normalized:
            return []
        store = self.store
        metrics = self.metrics
        started = time.perf_counter()
        if self._sn_blocking or len(normalized) == 1:
            results = []
            for side, values, tid in normalized:
                results.append(self.ingest(side, values, tid=tid))
            metrics.count("engine.batches")
            metrics.observe("engine.batch_size", len(results))
            metrics.observe(
                "engine.batch_seconds", time.perf_counter() - started
            )
            return results
        with self.tracer.span("ingest_batch", size=len(normalized)) as span:
            # Phase 1: add every record and capture its arrival-time
            # neighborhood — the store grows between probes exactly as it
            # would record-at-a-time, so each pair set (and its
            # comparisons charge) is what sequential ingest computes.
            pending: List[Tuple[int, int, List[Pair]]] = []
            for side, values, tid in normalized:
                tid = store.add(side, values, tid=tid)
                row = store.arrival_row(side, tid)
                other_tids = store.neighbors(side, row)
                if side == LEFT:
                    pairs: List[Pair] = [(tid, other) for other in other_tids]
                else:
                    pairs = [(other, tid) for other in other_tids]
                store.comparisons += len(pairs)
                pending.append((side, tid, pairs))
            # Phase 2: one pooled chase over the whole batch delta.
            union: List[Pair] = []
            seen: Set[Pair] = set()
            for _, _, pairs in pending:
                for pair in pairs:
                    if pair not in seen:
                        seen.add(pair)
                        union.append(pair)
            screen_matches: Set[Pair] = set()
            dirty: Set[Tuple[int, int]] = set()
            if union:
                matched_pairs, dirty = self._screen_pairs(union)
                screen_matches = set(matched_pairs)
            # Phase 3: replay the exact merge phase for records adjacent
            # to dirt; skip the rest.  ``later`` shrinks as the batch is
            # walked so cascade re-probes never see a record that had not
            # arrived yet.
            later: Set[Tuple[int, int]] = {
                (side, tid) for side, tid, _ in pending
            }
            results = []
            merges = 0
            chased = 0
            for side, tid, pairs in pending:
                later.discard((side, tid))
                involved = {(side, tid)}
                for left_tid, right_tid in pairs:
                    involved.add((LEFT, left_tid))
                    involved.add((RIGHT, right_tid))
                replay = pairs and (
                    any(pair in screen_matches for pair in pairs)
                    or not involved.isdisjoint(dirty)
                )
                if replay:
                    chased += 1
                    outcome = self._merge_phase(
                        side, tid, first_pairs=pairs, exclude=frozenset(later)
                    )
                    dirty |= outcome.touched
                    result = IngestResult(
                        side,
                        tid,
                        tuple(outcome.pairs),
                        tuple(outcome.matches),
                        outcome.merged,
                        cascade_truncated=outcome.truncated,
                    )
                else:
                    result = IngestResult(side, tid, tuple(pairs), (), False)
                if result.merged:
                    merges += 1
                results.append(result)
            span.set("size", len(results))
            span.set("chased", chased)
            span.set("merged", merges)
        metrics.observe("engine.batch_seconds", time.perf_counter() - started)
        metrics.count("engine.batches")
        metrics.observe("engine.batch_size", len(results))
        metrics.count("engine.ingests", len(results))
        if merges:
            metrics.count("engine.merges", merges)
        self._gauge_store()
        # One micro-batch = one durable transaction.
        store.commit()
        return results

    # ------------------------------------------------------------------
    # Batch warm-start
    # ------------------------------------------------------------------

    def bootstrap(
        self,
        left: Relation,
        right: Relation,
        preserve_tids: bool = True,
        window: Optional[int] = None,
    ) -> BootstrapResult:
        """Warm-start an empty store from existing batch relations.

        Candidate generation runs through the store's hash-blocking
        backend (the same one batch pipelines use), optionally unioned
        with a sorted-neighborhood pass of the given ``window`` — then a
        single enforcement chase matches the candidates and seeds the
        clusters.
        """
        store = self.store
        if len(store.left) or len(store.right):
            raise ValueError("bootstrap requires an empty store")
        for row in left.rows():
            store.add(LEFT, row.values(), tid=row.tid if preserve_tids else None)
        for row in right.rows():
            store.add(RIGHT, row.values(), tid=row.tid if preserve_tids else None)
        pairs = set(store.blocking.candidates(store.left, store.right))
        if window is not None:
            sn = SortedNeighborhoodBackend.from_rcks(store.rcks, window=window)
            pairs.update(sn.candidates(store.left, store.right))
        ordered = sorted(pairs)
        store.comparisons += len(ordered)
        matches = self._match_pairs(ordered) if ordered else []
        touched: List[Node] = []
        for left_tid, right_tid in matches:
            left_node = node_of(LEFT, left_tid)
            if store.union(left_node, node_of(RIGHT, right_tid)):
                touched.append(left_node)
        for root in {store.find(node) for node in touched}:
            self._resolve_cluster(root)
        store.commit()
        return BootstrapResult(
            left_rows=len(store.left),
            right_rows=len(store.right),
            candidates=len(ordered),
            matches=len(matches),
        )

    # ------------------------------------------------------------------
    # Delta enforcement
    # ------------------------------------------------------------------

    def _match_pairs(self, pairs: Sequence[Pair]) -> List[Pair]:
        """Decide the delta pairs by local enforcement; no store side effects.

        Every pair is chased over the involved records' *arrival* values —
        the batch chase evaluates every candidate pair on pristine values
        in its first round, and this keeps that guarantee under streaming
        (a consensus repair can never destroy evidence two records arrived
        with).  When some involved record's current values differ from its
        arrivals (a consensus repaired it), a second chase over the
        current values adds the matches that only repairs enable — the
        streaming analogue of the batch chase's later rounds.
        """
        matches = self._chase(pairs, use_arrival=True)
        store = self.store
        repaired = any(
            store.relation(side)[tid].values() != store.arrival_values(side, tid)
            for side, tids in (
                (LEFT, {left_tid for left_tid, _ in pairs}),
                (RIGHT, {right_tid for _, right_tid in pairs}),
            )
            for tid in tids
        )
        if repaired:
            for match in self._chase(pairs, use_arrival=False):
                if match not in matches:
                    matches.append(match)
        return matches

    def _screen_pairs(
        self, pairs: Sequence[Pair]
    ) -> Tuple[List[Pair], Set[Tuple[int, int]]]:
        """Pooled pre-chase over a batch's delta: matches plus the dirt set.

        Mirrors :meth:`_match_pairs` (arrival chase, plus a current-values
        chase when any involved record is repaired) but additionally
        reports every ``(side, tid)`` whose chased values differ from its
        inputs — the *value dirt*.  Match endpoints whose values did not
        move are deliberately not dirt: a chase reads values, never
        cluster membership, so a merge that repairs nothing cannot change
        a neighbor's verdict.  A record none of whose own pairs matched
        and none of whose involved records moved is sound to skip — with
        all involved values fixed, cell identification is monotone in the
        pair set, so the pooled chase (which ran every chase variant a
        per-record :meth:`_match_pairs` would have) subsumes each
        record's own delta chase — which is what lets
        :meth:`ingest_batch` skip their per-record chase.
        """
        store = self.store
        matches, changed = self._chase(
            pairs, use_arrival=True, collect_changed=True
        )
        involved = {(LEFT, left_tid) for left_tid, _ in pairs} | {
            (RIGHT, right_tid) for _, right_tid in pairs
        }
        repaired = any(
            store.relation(side)[tid].values()
            != store.arrival_values(side, tid)
            for side, tid in involved
        )
        if repaired:
            # Union-wide trigger where _match_pairs triggers per record —
            # a superset of the chases any single record would run, so
            # the screen's verdict still subsumes each of them.
            second, second_changed = self._chase(
                pairs, use_arrival=False, collect_changed=True
            )
            for match in second:
                if match not in matches:
                    matches.append(match)
            changed |= second_changed
        return matches, changed

    def _chase(
        self,
        pairs: Sequence[Pair],
        use_arrival: bool,
        collect_changed: bool = False,
    ):
        """One enforcement chase over a local sub-instance of the delta.

        The sub-instance holds only the tuples occurring in ``pairs`` (ids
        preserved), so the chase never copies or rescans the full store —
        its cost is bounded by the delta.  A pair matches when the chase
        identified all target cells, exactly the batch matcher's decision
        rule: both run :meth:`EnforcementPlan.enforce` on the same
        compiled rules, and the plan's similarity cache persists across
        ingests (a stream of near-duplicates keeps hitting it).  On the
        factorised path the plan's group-verdict cache persists the same
        way: a delta whose pairs present already-seen value-pair
        signatures costs zero predicate probes.
        """
        store = self.store
        involved_left = sorted({left_tid for left_tid, _ in pairs})
        involved_right = sorted({right_tid for _, right_tid in pairs})
        local_left = Relation(store.pair.left)
        local_right = Relation(store.pair.right)
        for local, stored, side, tids in (
            (local_left, store.left, LEFT, involved_left),
            (local_right, store.right, RIGHT, involved_right),
        ):
            for tid in tids:
                values = (
                    store.arrival_values(side, tid)
                    if use_arrival
                    else stored[tid].values()
                )
                local.insert(values, tid=tid)
        instance = InstancePair(store.pair, local_left, local_right)
        result = self.plan.enforce(
            instance,
            resolver=self.resolver,
            candidate_pairs=list(pairs),
            factorised=self.factorised,
        )
        matches = [
            (left_tid, right_tid)
            for left_tid, right_tid in pairs
            if result.identified(left_tid, right_tid, self._target_pairs)
        ]
        if not collect_changed:
            return matches
        # Which involved records did the chase move?  Compare the chased
        # extension against the values the sub-instance was built from.
        changed: Set[Tuple[int, int]] = set()
        for out, stored, side, tids in (
            (result.instance.left, store.left, LEFT, involved_left),
            (result.instance.right, store.right, RIGHT, involved_right),
        ):
            for tid in tids:
                baseline = (
                    store.arrival_values(side, tid)
                    if use_arrival
                    else stored[tid].values()
                )
                if out[tid].values() != baseline:
                    changed.add((side, tid))
        return matches, changed

    def _resolve_cluster(self, node: Node) -> List[Tuple[int, int]]:
        """Re-resolve a cluster's target values to the member consensus.

        For every identified attribute pair, the resolver picks one value
        from the *arrival* values of all cluster members, and that
        consensus becomes every member's current value — the streaming
        analogue of the batch chase resolving each merged cell class.
        Resolving from arrival values keeps the outcome independent of
        arrival order (the same member multiset always yields the same
        consensus, where chaining pairwise repairs would not).

        Returns the ``(side, tid)`` records whose current values changed —
        their neighborhoods must be re-examined by the caller.
        """
        store = self.store
        members = store.cluster_nodes(*_side_tid(node))
        if len(members) < 2:
            return []
        lefts = sorted(tid for tag, tid in members if tag == "L")
        rights = sorted(tid for tag, tid in members if tag == "R")
        changed: List[Tuple[int, int]] = []
        changed_seen = set()
        for left_attr, right_attr in self._target_pairs:
            values = [
                store.arrival_values(LEFT, tid)[left_attr] for tid in lefts
            ] + [
                store.arrival_values(RIGHT, tid)[right_attr] for tid in rights
            ]
            resolved = self.resolver(values)
            for side, tids, attribute in (
                (LEFT, lefts, left_attr),
                (RIGHT, rights, right_attr),
            ):
                relation = store.relation(side)
                for tid in tids:
                    if relation[tid][attribute] != resolved:
                        relation.set_value(tid, attribute, resolved)
                        if (side, tid) not in changed_seen:
                            changed_seen.add((side, tid))
                            changed.append((side, tid))
        return changed

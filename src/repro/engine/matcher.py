"""Incremental entity resolution: match records as they arrive.

The batch pipelines (:mod:`repro.matching.pipeline`) re-block, re-compare
and re-enforce the full instance on every run.  The
:class:`IncrementalMatcher` instead keeps a warm :class:`~repro.engine.store.MatchStore`
and, for each arriving record:

1. inserts and indexes it (:meth:`~repro.engine.store.MatchStore.add`);
2. probes only the affected index buckets for the candidate neighborhood;
3. runs MD enforcement (:func:`repro.core.semantics.enforce`) on a *local
   sub-instance* containing just the new record and its neighbors — the
   delta — never copying or rescanning the full instance;
4. reads match decisions off the identified target cells, merges identity
   clusters, and re-resolves each grown cluster's target values to the
   member consensus, so later arrivals compare against the cleaned
   records (the dynamic semantics accumulating over the stream).

Per-ingest work is therefore proportional to the record's bucket
neighborhood, which is what makes streaming ingest sublinear in the store
size (asserted by ``tests/engine/test_equivalence.py`` via the store's
comparison counter).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.md import MatchingDependency
from repro.core.schema import LEFT, RIGHT, ComparableLists
from repro.core.semantics import (
    InstancePair,
    ValueResolver,
    prefer_informative,
)
from repro.matching.evaluate import Pair
from repro.plan.blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    SortedNeighborhoodBackend,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.plan.compile import EnforcementPlan, compile_plan
from repro.relations.relation import Relation
from repro.metrics.registry import DEFAULT_REGISTRY, MetricRegistry

from .store import MatchStore, Node, node_of

_SIDES = {"L": LEFT, "R": RIGHT}


def _side_tid(node: Node) -> Tuple[int, int]:
    tag, tid = node
    return _SIDES[tag], tid


@dataclass(frozen=True)
class IngestResult:
    """Outcome of ingesting one record.

    Attributes
    ----------
    side, tid:
        Where the record landed in the store.
    candidates:
        The delta pairs actually compared (new record × neighborhood).
    matches:
        The subset declared matches by enforcement.
    merged:
        Whether any cluster merge happened (False for re-ingested
        duplicates that were already in the right cluster).
    cascade_truncated:
        True when the repair cascade hit ``max_cascade`` and left some
        repaired records' neighborhoods unexamined (never on clean data).
    """

    side: int
    tid: int
    candidates: Tuple[Pair, ...]
    matches: Tuple[Pair, ...]
    merged: bool
    cascade_truncated: bool = False


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of warm-starting a store from batch relations."""

    left_rows: int
    right_rows: int
    candidates: int
    matches: int


class IncrementalMatcher:
    """Streaming counterpart of :class:`~repro.matching.pipeline.EnforcementMatcher`.

    Matching decisions use the same machinery as the batch matcher — RCK
    deduction for candidate generation and the enforcement chase for
    decisions — so a stream ingested record-by-record converges to the
    clusters the batch matcher finds on the same data with the same
    candidate keys.

    >>> # matcher = IncrementalMatcher(sigma, target, top_k=5)
    >>> # matcher.ingest(RIGHT, {"FN": "Mark", ...})
    """

    def __init__(
        self,
        sigma: Sequence[MatchingDependency] = (),
        target: Optional[ComparableLists] = None,
        top_k: int = 5,
        registry: MetricRegistry = DEFAULT_REGISTRY,
        resolver: ValueResolver = prefer_informative,
        store: Optional[MatchStore] = None,
        key_length: int = 1,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
        blocking_backend: str = "hash",
        window: int = 10,
        key_pairs=None,
        max_cascade: int = 256,
        plan: Optional[EnforcementPlan] = None,
        factorised: bool = True,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if plan is None:
            # The raw-MD constructor predates the spec-driven API; the
            # plan-sharing form (what Workspace.stream builds) stays.
            warnings.warn(
                "constructing IncrementalMatcher from raw MDs is "
                "deprecated; build a repro.api.Workspace and call "
                "Workspace.stream()",
                DeprecationWarning,
                stacklevel=2,
            )
            if not sigma:
                raise ValueError("need at least one MD")
            if target is None:
                raise ValueError("need a match target")
            # A restored store already carries its deduced RCKs; compile
            # the plan over them so probing and matching stay consistent.
            plan = compile_plan(
                sigma,
                target,
                rcks=store.rcks if store is not None else None,
                top_k=top_k,
                registry=registry,
            )
        elif not plan.sigma or plan.target is None:
            raise ValueError("the given plan was compiled without MDs or target")
        self.plan = plan
        self.sigma = list(plan.sigma)
        self.target = plan.target
        self.registry = plan.registry
        self.resolver = resolver
        self.max_cascade = max_cascade
        #: Chase each delta factorised (repro.plan.factorise).  The group
        #: verdict cache lives on the shared plan, so a stream of
        #: near-duplicates keeps reusing verdicts across ingests — the
        #: incremental counterpart of the similarity memo.
        self.factorised = factorised
        if store is None:
            store = MatchStore(
                self.target,
                plan.rcks,
                key_length,
                encode_attributes,
                blocking_backend=blocking_backend,
                window=window,
                key_pairs=key_pairs,
            )
        elif store.target != self.target:
            raise ValueError("store was built for a different target")
        self.store = store
        #: Whether the store streams under sorted-neighborhood semantics
        #: (drives the engine.sn_* observability signals).
        self._sn_blocking = (
            getattr(store.blocking, "family", "hash") == "sorted-neighborhood"
        )
        self._target_pairs = self.target.attribute_pairs()
        # Observability: default to the plan's tracer/registry (a
        # Workspace hands its own to the plan), or explicit overrides.
        self.tracer = tracer if tracer is not None else getattr(
            plan, "tracer", NULL_TRACER
        )
        self.metrics = metrics if metrics is not None else getattr(
            plan, "metrics", None
        ) or MetricsRegistry()
        if tracer is not None:
            # A standalone tracer must also see the delta-chase spans the
            # plan's executor emits.
            plan.tracer = tracer
        if metrics is not None:
            plan.metrics = metrics

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------

    def ingest(
        self, side: int, values: Dict[str, object], tid: Optional[int] = None
    ) -> IngestResult:
        """Ingest one record: index, probe, enforce on the delta, merge.

        When a merge changes a cluster's consensus values (see
        :meth:`_resolve_cluster`), every repaired record's neighborhood is
        re-enforced — the streaming counterpart of the batch chase
        re-scanning its candidate pairs after a round of updates.  The
        cascade stops immediately when no merge repairs anything (the
        common, clean-data case); ``max_cascade`` bounds the number of
        record re-enforcements per ingest as a safety valve, and hitting
        it is reported via :attr:`IngestResult.cascade_truncated`.
        """
        store = self.store
        started = time.perf_counter()
        with self.tracer.span("ingest", side=side) as span:
            tid = store.add(side, values, tid=tid)
            all_pairs: List[Pair] = []
            all_matches: List[Pair] = []
            merged = False
            queue: List[Tuple[int, int]] = [(side, tid)]
            queued = {(side, tid)}
            rounds = 0
            while queue and rounds < self.max_cascade:
                rounds += 1
                round_side, round_tid = queue.pop(0)
                queued.discard((round_side, round_tid))
                # Probe with arrival values: the buckets were keyed on them.
                row = store.arrival_row(round_side, round_tid)
                other_tids = store.neighbors(round_side, row)
                if self._sn_blocking:
                    self.metrics.count("engine.sn_probes")
                if round_side == LEFT:
                    pairs: List[Pair] = [
                        (round_tid, other) for other in other_tids
                    ]
                else:
                    pairs = [(other, round_tid) for other in other_tids]
                store.comparisons += len(pairs)
                if not pairs:
                    continue
                all_pairs.extend(pairs)
                touched: List[Node] = []
                for match in self._match_pairs(pairs):
                    if match not in all_matches:
                        all_matches.append(match)
                    left_tid, right_tid = match
                    left_node = node_of(LEFT, left_tid)
                    if store.union(left_node, node_of(RIGHT, right_tid)):
                        merged = True
                        touched.append(left_node)
                for root in {store.find(node) for node in touched}:
                    for changed_record in self._resolve_cluster(root):
                        if changed_record not in queued:
                            queue.append(changed_record)
                            queued.add(changed_record)
            span.set("tid", tid)
            span.set("candidates", len(all_pairs))
            span.set("matches", len(all_matches))
            span.set("cascade", rounds)
        metrics = self.metrics
        metrics.observe("engine.ingest_seconds", time.perf_counter() - started)
        metrics.count("engine.ingests")
        if merged:
            metrics.count("engine.merges")
        # Store growth as gauges: index/cluster size over the stream.
        metrics.gauge("engine.left_rows", len(store.left))
        metrics.gauge("engine.right_rows", len(store.right))
        if self._sn_blocking:
            # Live block-run count: how far the window chain is split.
            metrics.gauge(
                "engine.sn_blocks",
                sum(
                    entry["buckets"]
                    for entry in store.blocking.index_stats().values()
                ),
            )
        # One ingest = one durable transaction (no-op for memory stores).
        store.commit()
        return IngestResult(
            side,
            tid,
            tuple(all_pairs),
            tuple(all_matches),
            merged,
            cascade_truncated=bool(queue),
        )

    def ingest_stream(self, events: Iterable) -> List[IngestResult]:
        """Ingest a sequence of events in arrival order.

        Events are ``(side, values)`` tuples or objects with ``side``,
        ``values`` and (optionally) ``tid`` attributes, such as
        :class:`repro.datagen.streams.StreamEvent`.
        """
        results: List[IngestResult] = []
        for event in events:
            if isinstance(event, tuple):
                side, values = event
                tid = None
            else:
                side, values = event.side, dict(event.values)
                tid = getattr(event, "tid", None)
            results.append(self.ingest(side, values, tid=tid))
        return results

    # ------------------------------------------------------------------
    # Batch warm-start
    # ------------------------------------------------------------------

    def bootstrap(
        self,
        left: Relation,
        right: Relation,
        preserve_tids: bool = True,
        window: Optional[int] = None,
    ) -> BootstrapResult:
        """Warm-start an empty store from existing batch relations.

        Candidate generation runs through the store's hash-blocking
        backend (the same one batch pipelines use), optionally unioned
        with a sorted-neighborhood pass of the given ``window`` — then a
        single enforcement chase matches the candidates and seeds the
        clusters.
        """
        store = self.store
        if len(store.left) or len(store.right):
            raise ValueError("bootstrap requires an empty store")
        for row in left.rows():
            store.add(LEFT, row.values(), tid=row.tid if preserve_tids else None)
        for row in right.rows():
            store.add(RIGHT, row.values(), tid=row.tid if preserve_tids else None)
        pairs = set(store.blocking.candidates(store.left, store.right))
        if window is not None:
            sn = SortedNeighborhoodBackend.from_rcks(store.rcks, window=window)
            pairs.update(sn.candidates(store.left, store.right))
        ordered = sorted(pairs)
        store.comparisons += len(ordered)
        matches = self._match_pairs(ordered) if ordered else []
        touched: List[Node] = []
        for left_tid, right_tid in matches:
            left_node = node_of(LEFT, left_tid)
            if store.union(left_node, node_of(RIGHT, right_tid)):
                touched.append(left_node)
        for root in {store.find(node) for node in touched}:
            self._resolve_cluster(root)
        store.commit()
        return BootstrapResult(
            left_rows=len(store.left),
            right_rows=len(store.right),
            candidates=len(ordered),
            matches=len(matches),
        )

    # ------------------------------------------------------------------
    # Delta enforcement
    # ------------------------------------------------------------------

    def _match_pairs(self, pairs: Sequence[Pair]) -> List[Pair]:
        """Decide the delta pairs by local enforcement; no store side effects.

        Every pair is chased over the involved records' *arrival* values —
        the batch chase evaluates every candidate pair on pristine values
        in its first round, and this keeps that guarantee under streaming
        (a consensus repair can never destroy evidence two records arrived
        with).  When some involved record's current values differ from its
        arrivals (a consensus repaired it), a second chase over the
        current values adds the matches that only repairs enable — the
        streaming analogue of the batch chase's later rounds.
        """
        matches = self._chase(pairs, use_arrival=True)
        store = self.store
        repaired = any(
            store.relation(side)[tid].values() != store.arrival_values(side, tid)
            for side, tids in (
                (LEFT, {left_tid for left_tid, _ in pairs}),
                (RIGHT, {right_tid for _, right_tid in pairs}),
            )
            for tid in tids
        )
        if repaired:
            for match in self._chase(pairs, use_arrival=False):
                if match not in matches:
                    matches.append(match)
        return matches

    def _chase(self, pairs: Sequence[Pair], use_arrival: bool) -> List[Pair]:
        """One enforcement chase over a local sub-instance of the delta.

        The sub-instance holds only the tuples occurring in ``pairs`` (ids
        preserved), so the chase never copies or rescans the full store —
        its cost is bounded by the delta.  A pair matches when the chase
        identified all target cells, exactly the batch matcher's decision
        rule: both run :meth:`EnforcementPlan.enforce` on the same
        compiled rules, and the plan's similarity cache persists across
        ingests (a stream of near-duplicates keeps hitting it).  On the
        factorised path the plan's group-verdict cache persists the same
        way: a delta whose pairs present already-seen value-pair
        signatures costs zero predicate probes.
        """
        store = self.store
        involved_left = sorted({left_tid for left_tid, _ in pairs})
        involved_right = sorted({right_tid for _, right_tid in pairs})
        local_left = Relation(store.pair.left)
        local_right = Relation(store.pair.right)
        for local, stored, side, tids in (
            (local_left, store.left, LEFT, involved_left),
            (local_right, store.right, RIGHT, involved_right),
        ):
            for tid in tids:
                values = (
                    store.arrival_values(side, tid)
                    if use_arrival
                    else stored[tid].values()
                )
                local.insert(values, tid=tid)
        instance = InstancePair(store.pair, local_left, local_right)
        result = self.plan.enforce(
            instance,
            resolver=self.resolver,
            candidate_pairs=list(pairs),
            factorised=self.factorised,
        )
        return [
            (left_tid, right_tid)
            for left_tid, right_tid in pairs
            if result.identified(left_tid, right_tid, self._target_pairs)
        ]

    def _resolve_cluster(self, node: Node) -> List[Tuple[int, int]]:
        """Re-resolve a cluster's target values to the member consensus.

        For every identified attribute pair, the resolver picks one value
        from the *arrival* values of all cluster members, and that
        consensus becomes every member's current value — the streaming
        analogue of the batch chase resolving each merged cell class.
        Resolving from arrival values keeps the outcome independent of
        arrival order (the same member multiset always yields the same
        consensus, where chaining pairwise repairs would not).

        Returns the ``(side, tid)`` records whose current values changed —
        their neighborhoods must be re-examined by the caller.
        """
        store = self.store
        members = store.cluster_nodes(*_side_tid(node))
        if len(members) < 2:
            return []
        lefts = sorted(tid for tag, tid in members if tag == "L")
        rights = sorted(tid for tag, tid in members if tag == "R")
        changed: List[Tuple[int, int]] = []
        changed_seen = set()
        for left_attr, right_attr in self._target_pairs:
            values = [
                store.arrival_values(LEFT, tid)[left_attr] for tid in lefts
            ] + [
                store.arrival_values(RIGHT, tid)[right_attr] for tid in rights
            ]
            resolved = self.resolver(values)
            for side, tids, attribute in (
                (LEFT, lefts, left_attr),
                (RIGHT, rights, right_attr),
            ):
                relation = store.relation(side)
                for tid in tids:
                    if relation[tid][attribute] != resolved:
                        relation.set_value(tid, attribute, resolved)
                        if (side, tid) not in changed_seen:
                            changed_seen.add((side, tid))
                            changed.append((side, tid))
        return changed

"""The engine's persistent state: records, indexes, identity clusters.

A :class:`MatchStore` is everything the incremental matcher needs to keep
between arrivals:

* the ingested records themselves, one :class:`~repro.relations.relation.Relation`
  per side of the schema pair;
* a blocking backend updated on every :meth:`MatchStore.add` — by default
  one inverted index per deduced RCK
  (:class:`~repro.plan.blocking.HashBlockingBackend`); a spec declaring
  ``blocking.backend: "sorted-neighborhood"`` gets the rank-encoded
  :class:`~repro.plan.sn_index.WindowedSNIndex` instead, so streams probe
  under the same window semantics the batch run uses (they used to be
  silently substituted with hash);
* an incremental union-find over record identities — the entity clusters
  that pairwise match decisions are folded into as they are made (the
  streaming counterpart of :func:`repro.matching.clustering.cluster_matches`);
* counters (``comparisons``, ``merges``) so the cost of incremental
  matching is measurable against batch re-runs.

The store deliberately knows nothing about MDs or enforcement; that logic
lives in :class:`repro.engine.matcher.IncrementalMatcher`.  Keeping state
and policy separate is what lets the store be snapshotted to disk and
warmed back up (:mod:`repro.engine.snapshot`) without re-matching.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT, RIGHT, ComparableLists
from repro.matching.clustering import Cluster
from repro.plan.blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    HashBlockingBackend,
    RCKIndex,
    leading_attribute_pairs,
)
from repro.plan.sn_index import WindowedSNIndex
from repro.relations.relation import Relation, Row

#: A clustered record identity: ("L" | "R", tuple id) — the same node
#: convention as :mod:`repro.matching.clustering`.
Node = Tuple[str, int]

_SIDE_TAGS = {LEFT: "L", RIGHT: "R"}


def node_of(side: int, tid: int) -> Node:
    """The cluster node of a record given its side and tuple id."""
    return (_SIDE_TAGS[side], tid)


def build_blocking(
    backend: str,
    rcks: Sequence[RelativeKey],
    key_length: int = 1,
    encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    window: int = 10,
    key_pairs: Optional[Sequence[Tuple[str, str]]] = None,
):
    """The store-side blocking backend for a declared family.

    ``"hash"`` builds the per-RCK inverted indexes;
    ``"sorted-neighborhood"`` builds the rank-encoded
    :class:`~repro.plan.sn_index.WindowedSNIndex` over ``key_pairs`` —
    or, when none are given, the RCKs' leading attribute pairs, the same
    recipe the spec compiler uses, so a stream and the batch run of one
    spec derive identical sort keys.
    """
    if backend == "hash":
        return HashBlockingBackend.per_rck(rcks, key_length, encode_attributes)
    if backend == "sorted-neighborhood":
        pairs = (
            [tuple(pair) for pair in key_pairs]
            if key_pairs
            else leading_attribute_pairs(rcks, 3)
        )
        return WindowedSNIndex(
            pairs, window=window, encode_attributes=encode_attributes
        )
    raise ValueError(
        f"unsupported blocking backend {backend!r}; "
        "stores stream under 'hash' or 'sorted-neighborhood'"
    )


class MatchStore:
    """Incrementally maintained records + indexes + identity clusters.

    >>> from repro.datagen.schemas import credit_billing_pair, paper_mds, paper_target
    >>> from repro.core.findrcks import find_rcks
    >>> pair = credit_billing_pair()
    >>> target = paper_target(pair)
    >>> store = MatchStore(target, find_rcks(paper_mds(pair), target, m=5))
    >>> tid = store.add(LEFT, {"c#": "111", "FN": "Mark", "LN": "Clifford"})
    >>> store.stats()["left_rows"]
    1
    """

    #: Persistence backend identifier, reported by :meth:`stats`.
    backend_name = "memory"

    #: Blocking families this store class can stream under;
    #: ``Workspace.stream`` refuses specs declaring anything else.
    supported_blocking = ("hash", "sorted-neighborhood")

    def __init__(
        self,
        target: ComparableLists,
        rcks: Sequence[RelativeKey],
        key_length: int = 1,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
        blocking_backend: str = "hash",
        window: int = 10,
        key_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        if not rcks:
            raise ValueError("need at least one RCK to build indexes")
        self.target = target
        self.pair = target.pair
        self.rcks: List[RelativeKey] = list(rcks)
        self.key_length = key_length
        self.encode_attributes: Tuple[str, ...] = tuple(encode_attributes)
        self.left = Relation(self.pair.left)
        self.right = Relation(self.pair.right)
        #: The kernel's blocking backend doubles as the store's index
        #: set: batch bootstrap calls ``blocking.candidates`` and streaming
        #: ingest calls ``blocking.add``/``probe`` on the same structures.
        self.blocking = build_blocking(
            blocking_backend,
            self.rcks,
            key_length=key_length,
            encode_attributes=self.encode_attributes,
            window=window,
            key_pairs=key_pairs,
        )
        self.blocking_backend = self.blocking.family
        self.window = int(window)
        self.key_pairs: Optional[Tuple[Tuple[str, str], ...]] = (
            tuple(self.blocking.pairs)
            if isinstance(self.blocking, WindowedSNIndex)
            else (tuple(tuple(pair) for pair in key_pairs) if key_pairs else None)
        )
        self.indexes: List[RCKIndex] = getattr(self.blocking, "indexes", [])
        self._parent: Dict[Node, Node] = {}
        self._members: Dict[Node, Set[Node]] = {}
        self._arrival: Dict[Node, Dict[str, object]] = {}
        #: Candidate pair comparisons charged so far (ingest + bootstrap).
        self.comparisons = 0
        #: Cluster merges performed (successful unions).
        self.merges = 0
        #: Fingerprint of the :class:`repro.api.ResolutionSpec` this store
        #: was built under (``None`` for stores built outside the spec
        #: API).  Snapshots persist it; ``Workspace.stream`` refuses to
        #: resume a store fingerprinted by a different spec.
        self.spec_fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Records and indexes
    # ------------------------------------------------------------------

    def relation(self, side: int) -> Relation:
        """The relation holding the given side's records."""
        if side == LEFT:
            return self.left
        if side == RIGHT:
            return self.right
        raise ValueError(f"side must be LEFT (0) or RIGHT (1), got {side}")

    def add(self, side: int, values: Dict[str, object], tid: Optional[int] = None) -> int:
        """Insert a record and index it; no matching happens here.

        Returns the assigned tuple id.  The record starts as a singleton
        cluster; :class:`~repro.engine.matcher.IncrementalMatcher.ingest`
        is the entry point that also probes and matches.
        """
        relation = self.relation(side)
        tid = relation.insert(values, tid=tid)
        row = relation[tid]
        self.blocking.add(side, row)
        self._arrival[node_of(side, tid)] = row.values()
        self.find(node_of(side, tid))  # register the singleton cluster
        return tid

    def arrival_values(self, side: int, tid: int) -> Dict[str, object]:
        """The record's values as ingested, before any consensus repair.

        Index keys and cluster value resolution both work from arrival
        values; the relations' *current* values carry the per-cluster
        consensus written by the matcher.
        """
        return dict(self._arrival[node_of(side, tid)])

    def arrival_row(self, side: int, tid: int) -> Row:
        """A row view of the arrival values, for index probing.

        Buckets are keyed by arrival values, so probing must derive keys
        from them too — a consensus repair that rewrites a key attribute
        would otherwise hash a record into a bucket it was never added to.
        """
        return Row(tid, self._arrival[node_of(side, tid)])

    def neighbors(self, side: int, row: Row) -> List[int]:
        """Other-side tuple ids sharing at least one index bucket with ``row``.

        This is the record's candidate neighborhood — the union of one
        bucket probe per index, exactly the pairs the backend's batch
        ``candidates`` over the same keys would generate for it.
        """
        return self.blocking.probe(side, row)

    # ------------------------------------------------------------------
    # Identity clusters (incremental union-find)
    # ------------------------------------------------------------------

    def find(self, node: Node) -> Node:
        """Root of ``node``'s cluster, registering it when unseen."""
        parent = self._parent
        if node not in parent:
            parent[node] = node
            self._members[node] = {node}
            return node
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(self, a: Node, b: Node) -> bool:
        """Merge two clusters; True when they were distinct."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if len(self._members[root_a]) < len(self._members[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._members[root_a] |= self._members.pop(root_b)
        self.merges += 1
        return True

    def same(self, a: Node, b: Node) -> bool:
        """Whether two records are currently in one cluster."""
        return self.find(a) == self.find(b)

    def cluster_nodes(self, side: int, tid: int) -> Set[Node]:
        """All nodes in the cluster of the given record."""
        return set(self._members[self.find(node_of(side, tid))])

    def cluster_of(self, side: int, tid: int) -> Cluster:
        """The record's cluster as a :class:`~repro.matching.clustering.Cluster`."""
        return _as_cluster(self.cluster_nodes(side, tid))

    def clusters(self, include_singletons: bool = False) -> List[Cluster]:
        """All identity clusters (only merged ones unless asked otherwise).

        With the default ``include_singletons=False`` the result is
        directly comparable to the batch side's
        :func:`~repro.matching.clustering.cluster_matches`, which never
        reports unmatched records.
        """
        result = [
            _as_cluster(members)
            for members in self._members.values()
            if include_singletons or len(members) > 1
        ]
        result.sort(key=lambda cluster: (sorted(cluster.left_tids), sorted(cluster.right_tids)))
        return result

    # ------------------------------------------------------------------
    # Durability hooks (no-ops in memory; the SQLite backend overrides)
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Make the current state durable.  In-memory stores have no
        durability, so this is a no-op — callers (the matcher commits
        once per ingest) can invoke it unconditionally."""

    def rollback(self) -> None:
        """Discard uncommitted changes (no-op in memory)."""

    def close(self, commit: bool = True) -> None:
        """Release backing resources (no-op in memory)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational counters and sizes, JSON-serializable."""
        clusters = self.clusters()
        return {
            "backend": self.backend_name,
            "left_rows": len(self.left),
            "right_rows": len(self.right),
            "matched_clusters": len(clusters),
            "largest_cluster": max((cluster.size for cluster in clusters), default=0),
            "comparisons": self.comparisons,
            "merges": self.merges,
            "indexes": self.blocking.index_stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchStore({len(self.left)}+{len(self.right)} rows, "
            f"{self.blocking.name} blocking, {self.merges} merges)"
        )


def _as_cluster(members: Iterable[Node]) -> Cluster:
    lefts = frozenset(tid for tag, tid in members if tag == "L")
    rights = frozenset(tid for tag, tid in members if tag == "R")
    return Cluster(lefts, rights)

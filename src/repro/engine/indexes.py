"""Inverted indexes keyed by RCK-derived blocking keys (compat shim).

The index machinery moved into the enforcement kernel's blocking layer
(:mod:`repro.plan.blocking`), where it backs
:class:`~repro.plan.blocking.HashBlockingBackend` — the same structures
now serve batch multi-pass blocking and the streaming engine's
per-record ``add``/``probe``.  This module re-exports the historical
names so existing imports keep working.
"""

from __future__ import annotations

from repro.plan.blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    RCKIndex,
    indexes_from_rcks,
)

__all__ = [
    "DEFAULT_ENCODED_ATTRIBUTES",
    "RCKIndex",
    "indexes_from_rcks",
]

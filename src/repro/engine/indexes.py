"""Inverted indexes keyed by RCK-derived blocking keys.

The batch pipelines derive blocking/sorting keys from deduced RCKs once per
run (:func:`repro.matching.blocking.rck_blocking_keys`); the streaming
engine instead keeps one *inverted index per RCK*, maintained on every
ingest.  Probing the indexes with a new record yields exactly the records
that multi-pass blocking on the same keys would have paired it with — but
in time proportional to the touched buckets, not the instance.

Each index is keyed by the leading ``key_length`` attribute pairs of its
RCK, with name attributes Soundex-encoded before hashing (the paper's
Exp-4 recipe: "one of the attributes is name, encoded by Soundex before
blocking").  Keys are computed from a record's *arrival* values and never
rewritten — matching later repairs a stored value, the bucket assignment
stays, exactly as batch blocking keys are computed before enforcement.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT
from repro.matching.blocking import RowKey, attribute_key
from repro.metrics.soundex import soundex
from repro.relations.relation import Row

#: Attributes Soundex-encoded by default (the schemas' name attributes).
DEFAULT_ENCODED_ATTRIBUTES = ("FN", "LN")


class RCKIndex:
    """One inverted index: RCK blocking key → posting lists per side.

    >>> from repro.core.schema import RelationSchema
    >>> from repro.relations.relation import Relation
    >>> schema = RelationSchema("R", ["LN", "zip"])
    >>> index = RCKIndex("ln", [("LN", "LN")])
    >>> relation = Relation(schema)
    >>> tid = relation.insert({"LN": "Clifford", "zip": "07974"})
    >>> index.add(LEFT, relation[tid])
    ('C416',)
    >>> other = relation.insert({"LN": "Clivord", "zip": "07974"})
    >>> index.probe(1, relation[other])  # right-side probe hits the left row
    [0]
    """

    def __init__(
        self,
        name: str,
        pairs: Sequence[Tuple[str, str]],
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> None:
        if not pairs:
            raise ValueError("an index needs at least one attribute pair")
        self.name = name
        self.pairs: Tuple[Tuple[str, str], ...] = tuple(pairs)
        encode = set(encode_attributes)
        left_attrs = [left for left, _ in self.pairs]
        right_attrs = [right for _, right in self.pairs]
        self.left_key: RowKey = attribute_key(
            left_attrs,
            [soundex if attr in encode else None for attr in left_attrs],
        )
        self.right_key: RowKey = attribute_key(
            right_attrs,
            [soundex if attr in encode else None for attr in right_attrs],
        )
        self._buckets: Dict[Hashable, Tuple[List[int], List[int]]] = {}

    def key_for(self, side: int, row: Row) -> Hashable:
        """The derived blocking key of ``row`` on the given side."""
        return self.left_key(row) if side == LEFT else self.right_key(row)

    def add(self, side: int, row: Row) -> Hashable:
        """Index ``row``; returns the bucket key it landed in."""
        key = self.key_for(side, row)
        bucket = self._buckets.setdefault(key, ([], []))
        bucket[0 if side == LEFT else 1].append(row.tid)
        return key

    def probe(self, side: int, row: Row) -> List[int]:
        """Tuple ids of the *other* side sharing ``row``'s bucket."""
        bucket = self._buckets.get(self.key_for(side, row))
        if bucket is None:
            return []
        return list(bucket[1 if side == LEFT else 0])

    def __len__(self) -> int:
        return len(self._buckets)

    def largest_bucket(self) -> int:
        """Size of the fullest bucket (both sides counted)."""
        if not self._buckets:
            return 0
        return max(len(lefts) + len(rights) for lefts, rights in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RCKIndex({self.name!r}, {len(self)} buckets)"


def indexes_from_rcks(
    rcks: Sequence[RelativeKey],
    key_length: int = 1,
    encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
) -> List[RCKIndex]:
    """One inverted index per RCK, deduplicated by key specification.

    Each index takes the leading ``key_length`` attribute pairs of its RCK
    (short keys favour recall: a duplicate only needs to agree on one
    leading pair of *some* RCK to be probed).  RCKs whose leading pairs
    coincide share one index.
    """
    if not rcks:
        raise ValueError("need at least one RCK")
    if key_length < 1:
        raise ValueError(f"key_length must be >= 1, got {key_length}")
    indexes: List[RCKIndex] = []
    seen: set = set()
    for position, key in enumerate(rcks):
        pairs = key.attribute_pairs()[:key_length]
        if pairs in seen:
            continue
        seen.add(pairs)
        name = f"rck{position}:" + "+".join(left for left, _ in pairs)
        indexes.append(RCKIndex(name, pairs, encode_attributes))
    return indexes

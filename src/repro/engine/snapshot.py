"""Snapshot a :class:`~repro.engine.store.MatchStore` to disk and back.

A snapshot is one JSON document holding everything needed to resume
ingestion cold: the schema pair, the target lists, the deduced RCKs (as
operator triples), every stored row with its tuple id, the identity
clusters, and the cost counters.  Inverted indexes are *not* serialized —
they are a pure function of the rows and RCKs, so restore rebuilds them by
re-adding every row, which also guarantees a restored store probes exactly
like the original.

Restore → ingest is equivalent to a cold run over the full sequence
(asserted by ``tests/engine/test_snapshot.py``): rows are saved with both
their *arrival* values (what the indexes and consensus resolution work
from) and their *current* values (the per-cluster consensus repairs), so
the resumed engine sees the same state a never-interrupted one would.

Values must be JSON-serializable (strings and ``None`` in all shipped
datasets).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT, RIGHT, ComparableLists, RelationSchema, SchemaPair

from .store import MatchStore

#: Current snapshot format version.
SNAPSHOT_VERSION = 1


def config_to_dict(store) -> Dict[str, object]:
    """The store's *configuration* — everything needed to rebuild an
    empty store probing identically: schema pair, target lists, RCK
    operator triples, key length, encoded attributes.

    Shared by the JSON snapshot format and the SQLite backend's ``meta``
    table (:mod:`repro.engine.sqlite`), so the two persistence formats
    stay mutually convertible.
    """
    return {
        "schema": {
            "left": {
                "name": store.pair.left.name,
                "attributes": list(store.pair.left.attribute_names),
            },
            "right": {
                "name": store.pair.right.name,
                "attributes": list(store.pair.right.attribute_names),
            },
        },
        "target": {
            "left": list(store.target.left_list),
            "right": list(store.target.right_list),
        },
        "rcks": [
            [[atom.left, atom.right, atom.operator.name] for atom in key.atoms]
            for key in store.rcks
        ],
        "key_length": store.key_length,
        "encode_attributes": list(store.encode_attributes),
        "blocking": {
            "backend": store.blocking_backend,
            "window": store.window,
            "key_pairs": (
                [list(pair) for pair in store.key_pairs]
                if store.key_pairs
                else None
            ),
        },
    }


def config_from_dict(data: Dict[str, object]) -> Dict[str, object]:
    """Rebuild core objects from a :func:`config_to_dict` document.

    Returns keyword arguments (``target``, ``rcks``, ``key_length``,
    ``encode_attributes``, and the blocking configuration) accepted by
    both store constructors.  Documents written before the blocking
    section existed restore as hash-blocked stores — exactly how those
    stores were built.
    """
    schema = data["schema"]
    pair = SchemaPair(
        RelationSchema(schema["left"]["name"], schema["left"]["attributes"]),
        RelationSchema(schema["right"]["name"], schema["right"]["attributes"]),
    )
    target = ComparableLists(pair, data["target"]["left"], data["target"]["right"])
    rcks = [
        RelativeKey.from_triples(target, [tuple(triple) for triple in triples])
        for triples in data["rcks"]
    ]
    blocking = data.get("blocking") or {}
    key_pairs = blocking.get("key_pairs")
    return {
        "target": target,
        "rcks": rcks,
        "key_length": int(data["key_length"]),
        "encode_attributes": tuple(data["encode_attributes"]),
        "blocking_backend": blocking.get("backend", "hash"),
        "window": int(blocking.get("window", 10)),
        "key_pairs": (
            [tuple(pair) for pair in key_pairs] if key_pairs else None
        ),
    }


def populate_store(store, data: Dict[str, object]):
    """Replay a snapshot document's rows, clusters and counters into an
    empty store (either backend); returns the store."""
    for side_name, side in (("left", LEFT), ("right", RIGHT)):
        relation = store.relation(side)
        for tid, arrival, current in data["rows"][side_name]:
            tid = store.add(side, arrival, tid=int(tid))
            for attribute, value in current.items():
                if relation[tid][attribute] != value:
                    relation.set_value(tid, attribute, value)
    for members in data["clusters"]:
        nodes = [(tag, int(tid)) for tag, tid in members]
        first = nodes[0]
        for node in nodes[1:]:
            store.union(first, node)
    counters = data["counters"]
    store.comparisons = int(counters["comparisons"])
    store.merges = int(counters["merges"])
    # Snapshots written before the spec API carry no fingerprint; they
    # restore with None and get stamped on their next spec-driven use.
    store.spec_fingerprint = data.get("spec_fingerprint")
    return store


def store_to_dict(store) -> Dict[str, object]:
    """The store (either backend) as a JSON-serializable dictionary."""
    document: Dict[str, object] = {
        "version": SNAPSHOT_VERSION,
        "spec_fingerprint": store.spec_fingerprint,
    }
    document.update(config_to_dict(store))
    document["rows"] = {
        "left": [
            [row.tid, store.arrival_values(LEFT, row.tid), row.values()]
            for row in store.left
        ],
        "right": [
            [row.tid, store.arrival_values(RIGHT, row.tid), row.values()]
            for row in store.right
        ],
    }
    document["clusters"] = [
        [["L", tid] for tid in sorted(cluster.left_tids)]
        + [["R", tid] for tid in sorted(cluster.right_tids)]
        for cluster in store.clusters()
    ]
    document["counters"] = {
        "comparisons": store.comparisons,
        "merges": store.merges,
    }
    return document


def store_from_dict(data: Dict[str, object]) -> MatchStore:
    """Rebuild an in-memory store from :func:`store_to_dict` output."""
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    store = MatchStore(**config_from_dict(data))
    return populate_store(store, data)


def save_store(store: MatchStore, path) -> None:
    """Write the store snapshot as JSON to ``path``, atomically.

    The document is written to a sibling temp file and renamed into
    place, so a crash mid-write never destroys the previous snapshot —
    the store is the engine's only persistent state.
    """
    path = Path(path)
    payload = json.dumps(store_to_dict(store), indent=1, sort_keys=True)
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_text(payload, encoding="utf-8")
    os.replace(scratch, path)


def load_store(path) -> MatchStore:
    """Read a snapshot written by :func:`save_store`."""
    return store_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

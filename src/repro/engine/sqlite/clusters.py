"""Durable union-find over the ``clusters`` table.

The in-memory store keeps parent pointers and member sets in
dictionaries; here every node row stores its cluster *root* directly, so

* ``find``   — one point lookup (registering unseen nodes as their own
  root, like the in-memory ``find``);
* ``union``  — two finds, two indexed size counts, and one ``UPDATE``
  repointing the smaller cluster's rows to the larger's root (union by
  size, same tie behavior as the in-memory store);
* ``members`` / ``clusters`` — range scans on the ``clusters_root``
  index.

Roots are therefore always fully path-compressed on disk — a restart
inherits flat pointers and never replays merge history.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, List, Set, Tuple

#: A node as stored: (side int, tid).
DbNode = Tuple[int, int]


class SQLiteUnionFind:
    """Union-find with direct on-disk root pointers."""

    def __init__(self, connection: sqlite3.Connection) -> None:
        self.connection = connection

    def find(self, node: DbNode) -> DbNode:
        """Root of ``node``'s cluster, registering it when unseen."""
        side, tid = node
        row = self.connection.execute(
            "SELECT root_side, root_tid FROM clusters "
            "WHERE side = ? AND tid = ?",
            (side, tid),
        ).fetchone()
        if row is not None:
            return (row[0], row[1])
        self.connection.execute(
            "INSERT INTO clusters (side, tid, root_side, root_tid) "
            "VALUES (?, ?, ?, ?)",
            (side, tid, side, tid),
        )
        return node

    def _size(self, root: DbNode) -> int:
        return self.connection.execute(
            "SELECT COUNT(*) FROM clusters WHERE root_side = ? AND root_tid = ?",
            root,
        ).fetchone()[0]

    def union(self, a: DbNode, b: DbNode) -> bool:
        """Merge two clusters; True when they were distinct."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size(root_a) < self._size(root_b):
            root_a, root_b = root_b, root_a
        self.connection.execute(
            "UPDATE clusters SET root_side = ?, root_tid = ? "
            "WHERE root_side = ? AND root_tid = ?",
            (root_a[0], root_a[1], root_b[0], root_b[1]),
        )
        return True

    def members(self, root: DbNode) -> Set[DbNode]:
        """All nodes whose cluster root is ``root``."""
        return {
            (side, tid)
            for side, tid in self.connection.execute(
                "SELECT side, tid FROM clusters "
                "WHERE root_side = ? AND root_tid = ?",
                root,
            )
        }

    def all_clusters(self) -> Iterable[Set[DbNode]]:
        """Every cluster's member set (singletons included)."""
        grouped: Dict[DbNode, Set[DbNode]] = {}
        for side, tid, root_side, root_tid in self.connection.execute(
            "SELECT side, tid, root_side, root_tid FROM clusters"
        ):
            grouped.setdefault((root_side, root_tid), set()).add((side, tid))
        return grouped.values()

    def roots(self) -> List[DbNode]:
        """All distinct cluster roots."""
        return [
            (side, tid)
            for side, tid in self.connection.execute(
                "SELECT DISTINCT root_side, root_tid FROM clusters"
            )
        ]

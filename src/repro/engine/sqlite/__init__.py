"""`repro.engine.sqlite` — the durable SQLite-backed match store.

A drop-in persistence backend for the streaming engine: everything a
:class:`~repro.engine.store.MatchStore` keeps in RAM — records with
arrival and consensus values, per-RCK inverted-index buckets, union-find
cluster membership, cost counters, the owning spec's fingerprint — lives
in one embedded SQLite database (WAL journal mode, one transaction per
ingest).  Opening an existing database is an O(1) warm restart: only the
``meta`` table is read; state is paged in lazily as the matcher touches
it.

The backend is behaviorally identical to the in-memory store (same
matches, clusters, provenance, stats) — proven by the differential suite
in ``tests/engine/test_sqlite_differential.py`` — and mutually
convertible with the JSON snapshot format via :mod:`.migrate` /
``repro engine migrate``.
"""

from .connection import SQLITE_MAGIC, connect, is_sqlite_file
from .migrate import (
    json_roundtrip_equal,
    snapshot_to_sqlite,
    sqlite_from_dict,
    sqlite_to_snapshot,
)
from .schema import SQLITE_SCHEMA_VERSION
from .store import SQLiteMatchStore

__all__ = [
    "SQLITE_MAGIC",
    "SQLITE_SCHEMA_VERSION",
    "SQLiteMatchStore",
    "connect",
    "is_sqlite_file",
    "json_roundtrip_equal",
    "snapshot_to_sqlite",
    "sqlite_from_dict",
    "sqlite_to_snapshot",
]

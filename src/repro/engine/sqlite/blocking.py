"""Durable blocking backends: hash postings and sorted-neighborhood ranks.

:class:`SQLiteHashBlockingBackend` mirrors
:class:`repro.plan.blocking.HashBlockingBackend` — same ``add`` /
``probe`` / ``candidates`` contract, same per-RCK multi-pass semantics —
but its posting lists live in SQLite rather than dictionaries.  The key
*derivation* is shared outright: each pass wraps the exact
:class:`~repro.plan.blocking.RCKIndex` the in-memory backend would
build, used purely for its compiled key functions, so a record hashes to
the same bucket in both backends by construction (the differential
suite then proves the probes agree).

:class:`SQLiteSNBlockingBackend` does the same for the rank-encoded
multi-pass sorted-neighborhood index
(:class:`~repro.plan.sn_index.WindowedSNIndex`): elements live in the
``ranks`` table, one row per (pass, block, sort key, side, tid) — pass
*i* keyed by the in-memory index's rotation *i* — and a probe retrieves
the record's block run per pass and scans the rank window with the
exact helper the in-memory index uses.

Derived keys are tuples of strings; they are stored JSON-encoded so the
``(idx, key, side)`` index makes a probe one range scan and a batch
candidates call one self-join.  (JSON *text* ordering is not tuple
ordering, so SN block runs are re-sorted on decoded tuples after
retrieval — block runs are window-sized neighborhoods, never the full
table.)
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT, RIGHT
from repro.plan.blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    BlockingBackend,
    Pair,
    RCKIndex,
    indexes_from_rcks,
)
from repro.plan.sn_index import (
    Entry,
    WindowedSNIndex,
    run_pairs,
    window_neighbors,
)
from repro.relations.relation import Row


def _encode_key(key: object) -> str:
    """A derived key (tuple of strings) as its canonical text form."""
    return json.dumps(list(key) if isinstance(key, tuple) else key)


class SQLiteHashBlockingBackend(BlockingBackend):
    """Multi-pass hash blocking with postings in the ``buckets`` table."""

    name = "sqlite-hash"
    family = "hash"

    def __init__(
        self, connection: sqlite3.Connection, indexes: Sequence[RCKIndex]
    ) -> None:
        if not indexes:
            raise ValueError("hash blocking needs at least one index")
        self.connection = connection
        #: The key-deriving index specs (their in-memory buckets unused).
        self.indexes: List[RCKIndex] = list(indexes)

    @classmethod
    def per_rck(
        cls,
        connection: sqlite3.Connection,
        rcks: Sequence[RelativeKey],
        key_length: int = 1,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> "SQLiteHashBlockingBackend":
        """One pass per RCK's leading ``key_length`` attribute pairs."""
        return cls(
            connection, indexes_from_rcks(rcks, key_length, encode_attributes)
        )

    # -- streaming -----------------------------------------------------

    def add(self, side: int, row: Row) -> None:
        """Write one posting per pass for an arriving record."""
        self.connection.executemany(
            "INSERT INTO buckets (idx, key, side, tid) VALUES (?, ?, ?, ?)",
            [
                (position, _encode_key(index.key_for(side, row)), side, row.tid)
                for position, index in enumerate(self.indexes)
            ],
        )

    def probe(self, side: int, row: Row) -> List[int]:
        """Other-side tids sharing at least one bucket with ``row``."""
        other = RIGHT if side == LEFT else LEFT
        seen = set()
        for position, index in enumerate(self.indexes):
            seen.update(
                tid
                for (tid,) in self.connection.execute(
                    "SELECT tid FROM buckets "
                    "WHERE idx = ? AND key = ? AND side = ?",
                    (position, _encode_key(index.key_for(side, row)), other),
                )
            )
        return sorted(seen)

    # -- batch ---------------------------------------------------------

    def candidates(self, left=None, right=None) -> List[Pair]:
        """All cross-side pairs sharing a bucket, over every pass.

        The relations are accepted for interface compatibility but the
        join runs on the postings the store already maintains — by
        construction they index exactly the store's rows.
        """
        rows = self.connection.execute(
            "SELECT DISTINCT l.tid, r.tid FROM buckets l "
            "JOIN buckets r ON l.idx = r.idx AND l.key = r.key "
            "WHERE l.side = ? AND r.side = ?",
            (LEFT, RIGHT),
        ).fetchall()
        return sorted((left_tid, right_tid) for left_tid, right_tid in rows)

    # -- introspection -------------------------------------------------

    def index_stats(self) -> dict:
        """Bucket counts and largest bucket per pass, from SQL."""
        stats = {}
        for position, index in enumerate(self.indexes):
            buckets, largest = self.connection.execute(
                "SELECT COUNT(*), COALESCE(MAX(n), 0) FROM ("
                "  SELECT COUNT(*) AS n FROM buckets "
                "  WHERE idx = ? GROUP BY key"
                ")",
                (position,),
            ).fetchone()
            stats[index.name] = {"buckets": buckets, "largest_bucket": largest}
        return stats

    def describe(self) -> str:
        keys = ", ".join(
            "+".join(f"{left}~{right}" for left, right in index.pairs)
            for index in self.indexes
        )
        return f"sqlite-hash({len(self.indexes)} passes: {keys})"


class SQLiteSNBlockingBackend(BlockingBackend):
    """Sorted-neighborhood blocking with the rank runs in ``ranks``.

    Wraps a :class:`~repro.plan.sn_index.WindowedSNIndex` purely for its
    compiled key functions (its in-memory runs stay unused), so a record
    ranks into the same block with the same sort key in both backends by
    construction.
    """

    name = "sqlite-sorted-neighborhood"
    family = "sorted-neighborhood"

    def __init__(
        self, connection: sqlite3.Connection, index: WindowedSNIndex
    ) -> None:
        self.connection = connection
        #: The key-deriving index spec (its live runs unused).
        self.index = index
        self.pairs = index.pairs
        self.window = index.window

    @classmethod
    def from_pairs(
        cls,
        connection: sqlite3.Connection,
        pairs: Sequence[Tuple[str, str]],
        window: int = 10,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> "SQLiteSNBlockingBackend":
        """One pass over explicit attribute pairs."""
        return cls(connection, WindowedSNIndex(pairs, window, encode_attributes))

    def _block_run(self, position: int, block: str) -> List[Entry]:
        """One pass's block run as sorted (key, side, tid) entries."""
        run = [
            (tuple(json.loads(key)), side, tid)
            for key, side, tid in self.connection.execute(
                "SELECT key, side, tid FROM ranks "
                "WHERE idx = ? AND block = ?",
                (position, block),
            )
        ]
        run.sort()
        return run

    # -- streaming -----------------------------------------------------

    def add(self, side: int, row: Row) -> None:
        """Rank one arriving record into its block run per pass."""
        rows = []
        for position in range(self.index.pass_count):
            key = self.index.key_for(side, row, position)
            rows.append(
                (
                    position,
                    self.index.block_of(key),
                    _encode_key(key),
                    side,
                    row.tid,
                )
            )
        self.connection.executemany(
            "INSERT INTO ranks (idx, block, key, side, tid) "
            "VALUES (?, ?, ?, ?, ?)",
            rows,
        )

    def probe(self, side: int, row: Row) -> List[int]:
        """Other-side tids within the record's rank window in any pass."""
        found = set()
        for position in range(self.index.pass_count):
            key = self.index.key_for(side, row, position)
            entry = (key, side, row.tid)
            run = self._block_run(position, self.index.block_of(key))
            found.update(window_neighbors(run, entry, self.window))
        return sorted(found)

    # -- batch ---------------------------------------------------------

    def candidates(self, left=None, right=None) -> List[Pair]:
        """All block-confined window pairs over the stored rank runs.

        The relations are accepted for interface compatibility but the
        scan runs on the runs the store already maintains — by
        construction they rank exactly the store's rows.
        """
        if self.window < 2:
            return []
        blocks: Dict[Tuple[int, str], List[Entry]] = {}
        for position, block, key, side, tid in self.connection.execute(
            "SELECT idx, block, key, side, tid FROM ranks"
        ):
            blocks.setdefault((position, block), []).append(
                (tuple(json.loads(key)), side, tid)
            )
        pairs = set()
        for run in blocks.values():
            run.sort()
            pairs.update(run_pairs(run, self.window))
        return sorted(pairs)

    # -- introspection -------------------------------------------------

    def index_stats(self) -> dict:
        """Per-pass block-run counts in the store's index-stats shape."""
        stats = {}
        for position, rotation in enumerate(self.index.passes):
            blocks, largest = self.connection.execute(
                "SELECT COUNT(*), COALESCE(MAX(n), 0) FROM ("
                "  SELECT COUNT(*) AS n FROM ranks "
                "  WHERE idx = ? GROUP BY block"
                ")",
                (position,),
            ).fetchone()
            name = "sn:" + "+".join(left for left, _ in rotation)
            stats[name] = {"buckets": blocks, "largest_bucket": largest}
        return stats

    def describe(self) -> str:
        detail = "+".join(f"{left}~{right}" for left, right in self.pairs)
        return (
            f"sorted-neighborhood(window={self.window}, rank-encoded in "
            f"sqlite, {self.index.pass_count} rotated pass(es) on {detail}; "
            "runs split at block boundaries)"
        )

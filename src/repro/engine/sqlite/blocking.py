"""Hash blocking over the ``buckets`` table: the durable inverted indexes.

:class:`SQLiteHashBlockingBackend` mirrors
:class:`repro.plan.blocking.HashBlockingBackend` — same ``add`` /
``probe`` / ``candidates`` contract, same per-RCK multi-pass semantics —
but its posting lists live in SQLite rather than dictionaries.  The key
*derivation* is shared outright: each pass wraps the exact
:class:`~repro.plan.blocking.RCKIndex` the in-memory backend would
build, used purely for its compiled key functions, so a record hashes to
the same bucket in both backends by construction (the differential
suite then proves the probes agree).

Derived keys are tuples of strings; they are stored JSON-encoded so the
``(idx, key, side)`` index makes a probe one range scan and a batch
candidates call one self-join.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterable, List, Sequence

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT, RIGHT
from repro.plan.blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    BlockingBackend,
    Pair,
    RCKIndex,
    indexes_from_rcks,
)
from repro.relations.relation import Row


def _encode_key(key: object) -> str:
    """A derived key (tuple of strings) as its canonical text form."""
    return json.dumps(list(key) if isinstance(key, tuple) else key)


class SQLiteHashBlockingBackend(BlockingBackend):
    """Multi-pass hash blocking with postings in the ``buckets`` table."""

    name = "sqlite-hash"

    def __init__(
        self, connection: sqlite3.Connection, indexes: Sequence[RCKIndex]
    ) -> None:
        if not indexes:
            raise ValueError("hash blocking needs at least one index")
        self.connection = connection
        #: The key-deriving index specs (their in-memory buckets unused).
        self.indexes: List[RCKIndex] = list(indexes)

    @classmethod
    def per_rck(
        cls,
        connection: sqlite3.Connection,
        rcks: Sequence[RelativeKey],
        key_length: int = 1,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
    ) -> "SQLiteHashBlockingBackend":
        """One pass per RCK's leading ``key_length`` attribute pairs."""
        return cls(
            connection, indexes_from_rcks(rcks, key_length, encode_attributes)
        )

    # -- streaming -----------------------------------------------------

    def add(self, side: int, row: Row) -> None:
        """Write one posting per pass for an arriving record."""
        self.connection.executemany(
            "INSERT INTO buckets (idx, key, side, tid) VALUES (?, ?, ?, ?)",
            [
                (position, _encode_key(index.key_for(side, row)), side, row.tid)
                for position, index in enumerate(self.indexes)
            ],
        )

    def probe(self, side: int, row: Row) -> List[int]:
        """Other-side tids sharing at least one bucket with ``row``."""
        other = RIGHT if side == LEFT else LEFT
        seen = set()
        for position, index in enumerate(self.indexes):
            seen.update(
                tid
                for (tid,) in self.connection.execute(
                    "SELECT tid FROM buckets "
                    "WHERE idx = ? AND key = ? AND side = ?",
                    (position, _encode_key(index.key_for(side, row)), other),
                )
            )
        return sorted(seen)

    # -- batch ---------------------------------------------------------

    def candidates(self, left=None, right=None) -> List[Pair]:
        """All cross-side pairs sharing a bucket, over every pass.

        The relations are accepted for interface compatibility but the
        join runs on the postings the store already maintains — by
        construction they index exactly the store's rows.
        """
        rows = self.connection.execute(
            "SELECT DISTINCT l.tid, r.tid FROM buckets l "
            "JOIN buckets r ON l.idx = r.idx AND l.key = r.key "
            "WHERE l.side = ? AND r.side = ?",
            (LEFT, RIGHT),
        ).fetchall()
        return sorted((left_tid, right_tid) for left_tid, right_tid in rows)

    # -- introspection -------------------------------------------------

    def index_stats(self) -> dict:
        """Bucket counts and largest bucket per pass, from SQL."""
        stats = {}
        for position, index in enumerate(self.indexes):
            buckets, largest = self.connection.execute(
                "SELECT COUNT(*), COALESCE(MAX(n), 0) FROM ("
                "  SELECT COUNT(*) AS n FROM buckets "
                "  WHERE idx = ? GROUP BY key"
                ")",
                (position,),
            ).fetchone()
            stats[index.name] = {"buckets": buckets, "largest_bucket": largest}
        return stats

    def describe(self) -> str:
        keys = ", ".join(
            "+".join(f"{left}~{right}" for left, right in index.pairs)
            for index in self.indexes
        )
        return f"sqlite-hash({len(self.indexes)} passes: {keys})"

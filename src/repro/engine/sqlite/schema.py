"""The durable store's relational schema.

Five tables hold everything a :class:`~repro.engine.store.MatchStore`
keeps in RAM, normalized so every ingest touches only the rows it
changes (the FDB lesson: keep the derived structures — inverted index
buckets, cluster membership — materialized *beside* the base records so
incremental maintenance is row-at-a-time, and a restart reads nothing):

``meta``
    Key/value strings: schema version, the store configuration (the same
    JSON document a snapshot carries: schema pair, target, RCK triples,
    key length, encoded attributes) and the owning spec's fingerprint.
``records``
    One row per ingested record, keyed ``(side, tid)``, holding both the
    *arrival* values (what indexes and consensus resolution work from)
    and the *current* values (the per-cluster consensus repairs) as JSON
    objects.
``buckets``
    The per-RCK inverted indexes: one row per (index, derived key, side,
    tid) posting.  ``buckets_probe`` makes a streaming probe one range
    scan; a batch candidates call is one self-join on (idx, key).
``ranks``
    The sorted-neighborhood rank encoding: one row per (pass, block,
    sort key, side, tid) element.  ``ranks_window`` keeps a block run
    retrievable in sorted order, so a window probe is one range scan
    over the run (the table is only populated by stores created with
    ``blocking.backend: "sorted-neighborhood"``).
``clusters``
    Union-find with *direct root pointers*: every node stores its
    cluster root, so ``find`` is one point lookup and ``union``
    repoints the smaller cluster's rows (``clusters_root`` makes both
    the size count and the repoint a range scan).
``counters``
    The store's cost ledger (``comparisons``, ``merges``), flushed once
    per commit rather than once per increment.
"""

from __future__ import annotations

import sqlite3

#: Version of the on-disk layout; bumped on any incompatible change.
SQLITE_SCHEMA_VERSION = 1

_TABLES = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS records (
        side    INTEGER NOT NULL,
        tid     INTEGER NOT NULL,
        arrival TEXT NOT NULL,
        current TEXT NOT NULL,
        PRIMARY KEY (side, tid)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS buckets (
        idx  INTEGER NOT NULL,
        key  TEXT NOT NULL,
        side INTEGER NOT NULL,
        tid  INTEGER NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS buckets_probe
        ON buckets (idx, key, side)
    """,
    """
    CREATE TABLE IF NOT EXISTS ranks (
        idx   INTEGER NOT NULL,
        block TEXT NOT NULL,
        key   TEXT NOT NULL,
        side  INTEGER NOT NULL,
        tid   INTEGER NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS ranks_window
        ON ranks (idx, block, key, side, tid)
    """,
    """
    CREATE TABLE IF NOT EXISTS clusters (
        side      INTEGER NOT NULL,
        tid       INTEGER NOT NULL,
        root_side INTEGER NOT NULL,
        root_tid  INTEGER NOT NULL,
        PRIMARY KEY (side, tid)
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS clusters_root
        ON clusters (root_side, root_tid)
    """,
    """
    CREATE TABLE IF NOT EXISTS counters (
        name  TEXT PRIMARY KEY,
        value INTEGER NOT NULL
    )
    """,
)


def initialize(connection: sqlite3.Connection) -> None:
    """Create the store tables in a fresh database (idempotent)."""
    for statement in _TABLES:
        connection.execute(statement)


def read_meta(connection: sqlite3.Connection, key: str):
    """The ``meta`` value for ``key``, or ``None`` when absent."""
    row = connection.execute(
        "SELECT value FROM meta WHERE key = ?", (key,)
    ).fetchone()
    return None if row is None else row[0]


def write_meta(connection: sqlite3.Connection, key: str, value) -> None:
    """Upsert one ``meta`` row."""
    connection.execute(
        "INSERT INTO meta (key, value) VALUES (?, ?) "
        "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
        (key, value),
    )

"""SQLite connection setup for the durable match store.

One function, :func:`connect`, owns every pragma decision so the store,
the migration tool and the tests all open databases the same way:

* **WAL journal mode** — readers (``repro engine stats|query``) never
  block the single writer, and a crash mid-transaction rolls back to the
  last committed ingest instead of corrupting the file.  Filesystems
  that cannot support WAL (some network mounts) silently keep SQLite's
  default journal; the store works either way, durability is just
  coarser.
* ``synchronous=NORMAL`` — the standard WAL pairing: fsync per
  checkpoint, not per commit, which is what makes one commit per ingest
  affordable.
* Python-level transactions — the connection keeps the ``sqlite3``
  default isolation (a transaction opens implicitly at the first write
  and ends at ``commit()``/``rollback()``), so
  :meth:`~repro.engine.sqlite.store.SQLiteMatchStore.commit` maps one
  ingest onto exactly one SQLite transaction.

Read-only opens go through a ``file:...?mode=ro`` URI so ``engine
stats``/``query`` against a live store never take the write lock.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

#: The bytes every SQLite database file starts with.
SQLITE_MAGIC = b"SQLite format 3\x00"


def is_sqlite_file(path) -> bool:
    """Whether ``path`` exists and carries the SQLite file magic.

    The CLI uses this to route an existing ``--store`` file to the right
    backend without trusting its extension.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except (OSError, IsADirectoryError):
        return False


def connect(path, readonly: bool = False) -> sqlite3.Connection:
    """Open (or create) a store database with the canonical pragmas.

    ``readonly=True`` opens via URI ``mode=ro`` — the file must exist —
    and skips the write-side pragmas.
    """
    path = Path(path)
    if readonly:
        connection = sqlite3.connect(
            f"file:{path}?mode=ro", uri=True, check_same_thread=False
        )
    else:
        connection = sqlite3.connect(str(path), check_same_thread=False)
        # Executed outside any transaction (nothing has written yet).
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
    connection.execute("PRAGMA foreign_keys=OFF")
    return connection

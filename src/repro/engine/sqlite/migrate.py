"""Convert engine state between the JSON snapshot and SQLite formats.

Both directions go through the snapshot *document* —
:func:`~repro.engine.snapshot.store_to_dict` already reads any object
implementing the store interface, and
:func:`~repro.engine.snapshot.populate_store` replays a document into
any empty store — so a round trip is lossless by construction: rows
(arrival and current values, original tuple ids), clusters, counters and
the spec fingerprint all survive.

``sqlite →`` writes build the database at a scratch path and rename it
into place, mirroring :func:`~repro.engine.snapshot.save_store`'s
atomicity: a crash mid-migration never leaves a half-written store at
the destination.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

from repro.engine.snapshot import (
    SNAPSHOT_VERSION,
    config_from_dict,
    load_store,
    populate_store,
    save_store,
    store_to_dict,
)

from .store import SQLiteMatchStore


def sqlite_from_dict(data: Dict[str, object], path) -> SQLiteMatchStore:
    """Build a SQLite store at ``path`` from a snapshot document.

    The database is assembled at a sibling scratch path and renamed into
    place on success; ``path`` must not already exist.
    """
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    path = Path(path)
    if path.exists():
        raise ValueError(f"refusing to overwrite existing store {path}")
    scratch = path.with_name(path.name + ".tmp")
    if scratch.exists():
        scratch.unlink()
    store = SQLiteMatchStore(scratch, **config_from_dict(data))
    try:
        populate_store(store, data)
        store.close()  # commits
    except BaseException:
        store.close(commit=False)
        scratch.unlink(missing_ok=True)
        raise
    os.replace(scratch, path)
    return SQLiteMatchStore(path)


def snapshot_to_sqlite(snapshot_path, store_path) -> SQLiteMatchStore:
    """Convert a JSON snapshot file into a SQLite store file."""
    data = json.loads(Path(snapshot_path).read_text(encoding="utf-8"))
    return sqlite_from_dict(data, store_path)


def sqlite_to_snapshot(store_path, snapshot_path) -> None:
    """Convert a SQLite store file into a JSON snapshot file."""
    store = SQLiteMatchStore(store_path)
    try:
        save_store(store, snapshot_path)
    finally:
        store.close(commit=False)


def snapshot_from_sqlite_dict(store: SQLiteMatchStore) -> Dict[str, object]:
    """The store's state as a snapshot document (convenience wrapper)."""
    return store_to_dict(store)


def json_roundtrip_equal(store_a, store_b) -> bool:
    """Whether two stores (any backends) carry identical engine state.

    Compares the canonical snapshot documents minus the fingerprint —
    the same equality the differential suite asserts, packaged for
    callers wanting a quick integrity check after a migration.
    """
    doc_a, doc_b = store_to_dict(store_a), store_to_dict(store_b)
    doc_a.pop("spec_fingerprint"), doc_b.pop("spec_fingerprint")
    return doc_a == doc_b


__all__ = [
    "sqlite_from_dict",
    "snapshot_to_sqlite",
    "sqlite_to_snapshot",
    "snapshot_from_sqlite_dict",
    "json_roundtrip_equal",
]

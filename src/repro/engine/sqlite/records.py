"""A relation view over the ``records`` table: rows read lazily, written through.

:class:`SQLiteRelation` duck-types the parts of
:class:`repro.relations.relation.Relation` the engine uses — insertion,
id lookup, cell updates, iteration — against one side of the ``records``
table.  Two properties make the durable store behave exactly like the
in-memory one:

* **lazy reads** — opening a store loads *nothing*; a row is fetched
  (and then cached) the first time it is touched, so a warm restart is
  O(1) regardless of store size;
* **write-through mutation** — :meth:`insert` and :meth:`set_value`
  update the cache and the table in the same (uncommitted) transaction,
  so a rollback leaves both consistent.

Unlike the base ``Relation``, each record carries *two* value sets: the
arrival values (immutable after insert; index keys and consensus
resolution derive from them) and the current values (rewritten by
cluster consensus repairs).  ``Row`` views hand out copies, so the only
mutation path is :meth:`set_value` — exactly the contract
:class:`~repro.engine.matcher.IncrementalMatcher` relies on.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.schema import RelationSchema
from repro.relations.relation import Row


class SQLiteRelation:
    """One side's records, backed by the ``records`` table."""

    def __init__(
        self, connection: sqlite3.Connection, schema: RelationSchema, side: int
    ) -> None:
        self.connection = connection
        self.schema = schema
        self.side = side
        #: tid -> (arrival values, current values); populated lazily.
        self._cache: Dict[int, Tuple[Dict[str, object], Dict[str, object]]] = {}
        self._count: Optional[int] = None
        self._next_tid: Optional[int] = None

    # ------------------------------------------------------------------
    # Mutation (write-through)
    # ------------------------------------------------------------------

    def insert(
        self, values: Dict[str, object], tid: Optional[int] = None
    ) -> int:
        """Insert a record; arrival and current values start identical."""
        unknown = set(values) - set(self.schema.attribute_names)
        if unknown:
            raise KeyError(
                f"attributes {sorted(unknown)} not in schema {self.schema.name!r}"
            )
        if tid is None:
            tid = self._allocate_tid()
        elif tid in self:
            raise ValueError(f"tuple id {tid} already present")
        complete = {
            name: values.get(name) for name in self.schema.attribute_names
        }
        payload = json.dumps(complete, sort_keys=True)
        self.connection.execute(
            "INSERT INTO records (side, tid, arrival, current) "
            "VALUES (?, ?, ?, ?)",
            (self.side, tid, payload, payload),
        )
        self._cache[tid] = (dict(complete), dict(complete))
        if self._count is not None:
            self._count += 1
        if self._next_tid is not None:
            self._next_tid = max(self._next_tid, tid + 1)
        return tid

    def set_value(self, tid: int, attribute: str, value: object) -> None:
        """Update one cell of the *current* values (arrival is immutable)."""
        if attribute not in self.schema:
            raise KeyError(
                f"{attribute!r} is not an attribute of {self.schema.name!r}"
            )
        _, current = self._fetch(tid)
        current[attribute] = value
        self.connection.execute(
            "UPDATE records SET current = ? WHERE side = ? AND tid = ?",
            (json.dumps(current, sort_keys=True), self.side, tid),
        )

    # ------------------------------------------------------------------
    # Access (lazy, cached)
    # ------------------------------------------------------------------

    def _fetch(self, tid: int) -> Tuple[Dict[str, object], Dict[str, object]]:
        cached = self._cache.get(tid)
        if cached is not None:
            return cached
        row = self.connection.execute(
            "SELECT arrival, current FROM records WHERE side = ? AND tid = ?",
            (self.side, tid),
        ).fetchone()
        if row is None:
            raise KeyError(
                f"no tuple with id {tid} in {self.schema.name!r}"
            )
        entry = (json.loads(row[0]), json.loads(row[1]))
        self._cache[tid] = entry
        return entry

    def arrival_values(self, tid: int) -> Dict[str, object]:
        """The record's values as ingested, before any consensus repair."""
        return dict(self._fetch(tid)[0])

    def __getitem__(self, tid: int) -> Row:
        return Row(tid, dict(self._fetch(tid)[1]))

    def __contains__(self, tid: object) -> bool:
        if tid in self._cache:
            return True
        row = self.connection.execute(
            "SELECT 1 FROM records WHERE side = ? AND tid = ?",
            (self.side, tid),
        ).fetchone()
        return row is not None

    def __iter__(self) -> Iterator[Row]:
        """All rows in insertion order (matching ``Relation`` iteration);
        fetched in one scan, then cached."""
        for tid, arrival, current in self.connection.execute(
            "SELECT tid, arrival, current FROM records "
            "WHERE side = ? ORDER BY rowid",
            (self.side,),
        ).fetchall():
            if tid not in self._cache:
                self._cache[tid] = (json.loads(arrival), json.loads(current))
            yield Row(tid, dict(self._cache[tid][1]))

    def __len__(self) -> int:
        if self._count is None:
            self._count = self.connection.execute(
                "SELECT COUNT(*) FROM records WHERE side = ?", (self.side,)
            ).fetchone()[0]
        return self._count

    def tids(self) -> List[int]:
        """All tuple ids, in insertion order."""
        return [
            row[0]
            for row in self.connection.execute(
                "SELECT tid FROM records WHERE side = ? ORDER BY rowid",
                (self.side,),
            ).fetchall()
        ]

    def rows(self) -> List[Row]:
        """All rows, in insertion order."""
        return list(self)

    def _allocate_tid(self) -> int:
        if self._next_tid is None:
            row = self.connection.execute(
                "SELECT MAX(tid) FROM records WHERE side = ?", (self.side,)
            ).fetchone()
            self._next_tid = 0 if row[0] is None else row[0] + 1
        tid = self._next_tid
        self._next_tid = tid + 1
        return tid

    def invalidate_cache(self) -> None:
        """Drop cached rows (used after a rollback)."""
        self._cache.clear()
        self._count = None
        self._next_tid = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SQLiteRelation({self.schema.name!r}, side={self.side})"

"""`SQLiteMatchStore`: the durable drop-in for :class:`~repro.engine.store.MatchStore`.

Same duck-typed interface the :class:`~repro.engine.matcher.IncrementalMatcher`
drives — records, per-RCK inverted indexes, incremental union-find, cost
counters — but every structure lives in one embedded SQLite database:

* **one ingest = one transaction** — the matcher calls :meth:`commit` at
  the end of each ``ingest``, so a crash mid-record leaves the previous
  consistent state (WAL journal mode; readers never block on the writer);
* **O(1) warm restart** — opening an existing store reads only the
  ``meta`` table (schema version, configuration, fingerprint, counters);
  records, buckets and clusters stay on disk until touched, so resume
  cost is independent of how much has been ingested;
* **identical matching behavior** — key derivation is shared with the
  in-memory backend (:mod:`repro.engine.sqlite.blocking`) and union is
  by size with the same tie order, so both backends produce the same
  matches, clusters, provenance and stats (proven by
  ``tests/engine/test_sqlite_differential.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.rck import RelativeKey
from repro.core.schema import LEFT, RIGHT, ComparableLists
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.plan.blocking import (
    DEFAULT_ENCODED_ATTRIBUTES,
    leading_attribute_pairs,
)
from repro.relations.relation import Row

from ..store import Cluster, Node, _SIDE_TAGS, _as_cluster
from .blocking import SQLiteHashBlockingBackend, SQLiteSNBlockingBackend
from .clusters import DbNode, SQLiteUnionFind
from .connection import connect
from .records import SQLiteRelation
from .schema import (
    SQLITE_SCHEMA_VERSION,
    initialize,
    read_meta,
    write_meta,
)

_TAG_SIDES = {tag: side for side, tag in _SIDE_TAGS.items()}

#: Names of the persisted cost counters.
_COUNTERS = ("comparisons", "merges")


def _to_db(node: Node) -> DbNode:
    tag, tid = node
    return (_TAG_SIDES[tag], tid)


def _to_node(db_node: DbNode) -> Node:
    side, tid = db_node
    return (_SIDE_TAGS[side], tid)


class SQLiteMatchStore:
    """Durable matcher state in one SQLite file.

    Creating a store requires ``target`` and ``rcks`` (the configuration
    is persisted in the ``meta`` table); opening an existing file needs
    only the path — the configuration is reconstructed from ``meta`` and,
    when the caller *does* pass one, verified to match.
    """

    backend_name = "sqlite"

    #: Blocking families this store class can stream under;
    #: ``Workspace.stream`` refuses specs declaring anything else.
    supported_blocking = ("hash", "sorted-neighborhood")

    def __init__(
        self,
        path,
        target: Optional[ComparableLists] = None,
        rcks: Optional[Sequence[RelativeKey]] = None,
        key_length: int = 1,
        encode_attributes: Iterable[str] = DEFAULT_ENCODED_ATTRIBUTES,
        blocking_backend: str = "hash",
        window: int = 10,
        key_pairs=None,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = Path(path)
        self.tracer = tracer
        self.metrics = metrics
        existing = self.path.exists() and self.path.stat().st_size > 0
        self.connection = connect(self.path)
        if existing:
            self._open_existing(
                target,
                rcks,
                key_length,
                encode_attributes,
                blocking_backend,
                window,
                key_pairs,
            )
        else:
            self._create_fresh(
                target,
                rcks,
                key_length,
                encode_attributes,
                blocking_backend,
                window,
                key_pairs,
            )
        self.left = SQLiteRelation(self.connection, self.pair.left, LEFT)
        self.right = SQLiteRelation(self.connection, self.pair.right, RIGHT)
        if self.blocking_backend == "sorted-neighborhood":
            self.blocking = SQLiteSNBlockingBackend.from_pairs(
                self.connection,
                self.key_pairs,
                window=self.window,
                encode_attributes=self.encode_attributes,
            )
        else:
            self.blocking = SQLiteHashBlockingBackend.per_rck(
                self.connection,
                self.rcks,
                key_length=self.key_length,
                encode_attributes=self.encode_attributes,
            )
        self._union_find = SQLiteUnionFind(self.connection)
        self._counters: Dict[str, int] = {
            name: int(read_meta_counter(self.connection, name))
            for name in _COUNTERS
        }
        self._counters_dirty = False
        self._fingerprint = read_meta(self.connection, "spec_fingerprint")

    # ------------------------------------------------------------------
    # Open / create
    # ------------------------------------------------------------------

    def _create_fresh(
        self,
        target,
        rcks,
        key_length,
        encode_attributes,
        blocking_backend,
        window,
        key_pairs,
    ):
        if target is None or rcks is None:
            raise ValueError(
                f"creating a new SQLite store at {self.path} requires "
                "target and rcks"
            )
        if blocking_backend not in ("hash", "sorted-neighborhood"):
            raise ValueError(
                f"unsupported blocking backend {blocking_backend!r}; "
                "stores stream under 'hash' or 'sorted-neighborhood'"
            )
        initialize(self.connection)
        self.target = target
        self.pair = target.pair
        self.rcks = list(rcks)
        self.key_length = key_length
        self.encode_attributes = tuple(encode_attributes)
        self.blocking_backend = blocking_backend
        self.window = int(window)
        # Resolve the SN sort-key recipe at creation time so the stored
        # configuration is self-contained (same default as the spec
        # compiler: the RCKs' leading attribute pairs).
        if key_pairs:
            self.key_pairs = tuple(tuple(pair) for pair in key_pairs)
        elif blocking_backend == "sorted-neighborhood":
            self.key_pairs = tuple(leading_attribute_pairs(self.rcks, 3))
        else:
            self.key_pairs = None
        # Import here to avoid a cycle: snapshot imports the base store.
        from ..snapshot import config_to_dict

        write_meta(
            self.connection, "schema_version", str(SQLITE_SCHEMA_VERSION)
        )
        write_meta(
            self.connection,
            "config",
            json.dumps(config_to_dict(self), sort_keys=True),
        )
        for name in _COUNTERS:
            self.connection.execute(
                "INSERT OR IGNORE INTO counters (name, value) VALUES (?, 0)",
                (name,),
            )
        self.connection.commit()

    def _open_existing(
        self,
        target,
        rcks,
        key_length,
        encode_attributes,
        blocking_backend,
        window,
        key_pairs,
    ):
        version = read_meta(self.connection, "schema_version")
        if version != str(SQLITE_SCHEMA_VERSION):
            raise ValueError(
                f"unsupported store schema version {version!r} in "
                f"{self.path}; this build reads version "
                f"{SQLITE_SCHEMA_VERSION}"
            )
        raw = read_meta(self.connection, "config")
        if raw is None:
            raise ValueError(f"store {self.path} has no configuration")
        from ..snapshot import config_from_dict

        config = config_from_dict(json.loads(raw))
        self.target = config["target"]
        self.pair = self.target.pair
        self.rcks = config["rcks"]
        self.key_length = config["key_length"]
        self.encode_attributes = config["encode_attributes"]
        # Stores written before the blocking section existed were all
        # hash-blocked; config_from_dict defaults accordingly.
        self.blocking_backend = config["blocking_backend"]
        self.window = config["window"]
        stored_pairs = config["key_pairs"]
        self.key_pairs = (
            tuple(tuple(pair) for pair in stored_pairs)
            if stored_pairs
            else None
        )
        requested_pairs = (
            tuple(tuple(pair) for pair in key_pairs) if key_pairs else None
        )
        if target is not None and (
            target != self.target
            or (rcks is not None and list(rcks) != self.rcks)
            or key_length != self.key_length
            or tuple(encode_attributes) != self.encode_attributes
            or blocking_backend != self.blocking_backend
            or (
                blocking_backend == "sorted-neighborhood"
                and (
                    int(window) != self.window
                    or (
                        requested_pairs is not None
                        and requested_pairs != self.key_pairs
                    )
                )
            )
        ):
            raise ValueError(
                f"store {self.path} was created with a different "
                "configuration (target/RCKs/key length/blocking) than "
                "requested"
            )

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def relation(self, side: int) -> SQLiteRelation:
        """The relation holding ``side``'s records."""
        return self.left if side == LEFT else self.right

    @property
    def indexes(self):
        """The key-deriving index specs (shared with the in-memory backend).

        Empty for sorted-neighborhood stores, whose single rank index is
        not an :class:`~repro.plan.blocking.RCKIndex`.
        """
        return getattr(self.blocking, "indexes", [])

    def add(self, side: int, values: Dict[str, object], tid=None) -> int:
        """Insert an arriving record; index it; register its singleton."""
        with self.tracer.span(
            "store.upsert", side=_SIDE_TAGS[side]
        ):
            tid = self.relation(side).insert(values, tid=tid)
            self.blocking.add(side, self.relation(side)[tid])
            self._union_find.find((side, tid))
        if self.metrics is not None:
            self.metrics.count("store.upserts")
        return tid

    def arrival_values(self, side: int, tid: int) -> Dict[str, object]:
        """The record's values as ingested (pre-repair)."""
        return self.relation(side).arrival_values(tid)

    def arrival_row(self, side: int, tid: int) -> Row:
        """A row view over the arrival values."""
        return Row(tid, self.arrival_values(side, tid))

    def neighbors(self, side: int, row: Row) -> List[int]:
        """Other-side candidates sharing an index bucket with ``row``."""
        with self.tracer.span("store.probe", side=_SIDE_TAGS[side]):
            found = self.blocking.probe(side, row)
        if self.metrics is not None:
            self.metrics.count("store.probes")
        return found

    # ------------------------------------------------------------------
    # Clusters (incremental union-find)
    # ------------------------------------------------------------------

    def find(self, node: Node) -> Node:
        """Root of ``node``'s cluster, registering it when unseen."""
        return _to_node(self._union_find.find(_to_db(node)))

    def union(self, a: Node, b: Node) -> bool:
        """Merge two clusters; True when they were distinct."""
        merged = self._union_find.union(_to_db(a), _to_db(b))
        if merged:
            self.merges += 1
        return merged

    def same(self, a: Node, b: Node) -> bool:
        """Whether two records are currently in one cluster."""
        return self._union_find.find(_to_db(a)) == self._union_find.find(
            _to_db(b)
        )

    def cluster_nodes(self, side: int, tid: int) -> Set[Node]:
        """All nodes in the cluster of the given record."""
        root = self._union_find.find((side, tid))
        return {_to_node(member) for member in self._union_find.members(root)}

    def cluster_of(self, side: int, tid: int) -> Cluster:
        """The record's cluster as a :class:`~repro.matching.clustering.Cluster`."""
        return _as_cluster(self.cluster_nodes(side, tid))

    def clusters(self, include_singletons: bool = False) -> List[Cluster]:
        """All clusters, deterministically ordered."""
        found = [
            _as_cluster({_to_node(member) for member in members})
            for members in self._union_find.all_clusters()
            if include_singletons or len(members) > 1
        ]
        found.sort(
            key=lambda c: (sorted(c.left_tids), sorted(c.right_tids))
        )
        return found

    # ------------------------------------------------------------------
    # Counters (memory-cached, flushed per commit)
    # ------------------------------------------------------------------

    @property
    def comparisons(self) -> int:
        return self._counters["comparisons"]

    @comparisons.setter
    def comparisons(self, value: int) -> None:
        self._counters["comparisons"] = value
        self._counters_dirty = True

    @property
    def merges(self) -> int:
        return self._counters["merges"]

    @merges.setter
    def merges(self, value: int) -> None:
        self._counters["merges"] = value
        self._counters_dirty = True

    # ------------------------------------------------------------------
    # Fingerprint
    # ------------------------------------------------------------------

    @property
    def spec_fingerprint(self) -> Optional[str]:
        return self._fingerprint

    @spec_fingerprint.setter
    def spec_fingerprint(self, value: Optional[str]) -> None:
        self._fingerprint = value
        write_meta(self.connection, "spec_fingerprint", value)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Flush counters and commit the current transaction."""
        if self._counters_dirty:
            self.connection.executemany(
                "INSERT INTO counters (name, value) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET value = excluded.value",
                list(self._counters.items()),
            )
            self._counters_dirty = False
        self.connection.commit()
        if self.metrics is not None:
            self.metrics.count("store.commits")
            self.metrics.gauge("store.disk_bytes", self.disk_bytes())

    def rollback(self) -> None:
        """Discard the uncommitted transaction and drop stale caches."""
        self.connection.rollback()
        self.left.invalidate_cache()
        self.right.invalidate_cache()
        self._counters = {
            name: int(read_meta_counter(self.connection, name))
            for name in _COUNTERS
        }
        self._counters_dirty = False
        self._fingerprint = read_meta(self.connection, "spec_fingerprint")

    def close(self, commit: bool = True) -> None:
        """Commit (by default) and close the connection."""
        if commit:
            self.commit()
        self.connection.close()

    def __enter__(self) -> "SQLiteMatchStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(commit=exc_type is None)

    def disk_bytes(self) -> int:
        """Bytes on disk, including the WAL and shared-memory sidecars."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            sidecar = Path(str(self.path) + suffix)
            if sidecar.exists():
                total += sidecar.stat().st_size
        return total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Cost and size counters, mirroring the in-memory store's shape."""
        clusters = self.clusters()
        return {
            "backend": self.backend_name,
            "path": str(self.path),
            "disk_bytes": self.disk_bytes(),
            "left_rows": len(self.left),
            "right_rows": len(self.right),
            "matched_clusters": len(clusters),
            "largest_cluster": max((c.size for c in clusters), default=0),
            "comparisons": self.comparisons,
            "merges": self.merges,
            "indexes": self.blocking.index_stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SQLiteMatchStore({str(self.path)!r}, "
            f"left={len(self.left)}, right={len(self.right)})"
        )


def read_meta_counter(connection, name: str) -> int:
    """One persisted counter's value (0 when the row is absent)."""
    row = connection.execute(
        "SELECT value FROM counters WHERE name = ?", (name,)
    ).fetchone()
    return 0 if row is None else int(row[0])

"""Incremental streaming entity-resolution engine.

Where :mod:`repro.matching` re-runs blocking, comparison and enforcement
from scratch on each batch, this subsystem matches records *as they
arrive*:

* :class:`~repro.engine.store.MatchStore` — the warm state: ingested
  records, one inverted index per deduced RCK, an incremental union-find
  over record identities, and cost counters;
* :class:`~repro.engine.matcher.IncrementalMatcher` — per-record ingest
  that probes only the affected index buckets and chases MDs on the delta;
* :mod:`~repro.engine.snapshot` — save/restore the store to disk so
  ingestion resumes exactly where it stopped;
* :mod:`~repro.engine.sqlite` — the durable backend: the same store
  interface over one embedded SQLite database (WAL, one transaction per
  ingest, O(1) warm restart);
* ``repro engine ingest|stats|query|migrate`` — the CLI surface
  (:mod:`repro.cli`).

Typical use::

    from repro.core.schema import RIGHT
    from repro.engine import IncrementalMatcher

    matcher = IncrementalMatcher(sigma, target, top_k=5)
    matcher.bootstrap(credit, billing)          # warm-start from batch data
    result = matcher.ingest(RIGHT, new_record)  # then stream
    print(matcher.store.cluster_of(result.side, result.tid))
"""

from .indexes import DEFAULT_ENCODED_ATTRIBUTES, RCKIndex, indexes_from_rcks
from .matcher import BootstrapResult, IncrementalMatcher, IngestResult
from .snapshot import (
    SNAPSHOT_VERSION,
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)
from .sqlite import (
    SQLITE_SCHEMA_VERSION,
    SQLiteMatchStore,
    is_sqlite_file,
    snapshot_to_sqlite,
    sqlite_to_snapshot,
)
from .store import MatchStore, Node, node_of

__all__ = [
    "BootstrapResult",
    "DEFAULT_ENCODED_ATTRIBUTES",
    "IncrementalMatcher",
    "IngestResult",
    "MatchStore",
    "Node",
    "RCKIndex",
    "SNAPSHOT_VERSION",
    "SQLITE_SCHEMA_VERSION",
    "SQLiteMatchStore",
    "indexes_from_rcks",
    "is_sqlite_file",
    "load_store",
    "node_of",
    "save_store",
    "snapshot_to_sqlite",
    "sqlite_to_snapshot",
    "store_from_dict",
    "store_to_dict",
]

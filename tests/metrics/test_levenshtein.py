"""Unit tests for the Levenshtein metric."""

import pytest

from repro.metrics.levenshtein import Levenshtein, levenshtein_distance


class TestDistance:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_empty_vs_nonempty(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein_distance("", "") == 0

    def test_classic_kitten(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_single_substitution(self):
        assert levenshtein_distance("Mark", "Marx") == 1

    def test_single_insertion(self):
        assert levenshtein_distance("abc", "abxc") == 1

    def test_single_deletion(self):
        assert levenshtein_distance("abcd", "abd") == 1

    def test_transposition_costs_two(self):
        # Plain Levenshtein has no transposition operation.
        assert levenshtein_distance("ab", "ba") == 2

    def test_symmetry(self):
        assert levenshtein_distance("flaw", "lawn") == levenshtein_distance(
            "lawn", "flaw"
        )

    def test_completely_different(self):
        assert levenshtein_distance("abc", "xyz") == 3


class TestSimilarity:
    def test_identical_is_one(self):
        assert Levenshtein().similarity("same", "same") == 1.0

    def test_empty_pair_is_one(self):
        assert Levenshtein().similarity("", "") == 1.0

    def test_disjoint_is_zero(self):
        assert Levenshtein().similarity("abc", "xyz") == 0.0

    def test_normalization(self):
        # one edit over max length 4
        assert Levenshtein().similarity("Mark", "Marx") == pytest.approx(0.75)

    def test_range(self):
        sim = Levenshtein().similarity("Clifford", "Clivord")
        assert 0.0 <= sim <= 1.0


class TestSimilarThreshold:
    def test_matches_full_computation(self):
        metric = Levenshtein()
        for left, right in [
            ("Mark", "Marx"),
            ("Clifford", "Clivord"),
            ("a", "abcdef"),
            ("", "x"),
        ]:
            for theta in (0.5, 0.8, 0.9):
                assert metric.similar(left, right, theta) == (
                    metric.similarity(left, right) >= theta
                )

    def test_length_gap_early_exit(self):
        # distance >= length gap, so a huge gap must fail for high theta
        assert not Levenshtein().similar("ab", "abcdefghij", 0.9)

    def test_empty_pair(self):
        assert Levenshtein().similar("", "", 1.0)

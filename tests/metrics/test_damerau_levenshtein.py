"""Unit + property tests for the paper's DL metric and its threshold rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.damerau_levenshtein import (
    PAPER_THETA,
    DamerauLevenshtein,
    damerau_levenshtein_distance,
    damerau_levenshtein_within,
    paper_dl_operator,
)
from repro.metrics.levenshtein import levenshtein_distance

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12
)


class TestDistance:
    def test_identical(self):
        assert damerau_levenshtein_distance("same", "same") == 0

    def test_substitution(self):
        assert damerau_levenshtein_distance("Mark", "Marx") == 1

    def test_adjacent_transposition_costs_one(self):
        assert damerau_levenshtein_distance("abcd", "acbd") == 1

    def test_osa_classic_ca_abc(self):
        # The OSA variant gives 3 here (true Damerau distance would be 2).
        assert damerau_levenshtein_distance("ca", "abc") == 3

    def test_empty_sides(self):
        assert damerau_levenshtein_distance("", "abc") == 3
        assert damerau_levenshtein_distance("abc", "") == 3

    def test_paper_example_clifford(self):
        # "Clifford" vs "Clivord": substitution f→v plus deletion of one f.
        assert damerau_levenshtein_distance("Clifford", "Clivord") == 2

    @given(_words, _words)
    def test_never_exceeds_levenshtein(self, left, right):
        assert damerau_levenshtein_distance(
            left, right
        ) <= levenshtein_distance(left, right)

    @given(_words, _words)
    def test_symmetric(self, left, right):
        assert damerau_levenshtein_distance(
            left, right
        ) == damerau_levenshtein_distance(right, left)

    @given(_words)
    def test_identity(self, word):
        assert damerau_levenshtein_distance(word, word) == 0


class TestWithin:
    @given(_words, _words, st.integers(min_value=0, max_value=6))
    @settings(max_examples=300)
    def test_agrees_with_full_distance(self, left, right, bound):
        expected = damerau_levenshtein_distance(left, right) <= bound
        assert damerau_levenshtein_within(left, right, bound) == expected

    def test_negative_bound(self):
        assert not damerau_levenshtein_within("a", "a", -1)

    def test_zero_bound_identical(self):
        assert damerau_levenshtein_within("abc", "abc", 0)

    def test_zero_bound_different(self):
        assert not damerau_levenshtein_within("abc", "abd", 0)


class TestPaperOperator:
    def test_mark_marx_match(self):
        # Example 1.1: "Mark" ≈d "Marx" under the DL metric.
        operator = paper_dl_operator()
        assert operator("Mark", "Marx")

    def test_clifford_clivord_match(self):
        # DL distance 2, ceil budget ⌈(1-0.8)*8⌉ = 2 → a match at θ = 0.8.
        assert paper_dl_operator()("Clifford", "Clivord")
        # At θ = 0.9 the budget shrinks to ⌈0.8⌉ = 1 → no match.
        assert not paper_dl_operator(0.9)("Clifford", "Clivord")

    def test_threshold_rule_matches_section_6(self):
        # v ≈θ v' iff DL(v, v') <= ⌈(1 − θ)·max(|v|, |v'|)⌉ (budget
        # rounded up so the paper's Mark ≈d Marx example holds).
        import math

        metric = DamerauLevenshtein()
        for left, right in [("Mark", "Marx"), ("smith", "smyth"), ("a", "b"),
                            ("Clifford", "Clivord"), ("Mark", "M.")]:
            distance = damerau_levenshtein_distance(left, right)
            bound = math.ceil(
                (1 - PAPER_THETA) * max(len(left), len(right)) - 1e-9
            )
            assert paper_dl_operator()(left, right) == (distance <= bound)
            assert metric.similar(left, right, PAPER_THETA) == (
                distance <= bound
            )

    def test_nulls_never_match(self):
        operator = paper_dl_operator()
        assert not operator(None, "x")
        assert not operator("x", None)
        assert not operator(None, None)

    def test_paper_theta_value(self):
        assert PAPER_THETA == pytest.approx(0.8)

    @given(_words, _words)
    def test_operator_name_stable(self, left, right):
        operator = paper_dl_operator()
        assert operator.name == "dl(0.8)"

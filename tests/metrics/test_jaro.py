"""Unit tests for Jaro and Jaro–Winkler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.jaro import (
    Jaro,
    JaroWinkler,
    jaro_similarity,
    jaro_winkler_similarity,
)

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12
)


class TestJaro:
    def test_classic_martha(self):
        assert jaro_similarity("MARTHA", "MARHTA") == pytest.approx(
            0.944444, abs=1e-5
        )

    def test_classic_dixon(self):
        assert jaro_similarity("DIXON", "DICKSONX") == pytest.approx(
            0.766667, abs=1e-5
        )

    def test_identical(self):
        assert jaro_similarity("same", "same") == 1.0

    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty_one_side(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_both_empty(self):
        assert jaro_similarity("", "") == 1.0

    @given(_words, _words)
    def test_symmetric(self, left, right):
        assert jaro_similarity(left, right) == pytest.approx(
            jaro_similarity(right, left)
        )

    @given(_words, _words)
    def test_bounded(self, left, right):
        assert 0.0 <= jaro_similarity(left, right) <= 1.0


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler_similarity("MARTHA", "MARHTA") > jaro_similarity(
            "MARTHA", "MARHTA"
        )

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler_similarity("XMARTHA", "MARHTA") == pytest.approx(
            jaro_similarity("XMARTHA", "MARHTA")
        )

    def test_prefix_capped_at_four(self):
        # identical 10-char prefix must be treated like a 4-char one
        base = jaro_similarity("abcdefghij", "abcdefghix")
        boosted = jaro_winkler_similarity("abcdefghij", "abcdefghix")
        assert boosted == pytest.approx(base + 4 * 0.1 * (1 - base))

    @given(_words, _words)
    def test_bounded(self, left, right):
        assert 0.0 <= jaro_winkler_similarity(left, right) <= 1.0

    @given(_words, _words)
    def test_at_least_jaro(self, left, right):
        assert jaro_winkler_similarity(left, right) >= jaro_similarity(
            left, right
        ) - 1e-12

    def test_invalid_prefix_scale_rejected(self):
        with pytest.raises(ValueError):
            JaroWinkler(prefix_scale=0.5)

    def test_metric_classes_expose_names(self):
        assert Jaro().name == "jaro"
        assert JaroWinkler().name == "jw"

"""Tests for synonym tables and synonymized metrics."""

import pytest

from repro.metrics.damerau_levenshtein import DamerauLevenshtein
from repro.metrics.registry import default_registry
from repro.metrics.synonyms import (
    SynonymTable,
    SynonymizedMetric,
    common_nickname_synonyms,
    merged_tables,
    register_synonym_metrics,
    us_address_synonyms,
)


class TestSynonymTable:
    def test_token_replacement(self):
        table = SynonymTable({"St": "Street"})
        assert table.normalize("10 Oak St") == "10 Oak Street"

    def test_value_replacement(self):
        table = us_address_synonyms()
        assert table.normalize("USA") == "United States"
        assert table.normalize("u.s.a.") == "United States"

    def test_case_insensitive_lookup(self):
        table = SynonymTable({"St": "Street"})
        assert table.canonical_token("st") == "Street"
        assert table.canonical_token("ST") == "Street"

    def test_unmapped_token_unchanged(self):
        table = SynonymTable({"St": "Street"})
        assert table.canonical_token("Oak") == "Oak"

    def test_chain_resolution(self):
        table = SynonymTable({"Wm": "Bill", "Bill": "William"})
        assert table.canonical_token("Wm") == "William"

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            SynonymTable({"a": "b", "b": "a"})

    def test_self_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            SynonymTable({"a": "A", "A": "a"})

    def test_no_change_preserves_original(self):
        table = SynonymTable({"St": "Street"})
        assert table.normalize("10 Oak Road, NJ") == "10 Oak Road, NJ"

    def test_len(self):
        assert len(SynonymTable({"a": "x"}, {"b": "y"})) == 2

    def test_merged_tables(self):
        merged = merged_tables(
            [us_address_synonyms(), common_nickname_synonyms()]
        )
        assert merged.canonical_token("St") == "Street"
        assert merged.canonical_token("Bob") == "Robert"


class TestSynonymizedMetric:
    @pytest.fixture
    def metric(self):
        return SynonymizedMetric(DamerauLevenshtein(), us_address_synonyms())

    def test_name(self, metric):
        assert metric.name == "syn_dl"

    def test_synonyms_become_identical(self, metric):
        assert metric.similarity("10 Oak St", "10 Oak Street") == 1.0
        assert metric.similar("10 Oak St", "10 Oak Street", 1.0)

    def test_base_similarity_after_normalization(self, metric):
        # One typo after normalization: high but not perfect similarity.
        assert 0.8 < metric.similarity("10 Oak St", "10 Oak Streex") < 1.0

    def test_axioms_preserved(self, metric):
        operator = metric.thresholded(0.8)
        assert operator("anything", "anything")  # reflexive
        assert operator("10 Oak St", "10 Oak Street") == operator(
            "10 Oak Street", "10 Oak St"
        )  # symmetric

    def test_nickname_matching(self):
        metric = SynonymizedMetric(
            DamerauLevenshtein(), common_nickname_synonyms()
        )
        assert metric.similar("Bill", "William", 1.0)
        assert metric.similar("Bob", "Robert", 1.0)
        assert not metric.similar("Bill", "Robert", 0.8)


class TestRegistration:
    def test_registered_operators_resolve(self):
        registry = default_registry()
        names = register_synonym_metrics(registry, us_address_synonyms())
        assert "syn_dl" in names
        operator = registry.resolve("syn_dl(0.9)")
        assert operator("10 Oak St", "10 Oak Street")

    def test_synonym_operator_usable_in_md(self, pair):
        """The extension's point: synonym operators inside MDs."""
        from repro.core.md import MatchingDependency
        from repro.core.semantics import InstancePair, lhs_matches
        from repro.datagen.generator import figure1_instances
        from repro.metrics.registry import default_registry

        registry = default_registry()
        register_synonym_metrics(registry, us_address_synonyms())
        dependency = MatchingDependency(
            pair,
            [("addr", "post", "syn_dl(0.9)")],
            [("FN", "FN")],
        )
        _, credit, billing = figure1_instances()
        instance = InstancePair(pair, credit, billing)
        assert lhs_matches(dependency, instance, 0, 0, registry)

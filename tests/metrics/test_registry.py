"""Unit tests for operator-name resolution."""

import pytest

from repro.metrics.base import ThresholdOperator, exact_equality
from repro.metrics.levenshtein import Levenshtein
from repro.metrics.registry import EQ, MetricRegistry, default_registry


class TestResolve:
    def test_equality_name(self):
        registry = default_registry()
        assert registry.resolve(EQ) is exact_equality

    def test_thresholded_metric(self):
        registry = default_registry()
        operator = registry.resolve("dl(0.8)")
        assert operator("Mark", "Marx")
        assert not operator("Mark", "David")

    def test_all_default_metrics_resolvable(self):
        registry = default_registry()
        for name in registry.known_metrics():
            predicate = registry.resolve(f"{name}(0.9)")
            assert predicate("same", "same")  # equality subsumption

    def test_cache_returns_same_object(self):
        registry = default_registry()
        assert registry.resolve("lev(0.8)") is registry.resolve("lev(0.8)")

    def test_distinct_thresholds_distinct_operators(self):
        registry = default_registry()
        assert registry.resolve("lev(0.8)") is not registry.resolve("lev(0.9)")

    def test_unknown_metric(self):
        with pytest.raises(KeyError, match="unknown metric"):
            default_registry().resolve("nosuch(0.5)")

    @pytest.mark.parametrize(
        "bad", ["dl", "dl()", "dl(2.0)", "dl(-0.1)", "(0.8)", "dl 0.8"]
    )
    def test_malformed_names(self, bad):
        with pytest.raises(ValueError):
            default_registry().resolve(bad)


class TestRegistration:
    def test_register_custom_metric(self):
        registry = MetricRegistry()
        registry.register("lev", Levenshtein)
        assert registry.resolve("lev(0.5)")("abcd", "abcx")

    def test_reregister_invalidates_cache(self):
        registry = MetricRegistry()
        registry.register("lev", Levenshtein)
        first = registry.resolve("lev(0.5)")
        registry.register("lev", Levenshtein)
        assert registry.resolve("lev(0.5)") is not first

    def test_metric_lookup_error_lists_known(self):
        registry = MetricRegistry()
        registry.register("lev", Levenshtein)
        with pytest.raises(KeyError, match="lev"):
            registry.metric("jaro")


class TestThresholdOperator:
    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            ThresholdOperator(Levenshtein(), 1.5)

    def test_name_format(self):
        assert ThresholdOperator(Levenshtein(), 0.8).name == "lev(0.8)"

    def test_equality_subsumption_even_at_theta_one(self):
        operator = ThresholdOperator(Levenshtein(), 1.0)
        assert operator("exact", "exact")

    def test_none_handling(self):
        operator = ThresholdOperator(Levenshtein(), 0.0)
        assert not operator(None, None)

    def test_non_string_inputs_coerced(self):
        operator = ThresholdOperator(Levenshtein(), 0.5)
        assert operator(1234, "1234")

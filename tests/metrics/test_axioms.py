"""Property tests: every thresholded metric satisfies the generic axioms.

Section 2.1 assumes each similarity operator is (a) reflexive,
(b) symmetric, and (c) subsumes equality.  These are the only properties
the reasoning machinery relies on, so every operator the registry can
produce must satisfy them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.registry import default_registry

_REGISTRY = default_registry()
_OPERATOR_NAMES = [
    f"{metric}(0.8)" for metric in _REGISTRY.known_metrics()
] + ["="]

_values = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122), max_size=12
)


@pytest.mark.parametrize("operator_name", _OPERATOR_NAMES)
class TestGenericAxioms:
    @given(value=_values)
    @settings(max_examples=50)
    def test_reflexive(self, operator_name, value):
        operator = _REGISTRY.resolve(operator_name)
        assert operator(value, value)

    @given(left=_values, right=_values)
    @settings(max_examples=50)
    def test_symmetric(self, operator_name, left, right):
        operator = _REGISTRY.resolve(operator_name)
        assert operator(left, right) == operator(right, left)

    @given(left=_values, right=_values)
    @settings(max_examples=50)
    def test_subsumes_equality(self, operator_name, left, right):
        operator = _REGISTRY.resolve(operator_name)
        if left == right:
            assert operator(left, right)


def test_similarity_not_assumed_transitive():
    """Section 2.1: ≈ is *not* transitive in general — exhibit a witness."""
    operator = _REGISTRY.resolve("lev(0.6)")
    # Each neighbour is within the edit budget; the endpoints are not.
    assert operator("aaaaa", "aaabb")
    assert operator("aaabb", "abbbb")
    assert not operator("aaaaa", "abbbb")

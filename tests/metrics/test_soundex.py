"""Unit tests for the Soundex encoder used in blocking keys."""

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.soundex import SoundexMetric, soundex

_words = st.text(
    alphabet=st.characters(min_codepoint=65, max_codepoint=122), max_size=15
)


class TestSoundexCodes:
    def test_classic_robert_rupert(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"

    def test_classic_ashcraft(self):
        # H between S and C is transparent: S and C codes merge.
        assert soundex("Ashcraft") == "A261"

    def test_classic_tymczak(self):
        assert soundex("Tymczak") == "T522"

    def test_classic_pfister(self):
        assert soundex("Pfister") == "P236"

    def test_honeyman(self):
        assert soundex("Honeyman") == "H555"

    def test_paper_clifford_clivord(self):
        # The Fig. 1 misspelling blocks with the original under Soundex.
        assert soundex("Clifford") == soundex("Clivord")

    def test_vowel_separator_allows_repeat(self):
        # Adjacent same-code letters collapse, but a vowel resets.
        assert soundex("Gauss") == "G200"

    def test_padding_short_codes(self):
        assert soundex("Lee") == "L000"

    def test_empty_and_non_alpha(self):
        assert soundex("") == "0000"
        assert soundex("12345") == "0000"

    def test_case_insensitive(self):
        assert soundex("CLIFFORD") == soundex("clifford")

    def test_ignores_embedded_digits(self):
        assert soundex("Cl1fford") == soundex("Clfford")

    @given(_words)
    def test_shape_invariant(self, word):
        code = soundex(word)
        assert len(code) == 4
        assert code[0].isalpha() or code == "0000"
        assert all(ch.isdigit() for ch in code[1:])


class TestSoundexMetric:
    def test_binary_similarity(self):
        metric = SoundexMetric()
        assert metric.similarity("Robert", "Rupert") == 1.0
        assert metric.similarity("Robert", "Smith") == 0.0

    def test_thresholded_operator(self):
        operator = SoundexMetric().thresholded(0.5)
        assert operator("Clifford", "Clivord")
        assert not operator("Clifford", "Jones")

"""Unit tests for the q-gram and token-Jaccard metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.jaccard import Jaccard, jaccard_similarity, tokenize
from repro.metrics.qgrams import QGram, qgram_profile, qgram_similarity

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=15
)


class TestQGramProfile:
    def test_unpadded_bigrams(self):
        assert sorted(qgram_profile("abc", q=2, pad=False)) == ["ab", "bc"]

    def test_padded_count(self):
        # L + q - 1 grams with padding
        assert sum(qgram_profile("abc", q=2).values()) == 4

    def test_multiset_counts_repeats(self):
        profile = qgram_profile("aaa", q=2, pad=False)
        assert profile["aa"] == 2

    def test_short_string_unpadded_empty(self):
        assert qgram_profile("a", q=2, pad=False) == {}

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgram_profile("abc", q=0)

    def test_qgram_metric_rejects_bad_q(self):
        with pytest.raises(ValueError):
            QGram(0)


class TestQGramSimilarity:
    def test_identical(self):
        assert qgram_similarity("abc", "abc") == 1.0

    def test_disjoint(self):
        assert qgram_similarity("aaa", "zzz") == 0.0

    def test_both_empty(self):
        assert qgram_similarity("", "") == 1.0

    def test_small_edit_high_similarity(self):
        assert qgram_similarity("clifford", "clifforx") > 0.6

    @given(_words, _words)
    def test_symmetric_and_bounded(self, left, right):
        value = qgram_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(qgram_similarity(right, left))

    def test_metric_name_includes_q(self):
        assert QGram(3).name == "qgram3"


class TestTokenize:
    def test_basic(self):
        assert tokenize("10 Oak Street, MH") == {"10", "oak", "street", "mh"}

    def test_case_folding(self):
        assert tokenize("OAK oak Oak") == {"oak"}

    def test_empty(self):
        assert tokenize("") == frozenset()

    def test_punctuation_only(self):
        assert tokenize(",,, --- !!!") == frozenset()


class TestJaccard:
    def test_paper_style_addresses(self):
        assert jaccard_similarity("10 Oak Street", "10 Oak St") == pytest.approx(
            0.5
        )

    def test_identical(self):
        assert jaccard_similarity("a b c", "a b c") == 1.0

    def test_disjoint(self):
        assert jaccard_similarity("a b", "c d") == 0.0

    def test_word_order_invariant(self):
        assert jaccard_similarity("oak street", "street oak") == 1.0

    @given(_words, _words)
    def test_bounded(self, left, right):
        assert 0.0 <= jaccard_similarity(left, right) <= 1.0

    def test_metric_class(self):
        assert Jaccard().similarity("a b", "a c") == pytest.approx(1 / 3)

"""Smoke and shape tests for the experiment drivers (scaled down)."""

import pytest

from repro.experiments import exp_blocking, exp_fs, exp_scalability, exp_sn
from repro.experiments.harness import Table, Timer, records_to_table, timed


class TestHarness:
    def test_timed(self):
        result, seconds = timed(lambda x: x + 1, 41)
        assert result == 42
        assert seconds >= 0

    def test_timer_accumulates(self):
        timer = Timer()
        with timer.measure():
            pass
        with timer.measure():
            pass
        assert timer.seconds >= 0

    def test_table_rendering(self):
        table = Table("caption", ["a", "b"])
        table.add(1, 2.5)
        text = table.render()
        assert "caption" in text
        assert "2.500" in text

    def test_table_row_width_validation(self):
        table = Table("c", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_records_to_table(self):
        table = records_to_table("t", [{"x": 1, "y": 2}])
        assert table.columns == ["x", "y"]
        assert "1" in table.render()

    def test_records_to_table_empty(self):
        assert records_to_table("t", []).rows == []


class TestScalability:
    def test_fig8a_point(self):
        records = exp_scalability.fig8a(
            card_values=[20], y_lengths=[4], m=3, seed=0
        )
        assert len(records) == 1
        assert records[0]["seconds"] >= 0
        assert records[0]["card(Sigma)"] == 20

    def test_fig8b_point(self):
        records = exp_scalability.fig8b(
            m_values=[2, 4], card=20, y_lengths=[4], seed=0
        )
        assert len(records) == 2

    def test_fig8c_counts(self):
        records = exp_scalability.fig8c(
            card_values=[10], y_lengths=[4], seed=0
        )
        assert records[0]["total RCKs"] >= 1

    def test_render(self):
        text = exp_scalability.render_fig8(
            exp_scalability.fig8a([10], [4], m=2),
            exp_scalability.fig8b([2], card=10, y_lengths=[4]),
            exp_scalability.fig8c([10], [4]),
        )
        assert "Fig 8(a)" in text
        assert "Fig 8(c)" in text


class TestMatchingExperiments:
    @pytest.fixture(scope="class")
    def fs_record(self):
        return exp_fs.run_point(300, seed=3)

    @pytest.fixture(scope="class")
    def sn_record(self):
        return exp_sn.run_point(300, seed=3)

    def test_fs_record_fields(self, fs_record):
        for field in (
            "K", "FSrck precision", "FS precision", "FSrck recall",
            "FS recall", "FSrck seconds", "FS seconds", "candidates",
        ):
            assert field in fs_record

    def test_fs_quality_sane(self, fs_record):
        assert 0.5 < fs_record["FSrck precision"] <= 1.0
        assert 0.5 < fs_record["FSrck recall"] <= 1.0

    def test_fs_rck_at_least_baseline_precision(self, fs_record):
        # The paper's headline shape at this scale (same seed, same
        # candidates): the RCK vector must not lose to the naive vector.
        assert (
            fs_record["FSrck precision"] >= fs_record["FS precision"] - 0.02
        )

    def test_sn_record_fields(self, sn_record):
        assert sn_record["K"] == 300
        assert sn_record["candidates"] > 0

    def test_sn_rck_precision_wins(self, sn_record):
        assert sn_record["SNrck precision"] > sn_record["SN precision"]

    def test_sn_rck_faster(self, sn_record):
        # 5 RCK rules vs 25 hand rules: SNrck must compare fewer
        # conditions (Fig. 10(c) shows SNrck consistently faster).
        assert sn_record["SNrck seconds"] < sn_record["SN seconds"]

    def test_render_functions(self, fs_record, sn_record):
        assert "Fellegi-Sunter" in exp_fs.render([fs_record])
        assert "Sorted Neighborhood" in exp_sn.render([sn_record])


class TestBlockingExperiment:
    @pytest.fixture(scope="class")
    def record(self):
        return exp_blocking.run_point(300, seed=3, mode="blocking")

    def test_fields(self, record):
        assert record["mode"] == "blocking"
        assert 0 <= record["RCK PC"] <= 1
        assert 0 <= record["manual RR"] <= 1

    def test_rck_key_at_least_as_complete(self, record):
        assert record["RCK PC"] >= record["manual PC"] - 0.05

    def test_windowing_mode(self):
        record = exp_blocking.run_point(200, seed=3, mode="windowing")
        assert record["mode"] == "windowing"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            exp_blocking.run_point(200, seed=3, mode="nope")

    def test_render(self, record):
        assert "pairs completeness" in exp_blocking.render([record])

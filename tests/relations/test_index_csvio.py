"""Unit tests for indexes and CSV round-trips."""

import pytest

from repro.core.schema import RelationSchema
from repro.relations.csvio import load_relation, save_relation
from repro.relations.index import HashIndex, SortedIndex
from repro.relations.relation import Relation


@pytest.fixture
def relation():
    schema = RelationSchema("R", ["name", "city"])
    return Relation(
        schema,
        [
            {"name": "Mark", "city": "NJ"},
            {"name": "Marx", "city": "NJ"},
            {"name": "Anna", "city": "NY"},
        ],
    )


class TestHashIndex:
    def test_lookup(self, relation):
        index = HashIndex(relation, lambda row: row["city"])
        assert sorted(index.lookup("NJ")) == [0, 1]
        assert index.lookup("NY") == [2]
        assert index.lookup("TX") == []

    def test_bucket_count(self, relation):
        index = HashIndex(relation, lambda row: row["city"])
        assert len(index) == 2

    def test_buckets_are_copies(self, relation):
        index = HashIndex(relation, lambda row: row["city"])
        buckets = index.buckets()
        buckets["NJ"].append(99)
        assert 99 not in index.lookup("NJ")

    def test_derived_key(self, relation):
        index = HashIndex(relation, lambda row: str(row["name"])[0])
        assert sorted(index.lookup("M")) == [0, 1]


class TestSortedIndex:
    def test_order(self, relation):
        index = SortedIndex(relation, lambda row: row["name"])
        assert index.ordered_tids() == [2, 0, 1]  # Anna, Mark, Marx

    def test_key_at(self, relation):
        index = SortedIndex(relation, lambda row: row["name"])
        assert index.key_at(0) == "Anna"

    def test_stable_on_ties(self, relation):
        index = SortedIndex(relation, lambda row: row["city"])
        assert index.ordered_tids() == [0, 1, 2]

    def test_len(self, relation):
        assert len(SortedIndex(relation, lambda row: row["name"])) == 3


class TestCsvRoundTrip:
    def test_round_trip(self, relation, tmp_path):
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        loaded = load_relation(relation.schema, path)
        assert len(loaded) == len(relation)
        for row in relation:
            assert loaded[row.tid].values() == row.values()

    def test_nulls_round_trip(self, tmp_path):
        schema = RelationSchema("R", ["A"])
        relation = Relation(schema, [{"A": None}])
        path = tmp_path / "n.csv"
        save_relation(relation, path)
        loaded = load_relation(schema, path)
        assert loaded[0]["A"] is None

    def test_header_mismatch_rejected(self, relation, tmp_path):
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        wrong = RelationSchema("R", ["name", "state"])
        with pytest.raises(ValueError, match="header"):
            load_relation(wrong, path)

    def test_empty_file(self, tmp_path):
        schema = RelationSchema("R", ["A"])
        path = tmp_path / "e.csv"
        path.write_text("")
        assert len(load_relation(schema, path)) == 0

    def test_tids_preserved(self, tmp_path):
        schema = RelationSchema("R", ["A"])
        relation = Relation(schema)
        relation.insert({"A": "x"}, tid=7)
        path = tmp_path / "t.csv"
        save_relation(relation, path)
        loaded = load_relation(schema, path)
        assert 7 in loaded

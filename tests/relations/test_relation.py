"""Unit tests for the relational substrate."""

import pytest

from repro.core.schema import RelationSchema
from repro.relations.relation import Relation


@pytest.fixture
def schema():
    return RelationSchema("R", ["A", "B"])


class TestInsert:
    def test_auto_tids_sequential(self, schema):
        relation = Relation(schema)
        assert relation.insert({"A": 1}) == 0
        assert relation.insert({"A": 2}) == 1

    def test_missing_attributes_become_null(self, schema):
        relation = Relation(schema)
        tid = relation.insert({"A": 1})
        assert relation[tid]["B"] is None

    def test_unknown_attribute_rejected(self, schema):
        relation = Relation(schema)
        with pytest.raises(KeyError, match="X"):
            relation.insert({"X": 1})

    def test_explicit_tid(self, schema):
        relation = Relation(schema)
        assert relation.insert({"A": 1}, tid=10) == 10
        # subsequent auto tid continues beyond
        assert relation.insert({"A": 2}) == 11

    def test_duplicate_tid_rejected(self, schema):
        relation = Relation(schema)
        relation.insert({"A": 1}, tid=3)
        with pytest.raises(ValueError):
            relation.insert({"A": 2}, tid=3)

    def test_constructor_bulk_rows(self, schema):
        relation = Relation(schema, [{"A": 1}, {"A": 2}])
        assert len(relation) == 2


class TestAccess:
    def test_getitem_missing(self, schema):
        relation = Relation(schema)
        with pytest.raises(KeyError, match="no tuple"):
            relation[99]

    def test_contains(self, schema):
        relation = Relation(schema, [{"A": 1}])
        assert 0 in relation
        assert 1 not in relation

    def test_iteration_order(self, schema):
        relation = Relation(schema, [{"A": i} for i in range(5)])
        assert [row["A"] for row in relation] == list(range(5))
        assert relation.tids() == list(range(5))

    def test_set_value(self, schema):
        relation = Relation(schema, [{"A": 1, "B": 2}])
        relation.set_value(0, "B", 99)
        assert relation[0]["B"] == 99

    def test_set_value_unknown_attribute(self, schema):
        relation = Relation(schema, [{"A": 1}])
        with pytest.raises(KeyError):
            relation.set_value(0, "X", 1)


class TestRow:
    def test_project(self, schema):
        relation = Relation(schema, [{"A": 1, "B": 2}])
        assert relation[0].project(["B", "A"]) == (2, 1)

    def test_values_copy(self, schema):
        relation = Relation(schema, [{"A": 1, "B": 2}])
        values = relation[0].values()
        values["A"] = 42
        assert relation[0]["A"] == 1

    def test_get_with_default(self, schema):
        relation = Relation(schema, [{"A": 1}])
        assert relation[0].get("missing", "dflt") == "dflt"

    def test_equality_by_tid_and_values(self, schema):
        first = Relation(schema, [{"A": 1}])
        second = Relation(schema, [{"A": 1}])
        assert first[0] == second[0]


class TestExtension:
    def test_copy_preserves_tids_and_is_extension(self, schema):
        relation = Relation(schema, [{"A": 1}, {"A": 2}])
        duplicate = relation.copy()
        assert duplicate.extends(relation)
        assert relation.extends(duplicate)
        duplicate.set_value(0, "A", 99)
        # Values may differ — still an extension (⊑ tracks tuple ids).
        assert duplicate.extends(relation)
        assert relation[0]["A"] == 1

    def test_missing_tuple_breaks_extension(self, schema):
        relation = Relation(schema, [{"A": 1}, {"A": 2}])
        smaller = Relation(schema, [{"A": 1}])
        assert not smaller.extends(relation)
        assert relation.extends(smaller)

    def test_different_schema_never_extends(self, schema):
        other = Relation(RelationSchema("S", ["A", "B"]))
        assert not other.extends(Relation(schema))

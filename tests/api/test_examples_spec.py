"""Acceptance: the checked-in examples/spec.json drives all three modes.

``Workspace.match``, ``Workspace.stream().ingest_stream`` and
``repro match --spec`` must produce identical match pairs on the
checked-in Fig. 1 data, each run compiling its plan exactly once
(asserted via ``PlanStats.compiles``).
"""

import json
from pathlib import Path

import pytest

from repro.api import ResolutionSpec, Workspace
from repro.cli import main
from repro.core.schema import LEFT, RIGHT
from repro.relations.csvio import load_relation

REPO_ROOT = Path(__file__).resolve().parents[2]
SPEC_PATH = REPO_ROOT / "examples" / "spec.json"
CREDIT_CSV = REPO_ROOT / "examples" / "data" / "credit.csv"
BILLING_CSV = REPO_ROOT / "examples" / "data" / "billing.csv"


@pytest.fixture(scope="module")
def example_workspace():
    return Workspace.from_file(SPEC_PATH)


@pytest.fixture(scope="module")
def example_relations(example_workspace):
    pair = example_workspace.plan.pair
    return (
        load_relation(pair.left, CREDIT_CSV),
        load_relation(pair.right, BILLING_CSV),
    )


def test_example_spec_is_valid_and_versioned():
    document = json.loads(SPEC_PATH.read_text())
    assert document["version"] == 1
    assert ResolutionSpec.validate_document(document) == []


def test_cli_spec_validate_accepts_it(capsys):
    assert main(["spec", "validate", str(SPEC_PATH)]) == 0
    assert "OK:" in capsys.readouterr().out


def test_three_modes_produce_identical_pairs(example_workspace, example_relations, capsys):
    workspace = example_workspace
    credit, billing = example_relations

    # Mode 1: batch Workspace.match (compiles this workspace's plan once).
    report = workspace.match(credit, billing)
    batch_pairs = set(report.matches)
    assert batch_pairs
    assert report.stats["compiles"] == 1

    # Mode 2: streaming through the same workspace — same plan object,
    # still exactly one compile.
    matcher = workspace.stream()
    events = [(LEFT, row.values()) for row in credit] + [
        (RIGHT, row.values()) for row in billing
    ]
    matcher.ingest_stream(events)
    stream_pairs = {
        pair
        for cluster in matcher.store.clusters()
        for pair in cluster.implied_pairs()
    }
    assert workspace.plan.stats.compiles == 1

    # Mode 3: the CLI, spec-driven; its fresh workspace also compiles once.
    assert main([
        "match", "--spec", str(SPEC_PATH),
        "--left", str(CREDIT_CSV), "--right", str(BILLING_CSV),
        "--json",
    ]) == 0
    cli_report = json.loads(capsys.readouterr().out)
    cli_pairs = {tuple(pair) for pair in cli_report["matches"]}
    assert cli_report["stats"]["compiles"] == 1
    assert cli_report["spec_fingerprint"] == workspace.fingerprint

    assert batch_pairs == stream_pairs == cli_pairs


def test_engine_ingest_embeds_the_spec_fingerprint(tmp_path, capsys):
    store_path = tmp_path / "store.json"
    assert main([
        "engine", "ingest", "--spec", str(SPEC_PATH),
        "--store", str(store_path),
        "--left", str(CREDIT_CSV), "--right", str(BILLING_CSV),
        "--json",
    ]) == 0
    stats = json.loads(capsys.readouterr().out)
    expected = ResolutionSpec.from_file(SPEC_PATH).fingerprint()
    assert stats["spec_fingerprint"] == expected
    snapshot = json.loads(store_path.read_text())
    assert snapshot["spec_fingerprint"] == expected

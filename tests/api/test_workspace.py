"""Workspace: one compile, agreeing execution modes, fingerprinted stores,
and deprecation shims for the pre-spec entry points."""

import pytest

from repro.api import SpecBuilder, SpecError, Workspace
from repro.core.schema import LEFT, RIGHT
from repro.datagen.generator import figure1_instances
from repro.datagen.schemas import paper_mds, paper_target
from repro.engine import load_store, save_store


@pytest.fixture
def fig1_workspace():
    pair, credit, billing = figure1_instances()
    workspace = (
        Workspace.builder()
        .pair(pair)
        .target(paper_target(pair))
        .mds(paper_mds(pair))
        .execution(mode="enforce")
        .workspace()
    )
    return workspace, credit, billing


def fig1_events(credit, billing):
    return [(LEFT, row.values()) for row in credit] + [
        (RIGHT, row.values()) for row in billing
    ]


class TestSingleCompile:
    def test_plan_compiled_exactly_once_across_modes(self, fig1_workspace, monkeypatch):
        import repro.api.workspace as workspace_module

        workspace, credit, billing = fig1_workspace
        calls = []
        real_compile = workspace_module.compile_plan

        def counting_compile(*args, **kwargs):
            calls.append(1)
            return real_compile(*args, **kwargs)

        monkeypatch.setattr(workspace_module, "compile_plan", counting_compile)
        workspace.deduce()
        report = workspace.match(credit, billing)
        matcher = workspace.stream()
        matcher.ingest_stream(fig1_events(credit, billing))
        workspace.explain()
        assert len(calls) == 1
        # ... and the plan's own counter agrees, before and after reuse.
        assert report.stats["compiles"] == 1
        assert workspace.plan.stats.compiles == 1
        assert matcher.plan is workspace.plan

    def test_report_carries_fingerprint_and_mode(self, fig1_workspace):
        workspace, credit, billing = fig1_workspace
        report = workspace.match(credit, billing)
        assert report.fingerprint == workspace.fingerprint
        assert report.mode == "enforce"
        document = report.to_dict()
        assert document["spec_fingerprint"] == workspace.fingerprint
        assert document["matches"]


class TestModesAgree:
    def test_batch_stream_and_enforce_agree_from_one_spec(self, fig1_workspace):
        workspace, credit, billing = fig1_workspace
        batch = workspace.match(credit, billing)
        enforced = workspace.enforce(credit, billing)
        assert batch.matches == enforced.matches

        matcher = workspace.stream()
        matcher.ingest_stream(fig1_events(credit, billing))
        streamed = {
            pair
            for cluster in matcher.store.clusters()
            for pair in cluster.implied_pairs()
        }
        assert set(batch.matches) == streamed

    def test_modes_agree_on_generated_stream(self, small_dataset):
        from repro.datagen.schemas import extended_mds
        from repro.datagen.streams import duplicate_burst_stream

        sigma = extended_mds(small_dataset.pair)
        workspace = (
            SpecBuilder()
            .pair(small_dataset.pair)
            .target(small_dataset.target)
            .mds(sigma)
            .execution(mode="enforce")
            .workspace()
        )
        matcher = workspace.stream()
        matcher.ingest_stream(
            duplicate_burst_stream(small_dataset, seed=5).events
        )
        streamed = {
            (cluster.left_tids, cluster.right_tids)
            for cluster in matcher.store.clusters()
        }

        candidates = matcher.store.blocking.candidates(
            small_dataset.credit, small_dataset.billing
        )
        report = workspace.match(
            small_dataset.credit, small_dataset.billing, candidates=candidates
        )
        batch = {
            (cluster.left_tids, cluster.right_tids)
            for cluster in report.clusters
        }
        assert streamed == batch

    def test_direct_mode_provenance_names_keys(self, fig1_workspace):
        workspace, credit, billing = fig1_workspace
        direct = Workspace.from_dict(
            {
                **workspace.spec.to_dict(),
                "execution": {
                    **workspace.spec.to_dict()["execution"],
                    "mode": "direct",
                },
            }
        )
        report = direct.match(credit, billing)
        assert report.mode == "direct"
        for pair in report.matches:
            assert report.provenance[pair]
            assert all(name.startswith("rck") for name in report.provenance[pair])

    def test_enforce_mode_provenance_names_rules(self, fig1_workspace):
        workspace, credit, billing = fig1_workspace
        report = workspace.match(credit, billing)
        assert any(
            name.startswith("md")
            for pair in report.matches
            for name in report.provenance[pair]
        )


class TestValuePolicies:
    def test_policy_changes_resolved_values(self, fig1_workspace):
        workspace, credit, billing = fig1_workspace
        spec_doc = workspace.spec.to_dict()
        spec_doc["resolution"] = {"policy": "lexicographic-min"}
        lexical = Workspace.from_dict(spec_doc)
        assert lexical.spec.resolver()(["b", None, "a"]) == "a"
        # Different policy, different fingerprint — snapshots can't mix.
        assert lexical.fingerprint != workspace.fingerprint


class TestSnapshotFingerprint:
    def test_stream_restore_same_spec_roundtrips(self, fig1_workspace, tmp_path):
        workspace, credit, billing = fig1_workspace
        matcher = workspace.stream()
        matcher.ingest_stream(fig1_events(credit, billing))
        path = tmp_path / "store.json"
        save_store(matcher.store, path)

        restored = load_store(path)
        assert restored.spec_fingerprint == workspace.fingerprint
        resumed = workspace.stream(store=restored)
        assert resumed.store.clusters() == matcher.store.clusters()

    def test_stream_rejects_store_from_other_spec(self, fig1_workspace, tmp_path):
        workspace, credit, billing = fig1_workspace
        matcher = workspace.stream()
        matcher.ingest_stream(fig1_events(credit, billing))
        path = tmp_path / "store.json"
        save_store(matcher.store, path)

        other_doc = workspace.spec.to_dict()
        other_doc["rules"]["top_k"] = 2
        other = Workspace.from_dict(other_doc)
        with pytest.raises(SpecError, match="built from spec"):
            other.stream(store=load_store(path))

    def test_legacy_store_is_stamped_on_first_use(self, fig1_workspace, tmp_path):
        workspace, credit, billing = fig1_workspace
        matcher = workspace.stream()
        matcher.ingest_stream(fig1_events(credit, billing))
        matcher.store.spec_fingerprint = None  # as restored from an old snapshot
        path = tmp_path / "store.json"
        save_store(matcher.store, path)

        restored = load_store(path)
        assert restored.spec_fingerprint is None
        resumed = workspace.stream(store=restored)
        assert resumed.store.spec_fingerprint == workspace.fingerprint


class TestDeprecationShims:
    def test_rck_matcher_warns_but_works(self, fig1_workspace):
        from repro.matching.pipeline import RCKMatcher

        workspace, credit, billing = fig1_workspace
        keys = workspace.deduce()
        with pytest.warns(DeprecationWarning, match="RCKMatcher"):
            matcher = RCKMatcher(keys)
        result = matcher.match(
            credit, billing, candidates=list(workspace.candidates(credit, billing))
        )
        assert result.matches

    def test_rck_matcher_from_mds_warns_once(self, pair, target, sigma, recwarn):
        from repro.matching.pipeline import RCKMatcher

        with pytest.warns(DeprecationWarning) as captured:
            RCKMatcher.from_mds(sigma, target, top_k=5)
        deprecations = [
            warning
            for warning in captured
            if issubclass(warning.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_enforcement_matcher_warns_and_agrees(self, fig1_workspace):
        from repro.matching.pipeline import EnforcementMatcher

        workspace, credit, billing = fig1_workspace
        with pytest.warns(DeprecationWarning, match="EnforcementMatcher"):
            matcher = EnforcementMatcher(plan=workspace.plan)
        result = matcher.match(credit, billing)
        assert set(result.matches) == set(workspace.match(credit, billing).matches)

    def test_incremental_matcher_legacy_ctor_warns(self, pair, target, sigma):
        from repro.engine import IncrementalMatcher

        with pytest.warns(DeprecationWarning, match="Workspace.stream"):
            IncrementalMatcher(sigma, target, top_k=5)

    def test_plan_sharing_ctor_does_not_warn(self, fig1_workspace, recwarn):
        import warnings

        from repro.engine import IncrementalMatcher

        workspace, _, _ = fig1_workspace
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            IncrementalMatcher(plan=workspace.plan)

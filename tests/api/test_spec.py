"""ResolutionSpec: round trip, validation, fingerprints, builder."""

import json

import pytest

from repro.api import (
    SPEC_VERSION,
    ResolutionSpec,
    SpecBuilder,
    SpecError,
    Workspace,
)
from repro.datagen.schemas import paper_mds


@pytest.fixture
def document(pair, target, sigma):
    return (
        SpecBuilder()
        .pair(pair)
        .target(target)
        .mds(sigma)
        .document()
    )


class TestRoundTrip:
    def test_to_dict_is_a_fixed_point(self, document):
        spec = ResolutionSpec.from_dict(document)
        canonical = spec.to_dict()
        again = ResolutionSpec.from_dict(canonical)
        assert again == spec
        assert again.to_dict() == canonical

    def test_workspace_round_trip(self, document):
        """spec → Workspace → to_dict() → spec is a fixed point."""
        workspace = Workspace.from_dict(document)
        rebuilt = ResolutionSpec.from_dict(workspace.spec.to_dict())
        assert rebuilt == workspace.spec
        assert rebuilt.fingerprint() == workspace.fingerprint

    def test_json_round_trip(self, document, tmp_path):
        spec = ResolutionSpec.from_dict(document)
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ResolutionSpec.from_file(path) == spec

    def test_defaults_are_filled_in(self, document):
        spec = ResolutionSpec.from_dict(document)
        assert spec.version == SPEC_VERSION
        assert spec.blocking_backend == "sorted-neighborhood"
        assert spec.policy == "prefer-informative"
        assert spec.mode == "enforce"
        assert spec.cache is True

    def test_explicit_rcks_round_trip(self, document, target):
        document["rules"]["rcks"] = [
            [["email", "email", "="], ["tel", "phn", "="]]
        ]
        spec = ResolutionSpec.from_dict(document)
        keys = spec.explicit_rcks(target)
        assert len(keys) == 1
        assert ResolutionSpec.from_dict(spec.to_dict()) == spec

    def test_md_text_block_is_split_into_lines(self, pair, target, sigma):
        from repro.core.parser import format_md

        text = "# rules\n" + "\n".join(format_md(md) for md in sigma) + "\n"
        spec = SpecBuilder().pair(pair).target(target).mds(text).build()
        assert len(spec.mds) == len(sigma)


class TestFingerprint:
    def test_stable_across_key_order(self, document):
        shuffled = json.loads(
            json.dumps(document, sort_keys=True)
        )
        assert (
            ResolutionSpec.from_dict(shuffled).fingerprint()
            == ResolutionSpec.from_dict(document).fingerprint()
        )

    def test_changes_on_material_change(self, document):
        base = ResolutionSpec.from_dict(document).fingerprint()
        document["rules"]["top_k"] = 3
        assert ResolutionSpec.from_dict(document).fingerprint() != base

    def test_workers_is_not_material(self, document):
        """The worker count never changes results, so never the hash.

        Engine snapshots embed the fingerprint; a store built serially
        must restore under a spec that merely turns parallelism on.
        """
        base = ResolutionSpec.from_dict(document).fingerprint()
        document["execution"] = {"workers": 8}
        spec = ResolutionSpec.from_dict(document)
        assert spec.workers == 8
        assert spec.fingerprint() == base


class TestValidation:
    def test_unknown_version_is_actionable(self, document):
        document["version"] = 99
        with pytest.raises(SpecError) as excinfo:
            ResolutionSpec.from_dict(document)
        assert "unsupported spec version 99" in str(excinfo.value)
        assert str(SPEC_VERSION) in str(excinfo.value)

    def test_unknown_metric_is_actionable(self, document):
        document["rules"]["mds"] = [
            "credit[FN] ~nosuch(0.8) billing[FN] -> "
            "credit[LN] <=> billing[LN]"
        ]
        with pytest.raises(SpecError) as excinfo:
            ResolutionSpec.from_dict(document)
        message = str(excinfo.value)
        assert "nosuch" in message
        assert "registered metrics" in message  # names what IS available

    def test_unknown_metric_binding_target(self, document):
        document["metrics"] = {"edit": "nosuch"}
        with pytest.raises(SpecError, match="registered metrics"):
            ResolutionSpec.from_dict(document)

    def test_metric_binding_enables_alias_operator(self, document):
        document["metrics"] = {"edit": "dl"}
        document["rules"]["mds"] = [
            "credit[FN] ~edit(0.8) billing[FN] -> "
            "credit[LN] <=> billing[LN]"
        ]
        spec = ResolutionSpec.from_dict(document)
        assert spec.build_registry().resolve("edit(0.8)")("Mark", "Marx")

    def test_unknown_blocking_backend_is_actionable(self, document):
        document["blocking"] = {"backend": "bogus"}
        with pytest.raises(SpecError) as excinfo:
            ResolutionSpec.from_dict(document)
        assert "sorted-neighborhood" in str(excinfo.value)

    @pytest.mark.parametrize("window", [0, 1, -5])
    def test_window_below_two_is_actionable(self, document, window):
        # A window of 0 or 1 can never pair two records; accepting it
        # silently produced empty candidate sets.
        document["blocking"] = {
            "backend": "sorted-neighborhood",
            "window": window,
        }
        errors = ResolutionSpec.validate_document(document)
        assert any("blocking.window" in error for error in errors)
        assert any("at least 2" in error for error in errors)
        with pytest.raises(SpecError, match="blocking.window"):
            ResolutionSpec.from_dict(document)

    @pytest.mark.parametrize("window", ["ten", None, 2.5, True])
    def test_non_int_window_rejected(self, document, window):
        document["blocking"] = {
            "backend": "sorted-neighborhood",
            "window": window,
        }
        errors = ResolutionSpec.validate_document(document)
        assert any("blocking.window" in error for error in errors)

    def test_window_two_is_the_smallest_legal(self, document):
        document["blocking"] = {
            "backend": "sorted-neighborhood",
            "window": 2,
        }
        assert ResolutionSpec.from_dict(document).window == 2

    def test_unknown_policy_and_mode(self, document):
        document["resolution"] = {"policy": "coin-flip"}
        document["execution"] = {"mode": "psychic"}
        errors = ResolutionSpec.validate_document(document)
        assert any("coin-flip" in error for error in errors)
        assert any("psychic" in error for error in errors)

    def test_workers_must_be_a_positive_int(self, document):
        document["execution"] = {"workers": 0}
        errors = ResolutionSpec.validate_document(document)
        assert any("execution.workers" in error for error in errors)

    def test_all_errors_reported_at_once(self, document):
        document["version"] = 2
        document["blocking"] = {"backend": "bogus"}
        document["resolution"] = {"policy": "coin-flip"}
        document["rules"]["mds"] = ["not an md"]
        errors = ResolutionSpec.validate_document(document)
        assert len(errors) >= 4

    def test_bad_md_reports_line_position(self, document):
        document["rules"]["mds"] = list(document["rules"]["mds"]) + ["junk"]
        errors = ResolutionSpec.validate_document(document)
        assert any("rules.mds[3]" in error for error in errors)

    def test_unknown_sections_rejected(self, document):
        document["blcking"] = {"backend": "hash"}
        with pytest.raises(SpecError, match="blcking"):
            ResolutionSpec.from_dict(document)

    def test_rules_require_mds_or_rcks(self, document):
        document["rules"] = {"mds": []}
        with pytest.raises(SpecError, match="at least one MD"):
            ResolutionSpec.from_dict(document)

    def test_bad_key_pairs_rejected(self, document):
        document["blocking"] = {
            "backend": "hash",
            "key_pairs": [["FN", "nope"]],
        }
        with pytest.raises(SpecError, match="key_pairs"):
            ResolutionSpec.from_dict(document)

    def test_not_a_dict(self):
        errors = ResolutionSpec.validate_document([1, 2, 3])
        assert errors and "object" in errors[0]

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="not found"):
            ResolutionSpec.from_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="invalid JSON"):
            ResolutionSpec.from_file(path)


class TestBuilder:
    def test_builder_matches_hand_written_document(self, pair, target):
        sigma = paper_mds(pair)
        built = (
            SpecBuilder()
            .pair(pair)
            .target(target)
            .mds(sigma)
            .blocking("hash", key_length=2)
            .resolution("first-non-null")
            .execution(mode="direct", top_k=3, cache=False)
            .build()
        )
        assert built.blocking_backend == "hash"
        assert built.key_length == 2
        assert built.policy == "first-non-null"
        assert built.mode == "direct"
        assert built.top_k == 3
        assert built.cache is False
        # And the round trip still holds for builder output.
        assert ResolutionSpec.from_dict(built.to_dict()) == built

    def test_builder_validates(self, pair, target):
        with pytest.raises(SpecError):
            SpecBuilder().pair(pair).target(target).mds(["junk"]).build()

    def test_builder_workspace_shortcut(self, pair, target):
        workspace = (
            SpecBuilder()
            .pair(pair)
            .target(target)
            .mds(paper_mds(pair))
            .workspace()
        )
        assert isinstance(workspace, Workspace)
        assert workspace.deduce()


class TestPersistenceSection:
    def test_defaults_to_memory(self, document):
        spec = ResolutionSpec.from_dict(document)
        assert spec.persistence_backend == "memory"
        assert spec.persistence_path is None

    def test_round_trips(self, document):
        document["persistence"] = {"backend": "sqlite", "path": "store.db"}
        spec = ResolutionSpec.from_dict(document)
        assert spec.persistence_backend == "sqlite"
        assert spec.persistence_path == "store.db"
        canonical = spec.to_dict()
        assert canonical["persistence"] == {
            "backend": "sqlite", "path": "store.db",
        }
        assert ResolutionSpec.from_dict(canonical) == spec

    def test_unknown_backend_is_actionable(self, document):
        document["persistence"] = {"backend": "postgres"}
        with pytest.raises(SpecError) as excinfo:
            ResolutionSpec.from_dict(document)
        message = str(excinfo.value)
        assert "persistence.backend" in message
        assert "sqlite" in message

    def test_unknown_key_rejected(self, document):
        document["persistence"] = {"backend": "memory", "wal": True}
        with pytest.raises(SpecError, match="unknown key"):
            ResolutionSpec.from_dict(document)

    def test_sqlite_requires_a_path(self, document):
        document["persistence"] = {"backend": "sqlite"}
        with pytest.raises(SpecError, match="persistence.path"):
            ResolutionSpec.from_dict(document)

    def test_never_enters_the_fingerprint(self, document):
        """Where the state lives never changes what the state is, so a
        store built under one backend must restore under the other."""
        base = ResolutionSpec.from_dict(document).fingerprint()
        document["persistence"] = {"backend": "sqlite", "path": "x.db"}
        assert ResolutionSpec.from_dict(document).fingerprint() == base

    def test_builder_sets_section(self, pair, target, sigma):
        spec = (
            SpecBuilder()
            .pair(pair)
            .target(target)
            .mds(sigma)
            .persistence("sqlite", "store.db")
            .build()
        )
        assert spec.persistence_backend == "sqlite"
        assert spec.persistence_path == "store.db"

"""The curated, lazily loaded public surface of ``import repro``."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_from_repro_import_works():
    import repro

    assert repro.Workspace is not None
    assert repro.ResolutionSpec is not None
    assert repro.compile_plan is not None
    assert repro.IncrementalMatcher is not None
    assert repro.find_rcks is not None


def test_all_names_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_dir_lists_the_curated_api():
    import repro

    listing = dir(repro)
    assert "Workspace" in listing
    assert "ResolutionSpec" in listing


def test_unknown_attribute_mentions_the_public_api():
    import repro

    with pytest.raises(AttributeError, match="public API"):
        repro.NoSuchThing


def test_import_repro_is_lazy():
    """``import repro`` must not drag in the heavy submodules."""
    code = (
        "import sys; import repro; "
        "heavy = [m for m in sys.modules "
        " if m.startswith(('repro.api', 'repro.engine', 'repro.plan', "
        "'repro.matching', 'repro.experiments'))]; "
        "assert not heavy, f'eagerly imported: {heavy}'; "
        "repro.Workspace; "
        "assert 'repro.api' in sys.modules"
    )
    subprocess.run(
        [sys.executable, "-c", code],
        check=True,
        env={"PYTHONPATH": str(REPO_SRC)},
    )

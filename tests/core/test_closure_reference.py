"""Property tests: three closure implementations must agree.

The production :class:`ClosureEngine`, the literal Fig. 5 loop, and the
independent union-find axiom model (:class:`AxiomaticClosure`) all compute
the same set of derived facts on random MD workloads — any divergence is a
bug in one of them.  The union-find model additionally *applies* MDs here
in a plain saturation loop, so it exercises none of the engine's indexing
or queueing machinery.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import ClosureEngine, md_closure_paper_loop
from repro.core.matrix import AxiomaticClosure
from repro.core.similarity import EQUALITY
from repro.datagen.mdgen import generate_workload


def _axiomatic_closure(pair, sigma, lhs):
    """Saturation-style reference: apply MDs until fixpoint on the model."""
    closure = AxiomaticClosure()
    for atom in lhs:
        closure.add(
            pair.left_attr(atom.left),
            pair.right_attr(atom.right),
            atom.operator,
        )
    normalized = []
    for dependency in sigma:
        normalized.extend(dependency.normalize())
    remaining = list(normalized)
    changed = True
    while changed:
        changed = False
        still = []
        for dependency in remaining:
            if all(
                closure.holds(
                    pair.left_attr(atom.left),
                    pair.right_attr(atom.right),
                    atom.operator,
                )
                for atom in dependency.lhs
            ):
                rhs = dependency.rhs[0]
                closure.add(
                    pair.left_attr(rhs.left),
                    pair.right_attr(rhs.right),
                    EQUALITY,
                )
                changed = True
            else:
                still.append(dependency)
        remaining = still
    return closure


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    md_count=st.integers(min_value=1, max_value=25),
    target_length=st.integers(min_value=2, max_value=5),
    lhs_choice=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_engine_agrees_with_axiom_model(seed, md_count, target_length, lhs_choice):
    workload = generate_workload(
        md_count=md_count, target_length=target_length, seed=seed
    )
    pair, sigma = workload.pair, list(workload.sigma)
    # Use the LHS of one of the generated MDs as the query premise.
    phi = sigma[lhs_choice % len(sigma)]

    engine = ClosureEngine(pair, sigma)
    matrix, _ = engine.closure(phi.lhs)
    reference = _axiomatic_closure(pair, sigma, phi.lhs)

    attributes = pair.all_qualified_attributes()
    operators = {EQUALITY}
    for dependency in sigma:
        operators.update(dependency.operators())
    for a in attributes:
        for b in attributes:
            for op in operators:
                assert matrix.holds(a, b, op) == reference.holds(a, b, op), (
                    f"divergence on {a.display} {op} {b.display} "
                    f"(seed={seed}, md_count={md_count})"
                )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    md_count=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=30, deadline=None)
def test_engine_agrees_with_paper_loop(seed, md_count):
    workload = generate_workload(md_count=md_count, target_length=3, seed=seed)
    pair, sigma = workload.pair, list(workload.sigma)
    phi = sigma[seed % len(sigma)]

    engine = ClosureEngine(pair, sigma)
    engine_matrix, _ = engine.closure(phi.lhs)
    loop_matrix = md_closure_paper_loop(pair, sigma, phi.lhs)

    engine_facts = {
        (frozenset((a.display, b.display)), op.name)
        for a, b, op in engine_matrix.entries()
    }
    loop_facts = {
        (frozenset((a.display, b.display)), op.name)
        for a, b, op in loop_matrix.entries()
    }
    # Raw entry sets can differ in redundant ≈ entries (an = edge may or
    # may not be accompanied by a stored ≈ edge depending on arrival
    # order); the *holds* semantics must agree exactly.
    attributes = pair.all_qualified_attributes()
    operators = {EQUALITY}
    for dependency in sigma:
        operators.update(dependency.operators())
    for a in attributes:
        for b in attributes:
            for op in operators:
                assert engine_matrix.holds(a, b, op) == loop_matrix.holds(
                    a, b, op
                )
    # Equality facts specifically are arrival-order independent.
    engine_eq = {pair_ for pair_, op in engine_facts if op == "="}
    loop_eq = {pair_ for pair_, op in loop_facts if op == "="}
    assert engine_eq == loop_eq

"""Unit tests for schemas, qualified attributes and comparable lists."""

import pytest

from repro.core.schema import (
    LEFT,
    RIGHT,
    Attribute,
    ComparableLists,
    QualifiedAttribute,
    RelationSchema,
    SchemaPair,
)


class TestAttribute:
    def test_default_domain(self):
        assert Attribute("FN").domain == "string"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_str(self):
        assert str(Attribute("LN")) == "LN"


class TestRelationSchema:
    def test_basic_access(self):
        schema = RelationSchema("credit", ["c#", "FN", "LN"])
        assert schema.arity == 3
        assert schema["FN"].name == "FN"
        assert "LN" in schema
        assert "missing" not in schema

    def test_attribute_order_preserved(self):
        schema = RelationSchema("R", ["B", "A", "C"])
        assert schema.attribute_names == ("B", "A", "C")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RelationSchema("R", ["A", "A"])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("R", [])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("", ["A"])

    def test_missing_attribute_error_message(self):
        schema = RelationSchema("R", ["A"])
        with pytest.raises(KeyError, match="R"):
            schema["B"]

    def test_equality_and_hash(self):
        first = RelationSchema("R", ["A", "B"])
        second = RelationSchema("R", ["A", "B"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != RelationSchema("R", ["A"])

    def test_mixed_attribute_inputs(self):
        schema = RelationSchema("R", [Attribute("A", "int"), "B"])
        assert schema["A"].domain == "int"
        assert schema["B"].domain == "string"


class TestQualifiedAttribute:
    def test_side_validation(self):
        with pytest.raises(ValueError):
            QualifiedAttribute(5, "R", "A")

    def test_distinct_across_sides(self):
        left = QualifiedAttribute(LEFT, "R", "A")
        right = QualifiedAttribute(RIGHT, "R", "A")
        assert left != right
        assert left.display != right.display

    def test_str_matches_paper_notation(self):
        assert str(QualifiedAttribute(LEFT, "credit", "FN")) == "credit[FN]"


class TestSchemaPair:
    @pytest.fixture
    def rs_pair(self):
        return SchemaPair(
            RelationSchema("R", ["A", "B"]),
            RelationSchema("S", ["C", "D"]),
        )

    def test_attr_constructors_validate(self, rs_pair):
        assert rs_pair.left_attr("A").side == LEFT
        assert rs_pair.right_attr("C").side == RIGHT
        with pytest.raises(KeyError):
            rs_pair.left_attr("C")

    def test_attr_by_side(self, rs_pair):
        assert rs_pair.attr(LEFT, "A") == rs_pair.left_attr("A")
        assert rs_pair.attr(RIGHT, "D") == rs_pair.right_attr("D")
        with pytest.raises(ValueError):
            rs_pair.attr(7, "A")

    def test_schema_accessor(self, rs_pair):
        assert rs_pair.schema(LEFT).name == "R"
        assert rs_pair.schema(RIGHT).name == "S"

    def test_total_arity_is_h(self, rs_pair):
        assert rs_pair.total_arity == 4

    def test_all_qualified_attributes(self, rs_pair):
        attrs = rs_pair.all_qualified_attributes()
        assert len(attrs) == 4
        assert len(set(attrs)) == 4

    def test_comparable_checks(self, rs_pair):
        assert rs_pair.comparable(["A", "B"], ["C", "D"])
        assert not rs_pair.comparable(["A"], ["C", "D"])
        assert not rs_pair.comparable(["A", "X"], ["C", "D"])

    def test_comparable_requires_same_domain(self):
        pair = SchemaPair(
            RelationSchema("R", [Attribute("A", "int")]),
            RelationSchema("S", [Attribute("B", "string")]),
        )
        assert not pair.comparable(["A"], ["B"])
        with pytest.raises(ValueError, match="domains differ"):
            pair.require_comparable(["A"], ["B"])

    def test_require_comparable_reports_position(self, rs_pair):
        with pytest.raises(ValueError, match="position 1"):
            rs_pair.require_comparable(["A", "nope"], ["C", "D"])

    def test_self_pair_allowed(self):
        schema = RelationSchema("R", ["A"])
        pair = SchemaPair(schema, schema)
        assert pair.left_attr("A") != pair.right_attr("A")


class TestComparableLists:
    def test_positions(self, pair):
        lists = ComparableLists(pair, ["FN", "LN"], ["FN", "LN"])
        assert len(lists) == 2
        assert lists[0] == ("FN", "FN")
        assert list(lists) == [("FN", "FN"), ("LN", "LN")]

    def test_validation_runs_at_construction(self, pair):
        with pytest.raises(ValueError):
            ComparableLists(pair, ["FN"], ["FN", "LN"])

    def test_qualified_positions(self, pair):
        lists = ComparableLists(pair, ["addr"], ["post"])
        ((left, right),) = lists.qualified()
        assert str(left) == "credit[addr]"
        assert str(right) == "billing[post]"

    def test_str_rendering(self, pair):
        lists = ComparableLists(pair, ["FN"], ["FN"])
        assert str(lists) == "([FN], [FN])"

    def test_paper_target_shape(self, target):
        # (Yc, Yb) of Example 1.1: five comparable positions.
        assert len(target) == 5
        assert target[2] == ("addr", "post")
        assert target[3] == ("tel", "phn")

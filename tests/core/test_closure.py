"""Unit tests for the MDClosure deduction algorithm (Section 4)."""

import pytest

from repro.core.closure import ClosureEngine, deduces, md_closure_paper_loop
from repro.core.md import MatchingDependency
from repro.core.rck import RelativeKey
from repro.core.similarity import EQUALITY


class TestTransitivity:
    """Example 3.1 / Lemma 3.3: ψ1, ψ2 ⊨m ψ3 (though ψ1, ψ2 ⊭ ψ3)."""

    def test_basic_chain(self, self_pair):
        psi1 = MatchingDependency(self_pair, [("A", "A", "=")], [("B", "B")])
        psi2 = MatchingDependency(self_pair, [("B", "B", "=")], [("C", "C")])
        psi3 = MatchingDependency(self_pair, [("A", "A", "=")], [("C", "C")])
        assert deduces(self_pair, [psi1, psi2], psi3)

    def test_chain_with_similarity_lhs(self, self_pair):
        # Lemma 3.2(2): the second MD's similarity test is satisfied by
        # the equality the first MD establishes.
        psi1 = MatchingDependency(self_pair, [("A", "A", "=")], [("B", "B")])
        psi2 = MatchingDependency(
            self_pair, [("B", "B", "dl(0.8)")], [("C", "C")]
        )
        psi3 = MatchingDependency(self_pair, [("A", "A", "=")], [("C", "C")])
        assert deduces(self_pair, [psi1, psi2], psi3)

    def test_broken_chain_not_deduced(self, self_pair):
        # A similarity conclusion cannot chain: ψ1 identifies B (equality
        # on stable instances), but a ψ2 requiring a *different* operator
        # pair cannot fire without it.
        psi1 = MatchingDependency(
            self_pair, [("A", "A", "dl(0.8)")], [("B", "B")]
        )
        psi3 = MatchingDependency(self_pair, [("A", "A", "=")], [("C", "C")])
        assert not deduces(self_pair, [psi1], psi3)


class TestReflexivityAndAugmentation:
    def test_reflexive_key_always_deduced(self, pair, target):
        # (Y1 = Y2) → Y1 ⇌ Y2 holds with an empty Σ.
        identity = RelativeKey.identity_key(target).to_md()
        assert deduces(pair, [], identity)

    def test_lhs_similarity_alone_insufficient(self, pair, target):
        # FN ≈ FN does not identify FN: similarity is not equality.
        phi = MatchingDependency(pair, [("FN", "FN", "dl(0.8)")], [("FN", "FN")])
        assert not deduces(pair, [], phi)

    def test_lhs_equality_identifies_itself(self, pair):
        phi = MatchingDependency(pair, [("FN", "FN", "=")], [("FN", "FN")])
        assert deduces(pair, [], phi)

    def test_augmented_lhs_still_deduced(self, pair, sigma):
        # Lemma 3.1: adding conjuncts to a deducible MD keeps it deducible.
        phi2 = sigma[1]
        augmented = phi2.with_extra_lhs("gender", "gender", "=")
        assert deduces(pair, sigma, augmented)

    def test_operator_identity_matters(self, self_pair):
        # An MD firing on dl(0.8) is not triggered by a dl(0.9) test alone.
        rule = MatchingDependency(
            self_pair, [("A", "A", "dl(0.8)")], [("B", "B")]
        )
        phi = MatchingDependency(
            self_pair, [("A", "A", "dl(0.9)")], [("C", "C")]
        )
        assert not deduces(self_pair, [rule], phi)

    def test_equality_satisfies_any_operator_test(self, self_pair):
        rule = MatchingDependency(
            self_pair, [("A", "A", "dl(0.8)")], [("B", "B")]
        )
        phi = MatchingDependency(self_pair, [("A", "A", "=")], [("B", "B")])
        assert deduces(self_pair, [rule], phi)


class TestGeneralForm:
    def test_multi_pair_rhs(self, pair, sigma):
        # ϕ3 identifies FN and LN; asking for both at once must work.
        phi = MatchingDependency(
            pair,
            [("email", "email", "=")],
            [("FN", "FN"), ("LN", "LN")],
        )
        assert deduces(pair, sigma, phi)

    def test_partial_rhs_failure(self, pair, sigma):
        # email alone does not identify the address.
        phi = MatchingDependency(
            pair, [("email", "email", "=")], [("FN", "FN"), ("addr", "post")]
        )
        assert not deduces(pair, sigma, phi)

    def test_engine_rejects_foreign_phi(self, pair, sigma, self_pair):
        engine = ClosureEngine(pair, sigma)
        foreign = MatchingDependency(self_pair, [("A", "A", "=")], [("B", "B")])
        with pytest.raises(ValueError):
            engine.deduces(foreign)

    def test_engine_rejects_foreign_sigma(self, pair, self_pair):
        foreign = MatchingDependency(self_pair, [("A", "A", "=")], [("B", "B")])
        with pytest.raises(ValueError):
            ClosureEngine(pair, [foreign])

    def test_engine_normalizes(self, pair, sigma):
        engine = ClosureEngine(pair, sigma)
        assert all(md.is_normal_form for md in engine.normalized_mds)
        # ϕ1 has 5 RHS pairs, ϕ2 one, ϕ3 two → 8 normal-form MDs.
        assert len(engine.normalized_mds) == 8


class TestClosureContents:
    def test_closure_marks_rhs_with_equality(self, pair, sigma):
        engine = ClosureEngine(pair, sigma)
        phi2 = sigma[1]
        matrix, stats = engine.closure(phi2.lhs)
        assert matrix.get(
            pair.left_attr("addr"), pair.right_attr("post"), EQUALITY
        )
        assert stats.mds_fired >= 1

    def test_closure_keeps_similarity_entries(self, pair, sigma):
        engine = ClosureEngine(pair, sigma)
        phi1 = sigma[0]
        matrix, _ = engine.closure(phi1.lhs)
        fn_l, fn_r = pair.left_attr("FN"), pair.right_attr("FN")
        # The LHS asserts FN ≈dl FN; the firing of ϕ1 upgrades it to =.
        assert matrix.holds(fn_l, fn_r, EQUALITY)

    def test_stats_counters_consistent(self, pair, sigma):
        engine = ClosureEngine(pair, sigma)
        matrix, stats = engine.closure(sigma[0].lhs)
        assert stats.entries_set == matrix.entry_count
        assert stats.queue_pops == stats.entries_set


class TestPaperLoopAgreement:
    def test_same_verdicts_on_paper_sigma(self, pair, sigma, target):
        engine = ClosureEngine(pair, sigma)
        candidates = [
            RelativeKey.from_triples(target, triples).to_md()
            for triples in (
                [("email", "email", "="), ("tel", "phn", "=")],
                [("email", "email", "="), ("addr", "post", "=")],
                [("email", "email", "=")],
                [("tel", "phn", "=")],
                [("LN", "LN", "="), ("addr", "post", "="), ("FN", "FN", "dl(0.8)")],
            )
        ]
        for phi in candidates:
            loop_matrix = md_closure_paper_loop(pair, sigma, phi.lhs)
            loop_verdict = all(
                loop_matrix.get(
                    pair.left_attr(atom.left),
                    pair.right_attr(atom.right),
                    EQUALITY,
                )
                for atom in phi.rhs
            )
            assert engine.deduces(phi) == loop_verdict

"""Tests for negative matching rules (the Section 8 extension)."""

import pytest

from repro.core.negation import GuardedRuleSet, NegativeRule, find_conflicts
from repro.matching.comparison import ComparisonSpec
from repro.matching.rules import MatchRule, RuleSet


@pytest.fixture
def no_match_rule(pair):
    """Same full name alone must not identify the address (namesakes)."""
    return NegativeRule.build(
        pair,
        [("FN", "FN", "="), ("LN", "LN", "=")],
        [("addr", "post")],
        name="namesakes-not-same",
    )


class TestConstruction:
    def test_validation_empty_lhs(self, pair):
        with pytest.raises(ValueError, match="non-empty LHS"):
            NegativeRule.build(pair, [], [("FN", "FN")])

    def test_validation_empty_forbidden(self, pair):
        with pytest.raises(ValueError, match="forbid at least one"):
            NegativeRule.build(pair, [("FN", "FN", "=")], [])

    def test_validation_foreign_attributes(self, pair):
        with pytest.raises(ValueError):
            NegativeRule.build(pair, [("nope", "FN", "=")], [("FN", "FN")])

    def test_str_uses_negated_operator(self, no_match_rule):
        assert "<!>" in str(no_match_rule)


class TestFires:
    def test_fires_on_matching_premise(self, fig1, no_match_rule):
        _, credit, billing = fig1
        # t1 "Mark Clifford" vs t3 "Marx Clifford": FN differs exactly.
        assert not no_match_rule.fires(credit[0], billing[0])

    def test_fires_when_premise_holds(self, pair, fig1):
        _, credit, billing = fig1
        rule = NegativeRule.build(
            pair,
            [("LN", "LN", "=")],
            [("FN", "FN")],
            name="same-surname",
        )
        assert rule.fires(credit[0], billing[0])  # Clifford = Clifford

    def test_negated_atoms(self, pair, fig1):
        _, credit, billing = fig1
        # Same surname but NOT similar first names → veto.  t1/t3 have
        # similar FNs (Mark/Marx) so the rule must not fire; with a
        # stricter threshold it does.
        rule = NegativeRule.build(
            pair,
            [("LN", "LN", "="), ("FN", "FN", "dl(0.8)", True)],
            [("FN", "FN")],
            name="different-first-names",
        )
        assert not rule.fires(credit[0], billing[0])
        strict = NegativeRule.build(
            pair,
            [("LN", "LN", "="), ("FN", "FN", "=", True)],
            [("FN", "FN")],
            name="not-exactly-equal-first-names",
        )
        assert strict.fires(credit[0], billing[0])  # Mark != Marx exactly

    def test_negated_atoms_excluded_from_conflict_premise(self, pair, sigma):
        # Negated tests cannot be consumed by the closure: only positive
        # atoms form the premise of the static check.
        rule = NegativeRule.build(
            pair,
            [("tel", "phn", "="), ("gender", "gender", "=", True)],
            [("addr", "post")],
            name="negated-aware",
        )
        assert rule.positive_atoms()[0].attribute_pair == ("tel", "phn")
        conflicts = find_conflicts(pair, sigma, [rule])
        assert len(conflicts) == 1  # ϕ2 still forces addr ⇌ post

    def test_str_marks_negated_atoms(self, pair):
        rule = NegativeRule.build(
            pair,
            [("LN", "LN", "="), ("FN", "FN", "=", True)],
            [("FN", "FN")],
        )
        assert "not(credit[FN] = billing[FN])" in str(rule)


class TestConflicts:
    def test_consistent_set_has_no_conflicts(self, pair, sigma, no_match_rule):
        assert find_conflicts(pair, sigma, [no_match_rule]) == []

    def test_direct_conflict_detected(self, pair, sigma):
        # Σ's ϕ2 forces addr ⇌ post from tel = phn; a negative rule with
        # the same premise forbidding that identification conflicts.
        rule = NegativeRule.build(
            pair,
            [("tel", "phn", "=")],
            [("addr", "post")],
            name="phone-must-not-identify-address",
        )
        conflicts = find_conflicts(pair, sigma, [rule])
        assert len(conflicts) == 1
        assert conflicts[0].forced_pairs == (("addr", "post"),)
        assert "addr~post" in str(conflicts[0])

    def test_transitive_conflict_detected(self, pair, sigma):
        # email + phone force the *entire* target through deduction
        # (rck4); forbidding the gender identification still conflicts.
        rule = NegativeRule.build(
            pair,
            [("email", "email", "="), ("tel", "phn", "=")],
            [("gender", "gender")],
            name="email-phone-no-gender",
        )
        assert find_conflicts(pair, sigma, [rule])

    def test_foreign_rule_rejected(self, pair, sigma, self_pair):
        rule = NegativeRule.build(self_pair, [("A", "A", "=")], [("B", "B")])
        with pytest.raises(ValueError, match="different schema pair"):
            find_conflicts(pair, sigma, [rule])


class TestGuardedRuleSet:
    @pytest.fixture
    def guarded(self, pair, no_match_rule):
        positive = RuleSet(
            [
                MatchRule(
                    "same-name",
                    ComparisonSpec((("FN", "FN", "="), ("LN", "LN", "="))),
                ),
                MatchRule(
                    "same-email",
                    ComparisonSpec((("email", "email", "="),)),
                ),
            ]
        )
        return GuardedRuleSet(positive, [no_match_rule])

    def test_veto_blocks_positive_match(self, guarded, fig1):
        _, credit, billing = fig1
        # Construct a row pair agreeing on full name: t1 vs a namesake.
        # t1 and t3 disagree on FN so "same-name" does not fire; t1 vs t6
        # matches via email, and the veto does not fire (FN differs).
        assert guarded.matches(credit[0], billing[3])
        assert guarded.veto_reason(credit[0], billing[3]) == ""

    def test_negative_rule_vetoes(self, pair, fig1, no_match_rule):
        _, credit, billing = fig1
        positive = RuleSet(
            [MatchRule("same-ln", ComparisonSpec((("LN", "LN", "="),)))]
        )
        guarded = GuardedRuleSet(positive, [no_match_rule])
        # t1 vs t3: LN matches (positive fires) and the namesake veto
        # needs FN = FN which fails ("Mark" vs "Marx") → match survives.
        assert guarded.matches(credit[0], billing[0])
        # Same-name pair: build a veto that fires on LN alone.
        veto_ln = NegativeRule.build(
            pair, [("LN", "LN", "=")], [("FN", "FN")], name="ln-veto"
        )
        guarded2 = GuardedRuleSet(positive, [veto_ln])
        assert not guarded2.matches(credit[0], billing[0])
        assert guarded2.veto_reason(credit[0], billing[0]) == "ln-veto"

    def test_len(self, guarded):
        assert len(guarded) == 3

"""Unit and property tests for findRCKs beyond the worked example."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import ClosureEngine
from repro.core.findrcks import (
    all_rcks,
    find_rcks,
    is_complete,
    minimize,
    pairing,
    sort_mds,
)
from repro.core.quality import CostModel
from repro.core.rck import RelativeKey
from repro.datagen.mdgen import generate_workload


class TestPairing:
    def test_collects_target_and_md_pairs(self, sigma, target):
        pairs = pairing(sigma, target)
        assert ("email", "email") in pairs  # from ϕ3's LHS
        assert ("gender", "gender") in pairs  # from the target
        assert ("addr", "post") in pairs  # both

    def test_counts(self, sigma, target):
        # Yc/Yb has 5 pairs; the MDs add email only.
        assert len(pairing(sigma, target)) == 6


class TestSortMds:
    def test_ascending_by_lhs_cost(self, sigma):
        model = CostModel()
        model.increment([("LN", "LN")])  # make ϕ1's LHS the most expensive
        model.increment([("LN", "LN")])
        ordered = sort_mds(sigma, model)
        assert ordered[-1] == sigma[0]  # ϕ1 (3 LHS pairs, one inflated)

    def test_stability(self, sigma):
        model = CostModel()
        ordered = sort_mds(sigma, model)
        # ϕ2 (1 pair) before ϕ3 (1 pair)? Equal cost → original order among
        # equals; ϕ1 (3 pairs) last.
        assert ordered[-1] == sigma[0]


class TestMinimize:
    def test_produces_deducible_key(self, pair, sigma, target):
        engine = ClosureEngine(pair, sigma)
        seed = RelativeKey.identity_key(target)
        minimal = minimize(seed, engine, CostModel())
        assert engine.deduces(minimal.to_md())

    def test_result_is_locally_minimal(self, pair, sigma, target):
        engine = ClosureEngine(pair, sigma)
        minimal = minimize(RelativeKey.identity_key(target), engine, CostModel())
        for atom in minimal.atoms:
            if minimal.length > 1:
                assert not engine.deduces(minimal.without(atom).to_md())

    def test_never_removes_below_one(self, pair, target):
        engine = ClosureEngine(pair, [])
        single = RelativeKey.from_triples(target, [("FN", "FN", "=")])
        # With Σ = ∅ this key is not even deducible, but minimize must not
        # crash or empty it.
        assert minimize(single, engine, CostModel()).length == 1

    def test_cost_guides_removal_order(self, pair, sigma, target):
        # Make the email pair maximally expensive: keys built by minimize
        # should retain *cheap* pairs when alternatives exist.
        engine = ClosureEngine(pair, sigma)
        model = CostModel(lengths={("addr", "post"): 100.0})
        minimal = minimize(RelativeKey.identity_key(target), engine, model)
        assert ("addr", "post") not in minimal.attribute_pairs()


class TestFindRcksGeneral:
    def test_m_validation(self, sigma, target):
        with pytest.raises(ValueError):
            find_rcks(sigma, target, m=0)

    def test_m_equals_one(self, sigma, target):
        keys = find_rcks(sigma, target, m=1)
        assert len(keys) == 1

    def test_empty_sigma_yields_identity_minimized(self, pair, target):
        keys = find_rcks([], target, m=5)
        assert len(keys) == 1
        assert keys[0].length == len(target)

    def test_no_duplicate_keys(self, sigma, target):
        keys = find_rcks(sigma, target, m=10)
        triple_sets = [key.triple_set() for key in keys]
        assert len(triple_sets) == len(set(triple_sets))

    def test_no_key_covers_another(self, sigma, target):
        keys = find_rcks(sigma, target, m=10)
        for first in keys:
            for second in keys:
                if first is not second:
                    assert not first.covers(second)

    def test_diversity_counter_effect(self, sigma, target):
        # With the diversity term active, the first two keys should not be
        # built from identical attribute pairs.
        keys = find_rcks(sigma, target, m=3)
        assert set(keys[0].attribute_pairs()) != set(keys[1].attribute_pairs())


class TestCompleteness:
    def test_complete_set_detected(self, sigma, target):
        keys = find_rcks(sigma, target, m=100)
        assert is_complete(keys, sigma)

    def test_incomplete_prefix_detected(self, sigma, target):
        keys = find_rcks(sigma, target, m=100)
        assert not is_complete(keys[:1], sigma)

    def test_empty_set_incomplete(self, sigma):
        assert not is_complete([], sigma)

    def test_all_rcks_limit_guard(self, sigma, target):
        with pytest.raises(RuntimeError):
            all_rcks(sigma, target, limit=2)


class TestRandomWorkloads:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_all_returned_keys_deduced_and_minimal(self, seed):
        workload = generate_workload(md_count=12, target_length=4, seed=seed)
        engine = ClosureEngine(workload.pair, list(workload.sigma))
        keys = find_rcks(list(workload.sigma), workload.target, m=8)
        assert keys, "at least the minimized identity key must be returned"
        for key in keys:
            assert engine.deduces(key.to_md())
            for atom in key.atoms:
                if key.length > 1:
                    assert not engine.deduces(key.without(atom).to_md())

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_complete_when_under_m(self, seed):
        workload = generate_workload(md_count=6, target_length=3, seed=seed)
        keys = find_rcks(list(workload.sigma), workload.target, m=500)
        assert is_complete(keys, list(workload.sigma))

"""Unit tests for the RCK quality/cost model (Section 5)."""

import pytest

from repro.core.quality import CostModel, length_statistics_from_rows


class TestCostModel:
    def test_default_cost_is_one(self):
        # ct = 0, lt = 0, ac = 1 → cost = w3/1 = 1.
        assert CostModel().cost(("FN", "FN")) == 1.0

    def test_counter_term(self):
        model = CostModel()
        model.increment([("FN", "FN")])
        model.increment([("FN", "FN")])
        assert model.cost(("FN", "FN")) == 3.0

    def test_length_term(self):
        model = CostModel(lengths={("addr", "post"): 25.0})
        assert model.cost(("addr", "post")) == 26.0

    def test_accuracy_term(self):
        model = CostModel(accuracies={("FN", "FN"): 0.5})
        assert model.cost(("FN", "FN")) == 2.0

    def test_weights(self):
        model = CostModel(
            w1=2.0, w2=3.0, w3=5.0, lengths={("a", "b"): 4.0},
            accuracies={("a", "b"): 0.5},
        )
        model.increment([("a", "b")])
        assert model.cost(("a", "b")) == 2 * 1 + 3 * 4 + 5 / 0.5

    def test_paper_weights_zero_length_accuracy(self):
        # Example 5.1 uses w1 = 1, w2 = w3 = 0: cost is the counter alone.
        model = CostModel(w2=0.0, w3=0.0)
        assert model.cost(("FN", "FN")) == 0.0
        model.increment([("FN", "FN")])
        assert model.cost(("FN", "FN")) == 1.0

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            CostModel(accuracies={("a", "b"): 0.0})
        with pytest.raises(ValueError):
            CostModel(accuracies={("a", "b"): 1.5})

    def test_reset_counters(self):
        model = CostModel()
        model.increment([("a", "b")])
        model.reset_counters([("a", "b")])
        assert model.counter(("a", "b")) == 0

    def test_lhs_cost_sums(self):
        model = CostModel()
        model.increment([("a", "b")])
        assert model.lhs_cost([("a", "b"), ("c", "d")]) == 3.0


class TestLengthStatistics:
    def test_mean_over_both_sides(self):
        stats = length_statistics_from_rows(
            [("FN", "FN")],
            [{"FN": "Mark"}, {"FN": "Jo"}],
            [{"FN": "Marcus"}],
        )
        assert stats[("FN", "FN")] == pytest.approx((4 + 2 + 6) / 3)

    def test_nulls_skipped(self):
        stats = length_statistics_from_rows(
            [("FN", "FN")],
            [{"FN": None}, {"FN": "abcd"}],
            [],
        )
        assert stats[("FN", "FN")] == pytest.approx(4.0)

    def test_no_values_gives_zero(self):
        stats = length_statistics_from_rows([("FN", "FN")], [], [])
        assert stats[("FN", "FN")] == 0.0

    def test_distinct_attribute_names_per_side(self):
        stats = length_statistics_from_rows(
            [("addr", "post")],
            [{"addr": "aaaa"}],
            [{"post": "bb"}],
        )
        assert stats[("addr", "post")] == pytest.approx(3.0)

"""Tests for the inference lemmas: every derived MD must be deducible.

Lemmas 3.1–3.3 describe MD rewritings whose outputs are logical
consequences of their inputs; we verify each against MDClosure.
"""

import pytest

from repro.core.closure import deduces
from repro.core.inference import (
    augment_both,
    augment_lhs,
    reflexive_key_md,
    transitivity,
    weaken_similarity_to_equality,
)
from repro.core.md import MatchingDependency


class TestLemma31Augmentation:
    def test_augment_lhs_with_similarity(self, pair, sigma):
        phi2 = sigma[1]
        augmented = augment_lhs(phi2, "FN", "FN", "dl(0.8)")
        assert len(augmented.lhs) == 2
        assert deduces(pair, [phi2], augmented)

    def test_augment_both_with_equality(self, pair, sigma):
        phi2 = sigma[1]  # tel = phn → addr ⇌ post
        augmented = augment_both(phi2, "gender", "gender")
        assert ("gender", "gender") in augmented.rhs_attribute_pairs()
        assert deduces(pair, [phi2], augmented)

    def test_augment_both_idempotent_on_existing_rhs(self, pair, sigma):
        phi2 = sigma[1]
        augmented = augment_both(phi2, "addr", "post")
        # addr/post already in RHS: only the LHS gains the test.
        assert len(augmented.rhs) == len(phi2.rhs)
        assert deduces(pair, [phi2], augmented)


class TestLemma32Weakening:
    def test_similarity_to_equality(self, pair, sigma):
        phi1 = sigma[0]  # has FN ≈dl FN at position 2
        strengthened = weaken_similarity_to_equality(phi1, 2)
        assert strengthened.lhs[2].operator.is_equality
        assert deduces(pair, [phi1], strengthened)

    def test_position_validation(self, sigma):
        with pytest.raises(IndexError):
            weaken_similarity_to_equality(sigma[0], 99)


class TestLemma33Transitivity:
    def test_compose_phi2_into_phi1(self, pair, sigma):
        phi1, phi2, phi3 = sigma
        # ϕ2 identifies (addr, post); a rule whose LHS needs addr = post
        # composes with it.
        followup = MatchingDependency(
            pair, [("addr", "post", "=")], [("gender", "gender")]
        )
        (composed,) = transitivity(phi2, followup)
        assert composed.lhs == phi2.lhs
        assert composed.rhs_attribute_pairs() == (("gender", "gender"),)
        assert deduces(pair, [phi2, followup], composed)

    def test_compose_requires_w_coverage(self, pair, sigma):
        phi2 = sigma[1]
        unrelated = MatchingDependency(
            pair, [("email", "email", "=")], [("FN", "FN")]
        )
        with pytest.raises(ValueError, match="not identified"):
            transitivity(phi2, unrelated)

    def test_compose_rejects_foreign_pairs(self, sigma, self_pair):
        foreign = MatchingDependency(self_pair, [("A", "A", "=")], [("B", "B")])
        with pytest.raises(ValueError, match="different schema pairs"):
            transitivity(sigma[1], foreign)

    def test_example_35_composition_chain(self, pair, sigma):
        """Reproduce the derivation (a)-(c) of Example 3.5 via lemmas."""
        phi1, phi2, phi3 = sigma
        # (a) tel = phn ∧ email = email → addr, FN, LN identified:
        step_a = MatchingDependency(
            pair,
            [("tel", "phn", "="), ("email", "email", "=")],
            [("addr", "post"), ("FN", "FN"), ("LN", "LN")],
        )
        assert deduces(pair, [phi2, phi3], step_a)
        # (b) LN, addr, FN all-equal → identify (Yc, Yb):
        step_b = MatchingDependency(
            pair,
            [("LN", "LN", "="), ("addr", "post", "="), ("FN", "FN", "=")],
            list(phi1.rhs_attribute_pairs()),
        )
        assert deduces(pair, [phi1], step_b)
        # (c) the composition — rck4:
        rck4 = MatchingDependency(
            pair,
            [("tel", "phn", "="), ("email", "email", "=")],
            list(phi1.rhs_attribute_pairs()),
        )
        assert deduces(pair, sigma, rck4)


class TestReflexiveKey:
    def test_always_deducible_from_empty_sigma(self, pair, sigma):
        for dependency in sigma:
            reflexive = reflexive_key_md(dependency)
            assert deduces(pair, [], reflexive)


class TestLemma34Interactions:
    """The matching operator interacts with = and ≈ (Lemma 3.4)."""

    def test_shared_rhs_attribute_forces_intra_equality(self, self_pair):
        # ϕ: L → R1[A1, A2] ⇌ R2[B, B]-style sharing through one B.
        from repro.core.closure import ClosureEngine
        from repro.core.similarity import EQUALITY

        phi = MatchingDependency(
            self_pair,
            [("C", "C", "=")],
            [("A", "B"), ("B", "B")],  # both A and B (left) identify with B (right)
        )
        engine = ClosureEngine(self_pair, [phi])
        matrix, _ = engine.closure(phi.lhs)
        # t[A1] = t'[B] and t[A2] = t'[B] force t[A1] = t[A2]: here the
        # left-side A and left-side B must be equal (intra-relation fact).
        left_a = self_pair.left_attr("A")
        left_b = self_pair.left_attr("B")
        assert matrix.get(left_a, left_b, EQUALITY)

    def test_similarity_transport_to_intra_relation(self, self_pair):
        # ϕ = (L ∧ R1[A] ≈ R2[B]) → R1[C] ⇌ R2[B]: then R1[C] ≈ R1[A].
        from repro.core.closure import ClosureEngine
        from repro.core.similarity import SimilarityOperator

        phi = MatchingDependency(
            self_pair,
            [("A", "B", "dl(0.8)")],
            [("C", "B")],
        )
        engine = ClosureEngine(self_pair, [phi])
        matrix, _ = engine.closure(phi.lhs)
        left_a = self_pair.left_attr("A")
        left_c = self_pair.left_attr("C")
        assert matrix.holds(left_a, left_c, SimilarityOperator("dl(0.8)"))

"""Unit tests for the similarity matrix and the union-find closure model."""


from repro.core.matrix import AxiomaticClosure, SimilarityMatrix
from repro.core.schema import LEFT, RIGHT, QualifiedAttribute
from repro.core.similarity import EQUALITY, SimilarityOperator

A = QualifiedAttribute(LEFT, "R", "A")
B = QualifiedAttribute(RIGHT, "S", "B")
C = QualifiedAttribute(LEFT, "R", "C")
D = QualifiedAttribute(RIGHT, "S", "D")
DL = SimilarityOperator("dl(0.8)")


class TestSimilarityMatrix:
    def test_set_and_get_symmetric(self):
        matrix = SimilarityMatrix()
        assert matrix.set(A, B, EQUALITY)
        assert matrix.get(A, B, EQUALITY)
        assert matrix.get(B, A, EQUALITY)

    def test_set_reports_novelty(self):
        matrix = SimilarityMatrix()
        assert matrix.set(A, B, DL)
        assert not matrix.set(A, B, DL)
        assert not matrix.set(B, A, DL)

    def test_reflexive_implicit(self):
        matrix = SimilarityMatrix()
        assert matrix.get(A, A, DL)
        assert not matrix.set(A, A, DL)

    def test_get_does_not_subsume(self):
        matrix = SimilarityMatrix()
        matrix.set(A, B, EQUALITY)
        assert not matrix.get(A, B, DL)

    def test_holds_subsumes_equality(self):
        matrix = SimilarityMatrix()
        matrix.set(A, B, EQUALITY)
        assert matrix.holds(A, B, DL)
        assert matrix.holds(A, B, EQUALITY)

    def test_holds_similarity_does_not_give_equality(self):
        matrix = SimilarityMatrix()
        matrix.set(A, B, DL)
        assert not matrix.holds(A, B, EQUALITY)

    def test_neighbours(self):
        matrix = SimilarityMatrix()
        matrix.set(A, B, EQUALITY)
        matrix.set(A, D, EQUALITY)
        assert matrix.neighbours(A, EQUALITY) == {B, D}
        assert matrix.neighbours(C, EQUALITY) == frozenset()

    def test_operators_between(self):
        matrix = SimilarityMatrix()
        matrix.set(A, B, DL)
        matrix.set(A, B, EQUALITY)
        assert matrix.operators_between(A, B) == {DL, EQUALITY}

    def test_similarity_edges_at_excludes_equality(self):
        matrix = SimilarityMatrix()
        matrix.set(A, B, EQUALITY)
        matrix.set(A, C, DL)
        edges = list(matrix.similarity_edges_at(A))
        assert edges == [(DL, C)]

    def test_entries_iterates_each_once(self):
        matrix = SimilarityMatrix()
        matrix.set(A, B, EQUALITY)
        matrix.set(C, D, DL)
        entries = list(matrix.entries())
        assert len(entries) == 2
        assert matrix.entry_count == 2
        assert len(matrix) == 2


class TestAxiomaticClosure:
    def test_equality_transitive(self):
        closure = AxiomaticClosure()
        closure.add(A, B, EQUALITY)
        closure.add(B, C, EQUALITY)
        assert closure.holds(A, C, EQUALITY)

    def test_reflexive(self):
        closure = AxiomaticClosure()
        assert closure.holds(A, A, EQUALITY)
        assert closure.holds(A, A, DL)

    def test_equality_subsumes_similarity(self):
        closure = AxiomaticClosure()
        closure.add(A, B, EQUALITY)
        assert closure.holds(A, B, DL)

    def test_similarity_not_transitive(self):
        closure = AxiomaticClosure()
        closure.add(A, B, DL)
        closure.add(B, C, DL)
        assert closure.holds(A, B, DL)
        assert not closure.holds(A, C, DL)

    def test_similarity_transported_across_equality(self):
        # x ≈ y ∧ y = z ⟹ x ≈ z
        closure = AxiomaticClosure()
        closure.add(A, B, DL)
        closure.add(B, C, EQUALITY)
        assert closure.holds(A, C, DL)

    def test_transport_when_merge_happens_later(self):
        closure = AxiomaticClosure()
        closure.add(A, B, DL)       # first the similarity edge
        closure.add(B, D, EQUALITY)  # then the class of B grows
        closure.add(D, C, EQUALITY)
        assert closure.holds(A, C, DL)

    def test_similarity_does_not_imply_equality(self):
        closure = AxiomaticClosure()
        closure.add(A, B, DL)
        assert not closure.holds(A, B, EQUALITY)

    def test_equivalence_classes(self):
        closure = AxiomaticClosure()
        closure.add(A, B, EQUALITY)
        closure.add(C, D, DL)
        classes = {frozenset(members) for members in closure.equivalence_classes()}
        assert frozenset({A, B}) in classes
        assert frozenset({C}) in classes
        assert frozenset({D}) in classes

"""Unit tests for matching dependencies (syntax layer)."""

import pytest

from repro.core.md import (
    MatchingDependency,
    SimilarityAtom,
    equality_md,
    md,
    total_size,
)
from repro.core.similarity import EQUALITY, SimilarityOperator


class TestConstruction:
    def test_triple_coercion(self, pair):
        dependency = MatchingDependency(
            pair, [("tel", "phn", "=")], [("addr", "post")]
        )
        assert dependency.lhs[0].operator == EQUALITY
        assert dependency.rhs[0].attribute_pair == ("addr", "post")

    def test_operator_objects_accepted(self, pair):
        dependency = MatchingDependency(
            pair,
            [SimilarityAtom("FN", "FN", SimilarityOperator("dl(0.8)"))],
            [("FN", "FN")],
        )
        assert dependency.lhs[0].operator.name == "dl(0.8)"

    def test_empty_lhs_rejected(self, pair):
        with pytest.raises(ValueError, match="non-empty LHS"):
            MatchingDependency(pair, [], [("addr", "post")])

    def test_empty_rhs_rejected(self, pair):
        with pytest.raises(ValueError, match="non-empty RHS"):
            MatchingDependency(pair, [("tel", "phn", "=")], [])

    def test_unknown_attribute_rejected(self, pair):
        with pytest.raises(ValueError):
            MatchingDependency(pair, [("nope", "phn", "=")], [("addr", "post")])

    def test_duplicate_lhs_rejected(self, pair):
        with pytest.raises(ValueError, match="duplicate LHS"):
            MatchingDependency(
                pair,
                [("tel", "phn", "="), ("tel", "phn", "=")],
                [("addr", "post")],
            )

    def test_same_pair_different_operators_allowed(self, pair):
        dependency = MatchingDependency(
            pair,
            [("FN", "FN", "="), ("FN", "FN", "dl(0.8)")],
            [("LN", "LN")],
        )
        assert len(dependency.lhs) == 2

    def test_duplicate_rhs_rejected(self, pair):
        with pytest.raises(ValueError, match="duplicate RHS"):
            MatchingDependency(
                pair,
                [("tel", "phn", "=")],
                [("addr", "post"), ("addr", "post")],
            )

    def test_lhs_not_contained_in_rhs_constraint_absent(self, pair):
        # Example 2.1: "the LHS of an MD is neither necessarily contained
        # in nor disjoint from its RHS" — both shapes must be accepted.
        overlapping = MatchingDependency(
            pair, [("FN", "FN", "=")], [("FN", "FN"), ("LN", "LN")]
        )
        disjoint = MatchingDependency(
            pair, [("email", "email", "=")], [("FN", "FN")]
        )
        assert overlapping.size == 3
        assert disjoint.size == 2


class TestNormalization:
    def test_normal_form_detection(self, pair):
        single = MatchingDependency(pair, [("tel", "phn", "=")], [("addr", "post")])
        assert single.is_normal_form
        double = MatchingDependency(
            pair, [("email", "email", "=")], [("FN", "FN"), ("LN", "LN")]
        )
        assert not double.is_normal_form

    def test_normalize_splits_rhs(self, pair):
        dependency = MatchingDependency(
            pair, [("email", "email", "=")], [("FN", "FN"), ("LN", "LN")]
        )
        parts = dependency.normalize()
        assert len(parts) == 2
        assert all(part.is_normal_form for part in parts)
        assert {part.rhs[0].attribute_pair for part in parts} == {
            ("FN", "FN"),
            ("LN", "LN"),
        }
        assert all(part.lhs == dependency.lhs for part in parts)

    def test_normalize_identity_on_normal_form(self, pair):
        dependency = MatchingDependency(pair, [("tel", "phn", "=")], [("addr", "post")])
        assert dependency.normalize() == [dependency]


class TestViewsAndEquality:
    def test_size_counts_atoms(self, sigma):
        phi1, phi2, phi3 = sigma
        assert phi1.size == 3 + 5
        assert phi2.size == 2
        assert phi3.size == 3

    def test_total_size(self, sigma):
        assert total_size(sigma) == sum(dependency.size for dependency in sigma)

    def test_equality_ignores_atom_order(self, pair):
        first = MatchingDependency(
            pair, [("tel", "phn", "="), ("email", "email", "=")], [("addr", "post")]
        )
        second = MatchingDependency(
            pair, [("email", "email", "="), ("tel", "phn", "=")], [("addr", "post")]
        )
        assert first == second
        assert hash(first) == hash(second)

    def test_with_extra_lhs(self, pair):
        dependency = MatchingDependency(pair, [("tel", "phn", "=")], [("addr", "post")])
        augmented = dependency.with_extra_lhs("email", "email", "=")
        assert len(augmented.lhs) == 2
        # idempotent on duplicates
        assert augmented.with_extra_lhs("email", "email", "=") is augmented

    def test_str_rendering(self, pair):
        dependency = MatchingDependency(pair, [("tel", "phn", "=")], [("addr", "post")])
        assert (
            str(dependency)
            == "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]"
        )

    def test_md_shorthand(self, pair):
        assert md(pair, [("tel", "phn", "=")], [("addr", "post")]).size == 2

    def test_equality_md_builder(self, pair):
        dependency = equality_md(
            pair, [("FN", "FN"), ("LN", "LN")], [("addr", "post")]
        )
        assert all(atom.operator.is_equality for atom in dependency.lhs)


class TestPaperExamples:
    def test_phi1_shape(self, sigma):
        phi1 = sigma[0]
        operators = [atom.operator.name for atom in phi1.lhs]
        assert operators == ["=", "=", "dl(0.8)"]
        assert ("tel", "phn") in phi1.rhs_attribute_pairs()

    def test_phi3_identifies_names(self, sigma):
        phi3 = sigma[2]
        assert set(phi3.rhs_attribute_pairs()) == {("FN", "FN"), ("LN", "LN")}
        # email is not in (Yc, Yb): LHS attributes need not come from Y.
        assert phi3.lhs[0].attribute_pair == ("email", "email")

"""Unit tests for the MD text syntax."""

import pytest

from repro.core.md import MatchingDependency
from repro.core.parser import MDSyntaxError, format_md, parse_md, parse_mds


class TestParse:
    def test_equality_md(self, pair):
        dependency = parse_md(
            "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]",
            pair,
        )
        assert dependency.lhs[0].operator.is_equality
        assert dependency.rhs[0].attribute_pair == ("addr", "post")

    def test_similarity_operator(self, pair):
        dependency = parse_md(
            "credit[FN] ~dl(0.8) billing[FN] -> credit[LN] <=> billing[LN]",
            pair,
        )
        assert dependency.lhs[0].operator.name == "dl(0.8)"

    def test_conjunction_both_sides(self, pair):
        dependency = parse_md(
            "credit[LN] = billing[LN] & credit[addr] = billing[post] & "
            "credit[FN] ~dl(0.8) billing[FN] -> "
            "credit[FN] <=> billing[FN] & credit[LN] <=> billing[LN]",
            pair,
        )
        assert len(dependency.lhs) == 3
        assert len(dependency.rhs) == 2

    def test_attribute_with_hash_character(self, pair):
        dependency = parse_md(
            "credit[c#] = billing[c#] -> credit[FN] <=> billing[FN]", pair
        )
        assert dependency.lhs[0].attribute_pair == ("c#", "c#")

    def test_whitespace_tolerant(self, pair):
        dependency = parse_md(
            "  credit[ tel ]   =  billing[ phn ]  ->  credit[addr] <=> billing[post] ",
            pair,
        )
        assert dependency.lhs[0].attribute_pair == ("tel", "phn")


class TestErrors:
    def test_missing_arrow(self, pair):
        with pytest.raises(MDSyntaxError, match="exactly one '->'"):
            parse_md("credit[tel] = billing[phn]", pair)

    def test_two_arrows(self, pair):
        with pytest.raises(MDSyntaxError, match="exactly one '->'"):
            parse_md("a -> b -> c", pair)

    def test_wrong_left_relation(self, pair):
        with pytest.raises(MDSyntaxError, match="left relation"):
            parse_md(
                "billing[phn] = billing[phn] -> credit[addr] <=> billing[post]",
                pair,
            )

    def test_wrong_right_relation(self, pair):
        with pytest.raises(MDSyntaxError, match="right relation"):
            parse_md(
                "credit[tel] = credit[tel] -> credit[addr] <=> billing[post]",
                pair,
            )

    def test_unknown_attribute(self, pair):
        with pytest.raises(MDSyntaxError, match="not an attribute"):
            parse_md(
                "credit[nope] = billing[phn] -> credit[addr] <=> billing[post]",
                pair,
            )

    def test_matching_operator_on_lhs(self, pair):
        with pytest.raises(MDSyntaxError, match="cannot use the matching"):
            parse_md(
                "credit[tel] <=> billing[phn] -> credit[addr] <=> billing[post]",
                pair,
            )

    def test_similarity_on_rhs(self, pair):
        with pytest.raises(MDSyntaxError, match="matching operator"):
            parse_md(
                "credit[tel] = billing[phn] -> credit[addr] = billing[post]",
                pair,
            )

    def test_garbage_atom(self, pair):
        with pytest.raises(MDSyntaxError, match="cannot parse atom"):
            parse_md("hello -> world", pair)

    def test_multi_line_error_reports_line(self, pair):
        text = (
            "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]\n"
            "garbage here\n"
        )
        with pytest.raises(MDSyntaxError, match="line 2"):
            parse_mds(text, pair)


class TestRoundTrip:
    def test_format_then_parse(self, sigma, pair):
        for dependency in sigma:
            text = format_md(dependency)
            assert parse_md(text, pair) == dependency

    def test_parse_mds_skips_comments_and_blanks(self, pair):
        text = (
            "# the phone rule\n"
            "\n"
            "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]\n"
        )
        dependencies = parse_mds(text, pair)
        assert len(dependencies) == 1
        assert isinstance(dependencies[0], MatchingDependency)

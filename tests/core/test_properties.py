"""Cross-cutting property tests on random MD workloads.

Invariants the formalism guarantees, checked with hypothesis:

* parser round trip: ``parse(format(md)) == md``;
* deduction is *closed*: adding a deduced MD to Σ changes no verdict;
* deduction is *monotone*: growing Σ never invalidates a deduction;
* augmentation (Lemma 3.1) holds on random MDs;
* ``apply(γ, φ)`` preserves deducibility (the invariant findRCKs rests
  on): if ``Σ ⊨m γ`` and φ ∈ Σ then ``Σ ⊨m apply(γ, φ)``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import ClosureEngine
from repro.core.findrcks import find_rcks
from repro.core.md import MatchingDependency
from repro.core.parser import format_md, parse_md
from repro.datagen.mdgen import generate_workload

_seeds = st.integers(min_value=0, max_value=2000)


@given(seed=_seeds, md_count=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_parser_round_trip_on_random_mds(seed, md_count):
    workload = generate_workload(md_count=md_count, target_length=4, seed=seed)
    for dependency in workload.sigma:
        assert parse_md(format_md(dependency), workload.pair) == dependency


@given(seed=_seeds)
@settings(max_examples=20, deadline=None)
def test_deduction_closed_under_adding_deduced_mds(seed):
    workload = generate_workload(md_count=10, target_length=4, seed=seed)
    pair, sigma = workload.pair, list(workload.sigma)
    engine = ClosureEngine(pair, sigma)

    # Deduce a key and add it to Σ: every verdict must stay the same.
    keys = find_rcks(sigma, workload.target, m=3)
    extended = sigma + [key.to_md() for key in keys]
    extended_engine = ClosureEngine(pair, extended)

    probes = [key.to_md() for key in keys] + sigma[:5]
    for left, right in workload.target:
        probes.append(
            MatchingDependency(
                pair, sigma[seed % len(sigma)].lhs, [(left, right)]
            )
        )
    for phi in probes:
        # Deduced MDs are logical consequences: adding them neither adds
        # nor removes any verdict.
        assert engine.deduces(phi) == extended_engine.deduces(phi)


@given(seed=_seeds)
@settings(max_examples=20, deadline=None)
def test_deduction_monotone_in_sigma(seed):
    workload = generate_workload(md_count=12, target_length=4, seed=seed)
    pair, sigma = workload.pair, list(workload.sigma)
    half = sigma[: len(sigma) // 2] or sigma[:1]
    small_engine = ClosureEngine(pair, half)
    big_engine = ClosureEngine(pair, sigma)
    for phi in half + sigma[:3]:
        if small_engine.deduces(phi):
            assert big_engine.deduces(phi)


@given(seed=_seeds)
@settings(max_examples=20, deadline=None)
def test_augmentation_on_random_mds(seed):
    workload = generate_workload(md_count=8, target_length=4, seed=seed)
    pair, sigma = workload.pair, list(workload.sigma)
    engine = ClosureEngine(pair, sigma)
    for dependency in sigma[:4]:
        augmented = dependency.with_extra_lhs("A0", "B0", "dl(0.8)")
        assert engine.deduces(augmented)


@given(seed=_seeds)
@settings(max_examples=15, deadline=None)
def test_apply_preserves_deducibility(seed):
    workload = generate_workload(md_count=10, target_length=4, seed=seed)
    pair, sigma = workload.pair, list(workload.sigma)
    engine = ClosureEngine(pair, sigma)
    keys = find_rcks(sigma, workload.target, m=4)
    for key in keys:
        for dependency in sigma[:6]:
            applied = key.apply_md(dependency)
            assert engine.deduces(applied.to_md()), (
                f"apply broke deducibility: key={key}, md={dependency}"
            )
